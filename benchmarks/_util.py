"""Shared helpers for the benchmark suite.

Each benchmark regenerates one paper table/figure.  Because pytest
captures stdout by default, every report is also persisted under
``benchmarks/results/`` so the regenerated series survive the run
(EXPERIMENTS.md is written from those files).

Benchmarks use *scaled-down* parameters (fewer epochs, shorter
measurement windows, smaller tables) to keep the whole suite's
wall-clock time reasonable; every experiment module accepts the
paper-scale parameters for full runs.

Machine-readable output: :func:`emit_json` writes a
``BENCH_<name>.json`` file next to the text report so CI jobs and
downstream tooling can consume results without parsing tables;
benchmarks that run as scripts gate it behind a ``--json`` flag via
:func:`json_enabled` (the ``BENCH_JSON=1`` environment variable works
too).  Every JSON file carries a ``meta`` block recording the git SHA
the numbers were produced from and the benchmark's configuration dict,
so archived results stay attributable.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Any

RESULTS_DIR = Path(__file__).parent / "results"


def _drain_telemetry() -> list[dict[str, Any]]:
    """Per-measurement telemetry summaries accumulated by the bench
    harness (lazy import: _util must stay importable without src on
    the path for pure-report tooling)."""
    try:
        from repro.bench.harness import drain_telemetry_summaries
    except ImportError:
        return []
    return drain_telemetry_summaries()


def _ensure_results_dir() -> None:
    # parents=True: survives a fresh checkout where even the parent is
    # missing (e.g. running a single benchmark file from elsewhere).
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)


def git_sha() -> str:
    """The repository HEAD the benchmark ran at, or ``"unknown"``.

    In CI the SHA comes from ``GITHUB_SHA`` — deterministic and free
    of git subprocess calls (actions/checkout detaches HEAD, and a
    shallow checkout may not even have the ref state a subprocess
    would need).
    """
    env_sha = os.environ.get("GITHUB_SHA", "").strip()
    if env_sha:
        return env_sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent, capture_output=True, text=True,
            timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def emit_report(name: str, report_fn, *args) -> str:
    """Run ``report_fn(*args)``, print its output, persist it."""
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        report_fn(*args)
    text = buffer.getvalue()
    print(text)
    _ensure_results_dir()
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    return text


def json_enabled(argv: list[str] | None = None) -> bool:
    """Did the caller ask for machine-readable output?"""
    argv = sys.argv if argv is None else argv
    env = os.environ.get("BENCH_JSON", "").strip().lower()
    return "--json" in argv or env not in ("", "0", "false", "no")


def backend_arg(argv: list[str] | None = None,
                default: str = "sim") -> str:
    """The ``--backend <name>`` (or ``--backend=<name>``) selection.

    Shared by every benchmark script that can run on more than one
    execution backend; the chosen name also lands in the JSON ``meta``
    block (pass it to :func:`emit_json` as ``backend=``) so archived
    numbers say whether they are virtual-time or wall-clock.
    """
    argv = sys.argv if argv is None else argv
    for i, arg in enumerate(argv):
        if arg == "--backend":
            if i + 1 >= len(argv):
                raise SystemExit("--backend needs a value "
                                 "(sim or threads)")
            return argv[i + 1]
        if arg.startswith("--backend="):
            return arg.split("=", 1)[1]
    return default


def emit_json(name: str, payload: Any,
              config: dict[str, Any] | None = None,
              backend: str | None = None) -> Path:
    """Persist ``payload`` as ``benchmarks/results/BENCH_<name>.json``.

    A ``meta`` block (git SHA + the benchmark's ``config`` dict) is
    recorded alongside dict payloads so every archived result is
    attributable to the code and parameters that produced it.
    ``backend`` records the execution backend when the benchmark ran
    on one (omitted → ``"sim"``, the only backend pre-existing
    benchmarks use).
    """
    _ensure_results_dir()
    if isinstance(payload, dict):
        payload = {
            **payload,
            "meta": {
                "benchmark": name,
                "git_sha": git_sha(),
                "backend": backend or "sim",
                "config": dict(config or {}),
            },
        }
        if "telemetry" not in payload:
            summaries = _drain_telemetry()
            if summaries:
                # One block per measurement since the last emit:
                # commit/abort latency percentiles straight from the
                # telemetry registry.  Report-only — the perf gate
                # reads the "runs" rows, never this key.
                payload["telemetry"] = summaries
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                    + "\n")
    return path


def summary_payload(summary) -> dict[str, Any]:
    """The machine-readable core of one RunSummary (throughput,
    aborts, latency percentiles)."""
    return {
        "committed": summary.committed,
        "aborted": summary.aborted,
        "abort_rate": round(summary.abort_rate, 6),
        "throughput_tps": round(summary.throughput_tps, 3),
        "throughput_std": round(summary.throughput_std, 3),
        "latency_us": round(summary.latency_us, 3),
        "p50_us": round(summary.p50_us, 3),
        "p99_us": round(summary.p99_us, 3),
    }
