"""Shared helpers for the benchmark suite.

Each benchmark regenerates one paper table/figure.  Because pytest
captures stdout by default, every report is also persisted under
``benchmarks/results/`` so the regenerated series survive the run
(EXPERIMENTS.md is written from those files).

Benchmarks use *scaled-down* parameters (fewer epochs, shorter
measurement windows, smaller tables) to keep the whole suite's
wall-clock time reasonable; every experiment module accepts the
paper-scale parameters for full runs.
"""

from __future__ import annotations

import contextlib
import io
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit_report(name: str, report_fn, *args) -> str:
    """Run ``report_fn(*args)``, print its output, persist it."""
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        report_fn(*args)
    text = buffer.getvalue()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    return text
