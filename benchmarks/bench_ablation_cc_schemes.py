"""Ablation: concurrency-control schemes across skew levels.

The deployment-virtualization claim extended to the CC dimension: the
same SmallBank and TPC-C new-order applications run under every
``cc_scheme`` by config edit only.  Expected shape:

* under low skew all real schemes commit almost everything and "none"
  is the (unsafe) throughput ceiling;
* as skew concentrates load on hot records, OCC pays validation
  aborts, 2PL NO_WAIT pays lock-conflict aborts (it aborts eagerly, at
  first touch), and 2PL WAIT_DIE converts part of those into
  wound/die events with the older transaction surviving;
* "none" never aborts — and the serializability audit is exactly what
  rules it out as a correctness option (see
  tests/test_integration_cc_schemes.py).
"""

from _util import emit_report

from repro.bench.harness import run_measurement
from repro.bench.report import print_table
from repro.core.database import ReactorDatabase
from repro.core.deployment import shared_everything_with_affinity
from repro.experiments.common import tpcc_database
from repro.workloads import smallbank, tpcc

SCHEMES = ("occ", "2pl_nowait", "2pl_waitdie", "none")
SKEWS = (0.0, 0.5, 0.9)  # fraction of accesses on the hot 10%
N_CUSTOMERS = 40
WORKERS = 4
TPCC_WAREHOUSES = 2


def _measure_smallbank(scheme: str, hotspot: float):
    deployment = shared_everything_with_affinity(4, cc_scheme=scheme)
    database = ReactorDatabase(
        deployment, smallbank.declarations(N_CUSTOMERS))
    smallbank.load(database, N_CUSTOMERS)
    workload = smallbank.SmallbankWorkload(
        N_CUSTOMERS, hotspot_fraction=hotspot)
    result = run_measurement(database, WORKERS, workload.factory_for,
                             warmup_us=5_000.0, measure_us=60_000.0,
                             n_epochs=4)
    return result.summary, database.abort_counts()


def _measure_tpcc(scheme: str, remote_item_prob: float):
    database = tpcc_database("shared-nothing-async", TPCC_WAREHOUSES,
                             mpl=4, cc_scheme=scheme)
    workload = tpcc.TpccWorkload(
        n_warehouses=TPCC_WAREHOUSES, mix=tpcc.NEW_ORDER_ONLY,
        remote_item_prob=remote_item_prob, invalid_item_prob=0.0)
    result = run_measurement(database, WORKERS, workload.factory_for,
                             warmup_us=5_000.0, measure_us=60_000.0,
                             n_epochs=4)
    return result.summary, database.abort_counts()


def _rows(measurements):
    rows = []
    for (label, scheme), (summary, counts) in measurements.items():
        reasons = counts["by_reason"]
        rows.append([
            label, scheme,
            round(summary.throughput_tps, 1),
            round(summary.latency_us, 1),
            round(summary.abort_rate * 100, 2),
            reasons["validation_failure"],
            reasons["lock_conflict"],
            reasons["deadlock_avoidance"] + reasons["wound"],
        ])
    return rows


HEADERS = ["workload/skew", "scheme", "tput [txn/s]", "lat [usec]",
           "abort %", "val fail", "lock conf", "die+wound"]


def test_ablation_cc_schemes(benchmark):
    measurements = {}
    for hotspot in SKEWS:
        for scheme in SCHEMES:
            measurements[(f"smallbank h={hotspot}", scheme)] = \
                _measure_smallbank(scheme, hotspot)
    for remote in (0.1, 1.0):
        for scheme in SCHEMES:
            measurements[(f"tpcc-neworder r={remote}", scheme)] = \
                _measure_tpcc(scheme, remote)

    emit_report("ablation_cc_schemes", lambda: print_table(
        "Ablation: CC scheme x skew (SmallBank hotspot, TPC-C "
        "new-order remote-item probability)",
        HEADERS, _rows(measurements)))

    # Every (workload, scheme) combination makes progress.
    assert all(s.committed > 0 for s, __ in measurements.values())

    # Abort reasons match the scheme: "none" never aborts for CC
    # reasons (only application/safety aborts remain), OCC only fails
    # validation, 2PL only conflicts/dies/wounds.
    CC_REASONS = ("validation_failure", "lock_conflict",
                  "deadlock_avoidance", "wound")
    for (label, scheme), (__, counts) in measurements.items():
        reasons = counts["by_reason"]
        if scheme == "none":
            assert all(reasons[r] == 0 for r in CC_REASONS), (
                label, reasons)
        elif scheme == "occ":
            assert reasons["lock_conflict"] == 0
            assert reasons["deadlock_avoidance"] == 0
        elif scheme.startswith("2pl"):
            assert reasons["validation_failure"] == 0
        if scheme == "2pl_nowait":
            assert reasons["wound"] == 0

    # Skew hurts: the hottest SmallBank setting aborts at least as
    # much as the uniform one for every real scheme.
    for scheme in ("occ", "2pl_nowait", "2pl_waitdie"):
        cold = measurements[("smallbank h=0.0", scheme)][0]
        hot = measurements[("smallbank h=0.9", scheme)][0]
        assert hot.abort_rate >= cold.abort_rate

    benchmark.pedantic(
        lambda: _measure_smallbank("2pl_waitdie", 0.9),
        rounds=1, iterations=1)
