"""Ablation: the receive-path cost asymmetry (Cr >> Cs).

The paper attributes the substantial gap between partially-async and
fully-async multi-transfers to the asymmetric cost of receiving
results (a thread switch) versus sending invocations (an atomic
enqueue).  This ablation re-runs Figure 5's size-7 point on a machine
where Cr == Cs: the partially-async vs fully-async gap should shrink
dramatically, confirming the causal story.
"""

import dataclasses

from _util import emit_report

from repro.bench.harness import single_worker_latency
from repro.bench.report import print_table
from repro.core.database import ReactorDatabase
from repro.core.deployment import RangePlacement, shared_nothing
from repro.experiments.common import spread_destinations
from repro.sim.machine import XEON_E3_1276
from repro.workloads import smallbank

SIZE = 7
CPC = 60


def _latency(variant: str, machine) -> float:
    deployment = shared_nothing(7, machine=machine,
                                placement=RangePlacement(CPC))
    database = ReactorDatabase(deployment,
                               smallbank.declarations(7 * CPC))
    smallbank.load(database, 7 * CPC)
    spec = smallbank.multi_transfer_spec(
        variant, smallbank.reactor_name(0),
        spread_destinations(SIZE, CPC))
    return single_worker_latency(
        database, lambda w: spec, n_txns=50).summary.latency_us


def test_ablation_cr_asymmetry(benchmark):
    symmetric_machine = dataclasses.replace(
        XEON_E3_1276, name="xeon-symmetric",
        costs=XEON_E3_1276.costs.with_symmetric_communication())

    rows = []
    gaps = {}
    for label, machine in (("asymmetric (paper)", XEON_E3_1276),
                           ("symmetric (Cr == Cs)", symmetric_machine)):
        partial = _latency("partially-async", machine)
        full = _latency("fully-async", machine)
        gaps[label] = partial - full
        rows.append([label, partial, full, partial - full])

    def report():
        print_table(
            "Ablation: partially-async vs fully-async gap under "
            "symmetric communication (size 7)",
            ["machine", "partially-async [us]", "fully-async [us]",
             "gap [us]"], rows)

    emit_report("ablation_cr_asymmetry", report)

    # The gap collapses when the receive path costs as little as the
    # send path — the paper's causal claim.
    assert gaps["symmetric (Cr == Cs)"] < \
        0.5 * gaps["asymmetric (paper)"]

    benchmark.pedantic(
        lambda: _latency("fully-async", XEON_E3_1276),
        rounds=2, iterations=1)
