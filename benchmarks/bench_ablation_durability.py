"""Ablation: durability mode x workload, flush sweep, recovery curve.

The persistence knob of the deployment spectrum, measured:

* **mode x workload** — SmallBank (standard mix) and TPC-C new-order
  under ``sync`` / ``group`` / ``async`` durability.  Sync
  force-at-commit serializes every writing commit on the container's
  log device (throughput caps near ``1/fsync_cost``); epoch-based
  group commit amortizes one fsync over every commit of the epoch and
  recovers most of async's throughput while never acknowledging an
  unflushed commit.  The acceptance gate asserts group >= 1.3x sync at
  the default operating point.
* **flush-interval sweep** — group commit across
  ``flush_interval_us`` settings: longer epochs -> fewer fsyncs per
  commit but higher commit latency.
* **recovery-time curve** — virtual-time recovery cost after a
  kill-at-arbitrary-epoch crash, as a function of the incremental
  checkpoint cadence, with parallel (per-reactor partitioned) vs
  serial replay; every crash image is certified by
  ``certify_crash_recovery`` (and a tampered image is rejected).

Results land in ``benchmarks/results/ablation_durability.txt`` and —
machine-readable — ``BENCH_ablation_durability.json``.  Run as a
script for the CI smoke job: ``python bench_ablation_durability.py
--tiny --json``.
"""

import sys
from dataclasses import replace

from _util import emit_json, emit_report, json_enabled, summary_payload

from repro import DurabilityConfig
from repro.bench.harness import run_measurement
from repro.bench.report import print_table
from repro.core.database import ReactorDatabase
from repro.core.deployment import (
    shared_everything_with_affinity,
    shared_nothing,
)
from repro.durability import recover_image_partitioned
from repro.durability.wal import RedoEntry, RedoRecord
from repro.errors import TransactionAbort
from repro.experiments.common import tpcc_database
from repro.formal import certify_crash_recovery
from repro.sim.machine import XEON_E3_1276, MachineProfile
from repro.workloads import smallbank, tpcc

MODES = ("sync", "group", "async")
FLUSH_INTERVALS = (10.0, 50.0, 200.0)
CHECKPOINT_CADENCE = (0, 100, 35)  # txns per checkpoint; 0 = never
N_CUSTOMERS = 40
SB_WORKERS = 8
TPCC_WORKERS = 16
TPCC_WAREHOUSES = 2

CONFIG = {
    "modes": list(MODES),
    "flush_intervals_us": list(FLUSH_INTERVALS),
    "checkpoint_cadence": list(CHECKPOINT_CADENCE),
    "n_customers": N_CUSTOMERS,
    "sb_workers": SB_WORKERS,
    "tpcc_workers": TPCC_WORKERS,
    "tpcc_warehouses": TPCC_WAREHOUSES,
}


def _durable(mode: str) -> DurabilityConfig:
    return DurabilityConfig(enabled=True, mode=mode)


def _machine(flush_interval_us: float | None = None) -> MachineProfile:
    if flush_interval_us is None:
        return XEON_E3_1276
    return MachineProfile(
        name=XEON_E3_1276.name,
        hardware_threads=XEON_E3_1276.hardware_threads,
        costs=replace(XEON_E3_1276.costs,
                      flush_interval_us=flush_interval_us))


def _measure_smallbank(mode: str, measure_us: float,
                       flush_interval_us: float | None = None):
    deployment = shared_everything_with_affinity(
        4, machine=_machine(flush_interval_us),
        durability=_durable(mode))
    database = ReactorDatabase(
        deployment, smallbank.declarations(N_CUSTOMERS))
    smallbank.load(database, N_CUSTOMERS)
    workload = smallbank.SmallbankWorkload(N_CUSTOMERS)
    result = run_measurement(database, SB_WORKERS,
                             workload.factory_for,
                             warmup_us=5_000.0, measure_us=measure_us,
                             n_epochs=4)
    return result.summary, database


def _measure_tpcc(mode: str, measure_us: float):
    database = tpcc_database(
        "shared-everything-with-affinity", TPCC_WAREHOUSES,
        machine=XEON_E3_1276, mpl=8, n_executors=4,
        durability=_durable(mode))
    workload = tpcc.TpccWorkload(
        n_warehouses=TPCC_WAREHOUSES, mix=tpcc.NEW_ORDER_ONLY,
        remote_item_prob=0.1, invalid_item_prob=0.0)
    result = run_measurement(database, TPCC_WORKERS,
                             workload.factory_for,
                             warmup_us=5_000.0, measure_us=measure_us,
                             n_epochs=4)
    return result.summary, database


def _flush_summary(database) -> dict:
    stats = database.durability_stats()
    flushers = stats["flushers"].values()
    fsyncs = sum(f["fsyncs"] for f in flushers)
    records = sum(f["records_flushed"] for f in flushers)
    return {
        "fsyncs": fsyncs,
        "records_flushed": records,
        "records_per_fsync": round(records / fsyncs, 3)
        if fsyncs else 0.0,
        "acked_commits": stats["acked_commits"],
    }


def _certify_crash(database, mode: str) -> dict:
    """Kill the measured database where it stands (mid-epoch by
    construction: measurement leaves in-flight work), recover
    partitioned, certify — and check a tampered image is rejected."""
    image = database.durability.crash()
    report = recover_image_partitioned(
        database.deployment, smallbank.declarations(N_CUSTOMERS)
        if "cust0" in database else tpcc.declarations(TPCC_WAREHOUSES),
        image)
    cert = certify_crash_recovery(database, image, report.database)

    tampered = database.durability.crash()
    rejected = None
    for records in tampered.logs.values():
        for index, record in enumerate(records):
            for j, entry in enumerate(record.entries):
                if entry.row and any(
                        isinstance(v, float) for v in
                        entry.row.values()):
                    row = dict(entry.row)
                    key = next(k for k, v in row.items()
                               if isinstance(v, float))
                    row[key] += 1e9
                    entries = list(record.entries)
                    entries[j] = RedoEntry(entry.reactor, entry.table,
                                           entry.kind, entry.pk, row)
                    records[index] = RedoRecord(record.commit_tid,
                                                tuple(entries))
                    rejected = not certify_crash_recovery(
                        database, tampered, None)["ok"]
                    break
            if rejected is not None:
                break
        if rejected is not None:
            break
    return {
        "cert_ok": cert["ok"],
        "zero_acked_loss": cert["zero_acked_loss"],
        "state_ok": cert["state_ok"],
        "lost_acked": len(cert["lost_acked"]),
        "acked_checked": cert["acked_checked"],
        "tamper_rejected": rejected,
        "recovery_us": round(report.recovery_us, 3),
    }


def _recovery_curve(checkpoint_every: int, total_txns: int) -> dict:
    """Run a deterministic transfer stream with periodic incremental
    checkpoints, crash mid-epoch, and price recovery both ways."""
    import random

    deployment = shared_nothing(4, durability=_durable("group"))
    database = ReactorDatabase(
        deployment, smallbank.declarations(N_CUSTOMERS))
    smallbank.load(database, N_CUSTOMERS)
    rng = random.Random(17)
    checkpoints = 0

    def one_transfer(i: int) -> None:
        variant = smallbank.VARIANTS[i % len(smallbank.VARIANTS)]
        src = smallbank.reactor_name(rng.randrange(N_CUSTOMERS))
        dst = smallbank.reactor_name(
            (int(src[4:]) + 1 + rng.randrange(N_CUSTOMERS - 1))
            % N_CUSTOMERS)
        reactor, proc, args = smallbank.multi_transfer_spec(
            variant, src, [dst], 2.0)
        try:
            database.run(reactor, proc, *args)
        except TransactionAbort:
            pass

    for i in range(total_txns):
        one_transfer(i)
        if checkpoint_every and (i + 1) % checkpoint_every == 0:
            database.durability.incremental_checkpoint()
            checkpoints += 1
    # An uncheckpointed tail every cadence replays at recovery, then a
    # crash with an epoch in flight.
    for i in range(max(8, total_txns // 10)):
        one_transfer(total_txns + i)
    for i in range(4):
        database.submit(smallbank.reactor_name(i), "deposit_checking",
                        1.0)
    database.scheduler.run(until=database.scheduler.now + 60.0)
    image = database.durability.crash()
    parallel = recover_image_partitioned(
        deployment, smallbank.declarations(N_CUSTOMERS), image)
    serial = recover_image_partitioned(
        deployment, smallbank.declarations(N_CUSTOMERS), image,
        parallel=False)
    cert = certify_crash_recovery(database, image, parallel.database)
    return {
        "checkpoint_every": checkpoint_every,
        "checkpoints": checkpoints,
        "entries_replayed": parallel.entries_replayed,
        "rows_loaded": parallel.rows_loaded,
        "parallel_recovery_us": round(parallel.recovery_us, 3),
        "serial_recovery_us": round(serial.recovery_us, 3),
        "parallel_speedup": round(
            serial.recovery_us / max(parallel.recovery_us, 1e-9), 3),
        "cert_ok": cert["ok"],
    }


def run_ablation(measure_us: float = 60_000.0,
                 curve_txns: int = 240) -> dict:
    """The full grid; returns the machine-readable payload."""
    runs = []

    def record(workload: str, mode: str, summary, database,
               **extra):
        row = {
            "workload": workload,
            "mode": mode,
            **summary_payload(summary),
            **_flush_summary(database),
            **extra,
        }
        runs.append(row)
        return row

    by_mode_sb = {}
    for mode in MODES:
        summary, database = _measure_smallbank(mode, measure_us)
        crash = _certify_crash(database, mode)
        by_mode_sb[mode] = record("smallbank", mode, summary,
                                  database, **crash)
    by_mode_tpcc = {}
    for mode in MODES:
        summary, database = _measure_tpcc(mode, measure_us)
        by_mode_tpcc[mode] = record("tpcc-neworder", mode, summary,
                                    database)

    flush_sweep = []
    for interval in FLUSH_INTERVALS:
        summary, database = _measure_smallbank(
            "group", measure_us, flush_interval_us=interval)
        row = record("smallbank", "group", summary, database,
                     flush_interval_us=interval)
        flush_sweep.append(row)

    curve = [_recovery_curve(every, curve_txns)
             for every in CHECKPOINT_CADENCE]

    return {
        "runs": runs,
        "recovery_curve": curve,
        "group_over_sync_smallbank": round(
            by_mode_sb["group"]["throughput_tps"]
            / max(by_mode_sb["sync"]["throughput_tps"], 1e-9), 4),
        "group_over_sync_tpcc": round(
            by_mode_tpcc["group"]["throughput_tps"]
            / max(by_mode_tpcc["sync"]["throughput_tps"], 1e-9), 4),
        "crash_certified": all(
            row["cert_ok"] and row["zero_acked_loss"]
            for mode, row in by_mode_sb.items() if mode != "async"),
        "tamper_rejected": all(
            row["tamper_rejected"] for row in by_mode_sb.values()),
    }


HEADERS = ["workload", "mode", "tput [txn/s]", "lat [usec]",
           "p99 [usec]", "fsyncs", "rec/fsync", "cert"]


def _rows(payload):
    rows = []
    for run in payload["runs"]:
        label = run["mode"]
        if "flush_interval_us" in run:
            label += f" @{run['flush_interval_us']:g}us"
        rows.append([
            run["workload"], label,
            round(run["throughput_tps"], 1),
            round(run["latency_us"], 1),
            round(run["p99_us"], 1),
            run["fsyncs"],
            run["records_per_fsync"],
            run.get("cert_ok", "-"),
        ])
    return rows


def _report(payload):
    print_table(
        "Ablation: durability mode (sync/group/async) on SmallBank "
        "and TPC-C new-order, plus group-commit flush-interval sweep",
        HEADERS, _rows(payload))
    print(f"group-commit speedup over sync: "
          f"{payload['group_over_sync_smallbank']:.2f}x (SmallBank), "
          f"{payload['group_over_sync_tpcc']:.2f}x (TPC-C)")
    print("recovery-time curve (checkpoint cadence -> virtual us):")
    for row in payload["recovery_curve"]:
        every = row["checkpoint_every"] or "never"
        print(f"  ckpt every {every:>5} txns: "
              f"tail {row['entries_replayed']:>4} entries, "
              f"parallel {row['parallel_recovery_us']:>9.1f}us, "
              f"serial {row['serial_recovery_us']:>9.1f}us "
              f"({row['parallel_speedup']:.2f}x), "
              f"cert={row['cert_ok']}")
    print(f"crash certified: {payload['crash_certified']}; "
          f"tampered image rejected: {payload['tamper_rejected']}")


def _assert_acceptance(payload):
    # Every configuration makes progress.
    assert all(r["committed"] > 0 for r in payload["runs"])
    # Group commit amortizes: strictly fewer fsyncs than records on
    # the batched runs, 1:1 under sync.
    for run in payload["runs"]:
        if run["mode"] == "sync":
            assert run["fsyncs"] == run["records_flushed"]
        elif run["mode"] == "group" and run["records_flushed"]:
            assert run["records_per_fsync"] > 1.0
    # Acceptance: group >= 1.3x sync at the default operating point,
    # and TPC-C agrees on the direction.
    assert payload["group_over_sync_smallbank"] >= 1.3
    assert payload["group_over_sync_tpcc"] > 1.0
    # Recovery curve: frequent checkpoints shrink the replayed tail
    # and the recovery makespan; partitioned replay beats serial.
    curve = {row["checkpoint_every"]: row
             for row in payload["recovery_curve"]}
    never, frequent = curve[0], curve[CHECKPOINT_CADENCE[-1]]
    assert frequent["entries_replayed"] < never["entries_replayed"]
    assert frequent["parallel_recovery_us"] < \
        never["parallel_recovery_us"]
    for row in payload["recovery_curve"]:
        assert row["parallel_recovery_us"] < \
            row["serial_recovery_us"]
        assert row["cert_ok"]
    # Crash-recovery certification accepted every kill point and
    # rejected the tampered image.
    assert payload["crash_certified"]
    assert payload["tamper_rejected"]


def test_ablation_durability(benchmark):
    payload = run_ablation()
    emit_report("ablation_durability", lambda: _report(payload))
    emit_json("ablation_durability", payload, config=CONFIG)
    _assert_acceptance(payload)
    benchmark.pedantic(
        lambda: _measure_smallbank("group", 10_000.0),
        rounds=1, iterations=1)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    tiny = "--tiny" in argv
    measure_us = 10_000.0 if tiny else 60_000.0
    curve_txns = 120 if tiny else 240
    payload = run_ablation(measure_us=measure_us,
                           curve_txns=curve_txns)
    emit_report("ablation_durability", lambda: _report(payload))
    _assert_acceptance(payload)
    if json_enabled(argv):
        path = emit_json("ablation_durability", payload,
                         config={**CONFIG, "measure_us": measure_us,
                                 "curve_txns": curve_txns,
                                 "tiny": tiny})
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
