"""Ablation: online reactor migration & elastic rebalancing.

The elasticity knob of the deployment spectrum, measured on a
skew-shifted SmallBank workload over a shared-nothing deployment:

* **frozen vs. elastic placement** — the workload starts uniform, then
  shifts to a hotspot on the first 10% of customers (all homed, by
  range placement, in container 0).  With placement frozen the hot
  container bottlenecks; with a ``db.rebalance()`` call after the
  shift the hot reactors migrate apart and throughput recovers.  The
  acceptance criterion asserts a >= 1.2x recovery in the post-
  rebalance window.
* **migration certification under every CC scheme** — smaller
  contended runs with two live migrations mid-measurement, under
  ``occ`` / ``2pl_nowait`` / ``2pl_waitdie``: the recorded operation
  history (which spans the migrations — the successor is aliased to
  the same formal reactor) must stay conflict-serializable, and
  :func:`repro.formal.audit.certify_migration` must certify routing,
  source quiescence, and state-replay equivalence.

Results land in ``benchmarks/results/ablation_migration.txt`` and —
machine-readable — ``BENCH_ablation_migration.json``.  Run as a script
for the CI smoke job: ``python bench_ablation_migration.py --tiny
--json``.
"""

import sys

from _util import emit_json, emit_report, json_enabled, summary_payload

from repro.bench.harness import run_measurement
from repro.bench.report import print_table
from repro.core.database import ReactorDatabase
from repro.core.deployment import RangePlacement, shared_nothing
from repro.formal.audit import attach_recorder, certify_migration
from repro.workloads import smallbank

N_CUSTOMERS = 40
CONTAINERS = 4
WORKERS = 8
HOTSPOT = 0.9
WARMUP_US = 4_000.0
MEASURE_US = 120_000.0
CC_SCHEMES = ("occ", "2pl_nowait", "2pl_waitdie")

CONFIG = {
    "n_customers": N_CUSTOMERS,
    "containers": CONTAINERS,
    "workers": WORKERS,
    "hotspot": HOTSPOT,
    "warmup_us": WARMUP_US,
    "measure_us": MEASURE_US,
    "cc_schemes": list(CC_SCHEMES),
}


def _window_tput(raw_stats, start_us: float, end_us: float) -> float:
    """Committed throughput (txn/s) over an absolute window."""
    committed = sum(1 for s in raw_stats
                    if s.committed and start_us <= s.end < end_us)
    return committed / ((end_us - start_us) / 1e6)


def _run_skew_shift(elastic: bool, measure_us: float):
    """One skew-shifted run; placement frozen or rebalanced."""
    block = N_CUSTOMERS // CONTAINERS
    deployment = shared_nothing(CONTAINERS, mpl=4,
                                placement=RangePlacement(block))
    database = ReactorDatabase(deployment,
                               smallbank.declarations(N_CUSTOMERS))
    smallbank.load(database, N_CUSTOMERS)
    workload = smallbank.SmallbankWorkload(
        N_CUSTOMERS, mix=smallbank.STANDARD_MIX, hotspot_fraction=0.0)

    shift_at = WARMUP_US + measure_us / 3
    rebalance_at = shift_at + measure_us / 6
    recovery_start = rebalance_at + measure_us / 12
    end = WARMUP_US + measure_us
    scheduler = database.scheduler

    def shift() -> None:
        workload.hotspot_fraction = HOTSPOT
        # Rebalancing should react to the *shifted* load, not to the
        # uniform history before it.
        database.migration.reset_load_window()

    scheduler.at(shift_at, shift)
    if elastic:
        scheduler.at(rebalance_at, database.rebalance)

    result = run_measurement(database, WORKERS, workload.factory_for,
                             warmup_us=WARMUP_US,
                             measure_us=measure_us, n_epochs=6)
    recovery_tput = _window_tput(result.raw_stats, recovery_start, end)
    return {
        "placement": "elastic" if elastic else "frozen",
        **summary_payload(result.summary),
        "recovery_window_tput_tps": round(recovery_tput, 3),
        "migration": database.migration_stats(),
    }


def _certify_scheme(scheme: str, measure_us: float):
    """Two live migrations under a contended mix; audit the history."""
    n = 12
    database = ReactorDatabase(
        shared_nothing(3, mpl=4, cc_scheme=scheme,
                       placement=RangePlacement(4)),
        smallbank.declarations(n))
    smallbank.load(database, n)
    recorder = attach_recorder(database)
    workload = smallbank.SmallbankWorkload(n, hotspot_fraction=0.5)
    scheduler = database.scheduler
    scheduler.at(WARMUP_US + measure_us / 3,
                 database.migrate, "cust0", 1)
    scheduler.at(WARMUP_US + 2 * measure_us / 3,
                 database.migrate, "cust1", 2)
    result = run_measurement(database, 4, workload.factory_for,
                             warmup_us=WARMUP_US,
                             measure_us=measure_us, n_epochs=4)
    migration_report = certify_migration(database)
    return {
        "scheme": scheme,
        "committed": result.summary.committed,
        "migrations_completed":
            database.migration_stats()["completed"],
        "serializable": recorder.is_serializable(),
        "migration_cert_ok": migration_report["ok"],
    }


def run_ablation(measure_us: float = MEASURE_US) -> dict:
    """The full grid; returns the machine-readable payload."""
    frozen = _run_skew_shift(elastic=False, measure_us=measure_us)
    elastic = _run_skew_shift(elastic=True, measure_us=measure_us)
    recovery_ratio = (elastic["recovery_window_tput_tps"]
                      / max(frozen["recovery_window_tput_tps"], 1e-9))
    # The certification window stays short regardless of the
    # throughput window: the serializability check is quadratic in
    # recorded operations, and certification needs contended
    # transactions spanning the migrations, not a long measurement.
    certify_us = min(measure_us / 2, 15_000.0)
    certifications = [_certify_scheme(scheme, certify_us)
                      for scheme in CC_SCHEMES]
    return {
        "runs": [frozen, elastic],
        "recovery_ratio": round(recovery_ratio, 4),
        "certifications": certifications,
        "all_certified": all(
            c["serializable"] and c["migration_cert_ok"]
            for c in certifications),
    }


HEADERS = ["placement", "tput [txn/s]", "recovery tput [txn/s]",
           "lat [usec]", "abort %", "migrations", "rows moved"]


def _rows(payload):
    rows = []
    for run in payload["runs"]:
        migration = run["migration"]
        rows.append([
            run["placement"],
            round(run["throughput_tps"], 1),
            round(run["recovery_window_tput_tps"], 1),
            round(run["latency_us"], 1),
            round(run["abort_rate"] * 100, 2),
            migration["completed"],
            migration["rows_copied"],
        ])
    return rows


def _report(payload):
    print_table(
        "Ablation: skew-shifted SmallBank under frozen vs. elastic "
        "placement (online reactor migration)",
        HEADERS, _rows(payload))
    print(f"post-rebalance throughput recovery: "
          f"{payload['recovery_ratio']:.3f}x over frozen placement")
    for cert in payload["certifications"]:
        print(f"{cert['scheme']}: serializable="
              f"{cert['serializable']} migration_cert_ok="
              f"{cert['migration_cert_ok']} "
              f"(committed={cert['committed']}, "
              f"migrations={cert['migrations_completed']})")


def test_ablation_migration(benchmark):
    payload = run_ablation()
    emit_report("ablation_migration", lambda: _report(payload))
    emit_json("ablation_migration", payload, config=CONFIG)

    frozen, elastic = payload["runs"]
    assert frozen["committed"] > 0 and elastic["committed"] > 0
    # The elastic run really migrated the hot reactors.
    assert elastic["migration"]["completed"] >= 2
    assert frozen["migration"]["completed"] == 0

    # Acceptance: rebalancing recovers >= 1.2x throughput over the
    # frozen placement after the skew shift.
    assert payload["recovery_ratio"] >= 1.2

    # Acceptance: histories spanning a live migration certify under
    # every CC scheme.
    for cert in payload["certifications"]:
        assert cert["migrations_completed"] == 2, cert
        assert cert["serializable"], cert
        assert cert["migration_cert_ok"], cert

    benchmark.pedantic(
        lambda: _run_skew_shift(elastic=True, measure_us=20_000.0),
        rounds=1, iterations=1)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    tiny = "--tiny" in argv
    measure_us = 30_000.0 if tiny else MEASURE_US
    payload = run_ablation(measure_us=measure_us)
    emit_report("ablation_migration", lambda: _report(payload))
    if json_enabled(argv):
        path = emit_json("ablation_migration", payload,
                         config={**CONFIG, "measure_us": measure_us,
                                 "tiny": tiny})
        print(f"wrote {path}")
    if payload["recovery_ratio"] < 1.2 or not payload["all_certified"]:
        raise SystemExit(
            f"acceptance failed: recovery_ratio="
            f"{payload['recovery_ratio']} "
            f"all_certified={payload['all_certified']}")


if __name__ == "__main__":
    main()
