"""Ablation: sensitivity of shared-nothing-async to the MPL.

The paper fixes one multiprogramming level for its shared-nothing
deployments; this ablation sweeps it on the new-order-delay workload
(where overlap matters most).  Expected: MPL 1 already overlaps via
blocked-task hand-off; raising MPL helps throughput under load up to
the point where extra in-flight transactions only add conflicts.
"""

from _util import emit_report

from repro.bench.harness import run_measurement
from repro.bench.report import print_series
from repro.experiments.common import tpcc_database
from repro.workloads import tpcc

MPLS = (1, 2, 4, 8)
WORKERS = 4
SCALE_FACTOR = 4


def _measure(mpl: int):
    database = tpcc_database("shared-nothing-async", SCALE_FACTOR,
                             mpl=mpl)
    workload = tpcc.TpccWorkload(
        n_warehouses=SCALE_FACTOR, mix=tpcc.NEW_ORDER_ONLY,
        remote_item_prob=1.0, invalid_item_prob=0.0,
        delay_range=(300.0, 400.0))
    return run_measurement(database, WORKERS, workload.factory_for,
                           warmup_us=10_000.0, measure_us=120_000.0,
                           n_epochs=4).summary


def test_ablation_mpl_sweep(benchmark):
    summaries = {mpl: _measure(mpl) for mpl in MPLS}

    def report():
        print_series(
            "Ablation: shared-nothing-async MPL sweep "
            "(new-order-delay, 4 workers, scale factor 4)",
            "MPL",
            {
                "throughput [txn/s]": {
                    m: s.throughput_tps for m, s in summaries.items()},
                "latency [usec]": {
                    m: s.latency_us for m, s in summaries.items()},
                "abort %": {
                    m: round(s.abort_rate * 100, 2)
                    for m, s in summaries.items()},
            })

    emit_report("ablation_mpl", report)

    # All MPLs make progress; throughput is not destroyed by MPL 1
    # because blocked tasks release their slots.
    assert all(s.committed > 0 for s in summaries.values())
    best = max(s.throughput_tps for s in summaries.values())
    assert summaries[1].throughput_tps > 0.5 * best

    benchmark.pedantic(lambda: _measure(4), rounds=1, iterations=1)
