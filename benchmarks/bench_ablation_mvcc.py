"""Ablation: multi-version snapshot reads (mvocc) vs validated reads.

The storage-engine knob of the deployment spectrum, measured:

* **read-heavy YCSB x skew** — ``multi_read``/``multi_update`` over
  zipfian keys on the paper's shared-nothing YCSB deployment (range-
  placed keys, pinned reactors).  Read-only roots span a wide hot-key
  read set, so under ``occ`` they validate long read sets against
  concurrent writers and abort; under ``mvocc`` they pin a begin-TID
  snapshot, never validate, and never abort.  The acceptance point is
  the read-heavy high-skew cell: mvocc must beat occ by >= 1.3x with
  zero read-only aborts.

* **SmallBank balance-checks x skew** — the read-heavy Balance mix
  with a hotspot, across occ / 2pl_nowait / mvocc (2PL included: its
  readers pay lock conflicts that snapshots also remove).

* **certification** — every mvcc run in the grid records its snapshot
  reads and is certified by ``certify_snapshot_isolation`` (no future
  reads, newest-at-snapshot, one snapshot per root); an injected
  stale-read tamper must be rejected.

Results land in ``benchmarks/results/ablation_mvcc.txt`` and —
machine-readable, with ``version_stats`` per run —
``BENCH_ablation_mvcc.json``.  Run as a script for the CI smoke job:
``python bench_ablation_mvcc.py --tiny --json``.
"""

import dataclasses
import sys

from _util import emit_json, emit_report, json_enabled, summary_payload

from repro.bench.harness import run_measurement
from repro.bench.report import print_table
from repro.core.database import ReactorDatabase
from repro.core.deployment import RangePlacement, shared_nothing
from repro.durability.recovery import enable_durability
from repro.formal.audit import certify_snapshot_isolation
from repro.workloads import smallbank, ycsb

SCHEMES = ("occ", "2pl_nowait", "mvocc")
YCSB_SKEWS = (0.6, 0.9)
YCSB_KEYS = 64
YCSB_CONTAINERS = 4
READ_FRACTION = 0.8
READ_SPAN = 20
WORKERS = 16
SB_CUSTOMERS = 40
SB_HOTSPOTS = (0.0, 0.9)

CONFIG = {
    "schemes": list(SCHEMES),
    "ycsb_skews": list(YCSB_SKEWS),
    "ycsb_keys": YCSB_KEYS,
    "read_fraction": READ_FRACTION,
    "read_span": READ_SPAN,
    "workers": WORKERS,
    "smallbank_customers": SB_CUSTOMERS,
    "smallbank_hotspots": list(SB_HOTSPOTS),
}


def _measure_ycsb(scheme: str, theta: float,
                  measure_us: float, audit: bool = False):
    deployment = shared_nothing(
        YCSB_CONTAINERS, mpl=4, cc_scheme=scheme,
        placement=RangePlacement(YCSB_KEYS // YCSB_CONTAINERS))
    decls = [(ycsb.key_name(i), ycsb.KEY_REACTOR)
             for i in range(YCSB_KEYS)]
    database = ReactorDatabase(deployment, decls)
    if audit:
        enable_durability(database)
        database.enable_snapshot_audit()
    for i in range(YCSB_KEYS):
        name = ycsb.key_name(i)
        database.load(name, "kv",
                      [{"key": name, "value": "x" * ycsb.RECORD_SIZE}])
    workload = ycsb.YcsbWorkload(
        1, theta=theta, n_containers=YCSB_CONTAINERS, n_keys=YCSB_KEYS,
        read_fraction=READ_FRACTION, read_keys_per_txn=READ_SPAN)
    result = run_measurement(database, WORKERS, workload.factory_for,
                             warmup_us=5_000.0, measure_us=measure_us,
                             n_epochs=4)
    return result.summary, database


def _measure_smallbank(scheme: str, hotspot: float,
                       measure_us: float, audit: bool = False):
    database = ReactorDatabase(
        shared_nothing(4, mpl=4, cc_scheme=scheme),
        smallbank.declarations(SB_CUSTOMERS))
    if audit:
        enable_durability(database)
        database.enable_snapshot_audit()
    smallbank.load(database, SB_CUSTOMERS)
    workload = smallbank.SmallbankWorkload(
        SB_CUSTOMERS, mix=smallbank.READ_HEAVY_MIX,
        hotspot_fraction=hotspot)
    result = run_measurement(database, WORKERS, workload.factory_for,
                             warmup_us=5_000.0, measure_us=measure_us,
                             n_epochs=4)
    return result.summary, database


def _certify(database) -> dict:
    report = certify_snapshot_isolation(database)
    return {
        # Full certification: clean AND anchored in the redo log.
        "ok": report["ok"] and report["log_checked"],
        "log_checked": report["log_checked"],
        "reads_checked": report["reads_checked"],
        "roots_checked": report["roots_checked"],
        "violations": len(report["violations"]),
    }


def _tamper_rejected(database) -> bool:
    """Inject a stale-read tamper into a copy of the audit log and
    check the certificate refuses it."""
    events = database.storage.audit or []
    idx = next((i for i, e in enumerate(events)
                if e.observed_tid > 0), None)
    if idx is None:
        return False
    tampered = list(events)
    tampered[idx] = dataclasses.replace(
        tampered[idx], observed_tid=tampered[idx].observed_tid - 1)
    return not certify_snapshot_isolation(
        database, events=tampered)["ok"]


def run_ablation(measure_us: float = 40_000.0) -> dict:
    """The full grid; returns the machine-readable payload."""
    runs = []
    tamper_rejections = []

    def record(workload: str, scheme: str, skew, summary, database):
        audited = database.snapshot_reads_enabled
        row = {
            "workload": workload,
            "scheme": scheme,
            "skew": skew,
            **summary_payload(summary),
            "version_stats": database.version_stats(),
        }
        if audited:
            row["snapshot_certificate"] = _certify(database)
            tamper_rejections.append(_tamper_rejected(database))
        runs.append(row)
        return row

    by_key = {}
    for theta in YCSB_SKEWS:
        for scheme in SCHEMES:
            summary, database = _measure_ycsb(
                scheme, theta, measure_us,
                audit=scheme == "mvocc")
            by_key[("ycsb", scheme, theta)] = record(
                "ycsb-readheavy", scheme, theta, summary, database)
    for hotspot in SB_HOTSPOTS:
        for scheme in SCHEMES:
            summary, database = _measure_smallbank(
                scheme, hotspot, measure_us,
                audit=scheme == "mvocc")
            by_key[("smallbank", scheme, hotspot)] = record(
                "smallbank-balance", scheme, hotspot, summary,
                database)

    high = max(YCSB_SKEWS)
    speedup = (by_key[("ycsb", "mvocc", high)]["throughput_tps"]
               / max(by_key[("ycsb", "occ", high)]["throughput_tps"],
                     1e-9))
    mvocc_runs = [r for r in runs if r["scheme"] == "mvocc"]
    return {
        "runs": runs,
        "mvocc_speedup_highskew": round(speedup, 4),
        "mvocc_read_only_aborts": sum(
            sum(r["version_stats"]["read_only_aborts"].values())
            for r in mvocc_runs),
        "snapshot_certificates_ok": all(
            r["snapshot_certificate"]["ok"] for r in mvocc_runs),
        "tamper_rejected": bool(tamper_rejections)
        and all(tamper_rejections),
    }


HEADERS = ["workload/skew", "scheme", "tput [txn/s]", "abort %",
           "p99 [usec]", "snap roots", "ro aborts", "live vers",
           "gc vers"]


def _rows(payload):
    rows = []
    for run in payload["runs"]:
        stats = run["version_stats"]
        rows.append([
            f"{run['workload']} s={run['skew']}", run["scheme"],
            round(run["throughput_tps"], 1),
            round(run["abort_rate"] * 100, 2),
            round(run["p99_us"], 1),
            stats["snapshot_roots"],
            sum(stats["read_only_aborts"].values()),
            stats["live_versions"],
            stats["gc_versions"],
        ])
    return rows


def _report(payload):
    print_table(
        "Ablation: multi-version snapshot reads (read-heavy YCSB + "
        "SmallBank balance-checks, mvocc vs occ/2pl across skew)",
        HEADERS, _rows(payload))
    print(f"mvocc speedup over occ (read-heavy, high skew): "
          f"{payload['mvocc_speedup_highskew']:.3f}x")
    print(f"mvocc read-only aborts: "
          f"{payload['mvocc_read_only_aborts']}")
    print(f"snapshot certificates ok: "
          f"{payload['snapshot_certificates_ok']}; stale-read tamper "
          f"rejected: {payload['tamper_rejected']}")


def test_ablation_mvcc(benchmark):
    payload = run_ablation()
    emit_report("ablation_mvcc", lambda: _report(payload))
    emit_json("ablation_mvcc", payload, config=CONFIG)

    # Every configuration makes progress.
    assert all(r["committed"] > 0 for r in payload["runs"])

    # Snapshot readers never abort, and every mvcc run certifies;
    # tampered histories are rejected.
    assert payload["mvocc_read_only_aborts"] == 0
    assert payload["snapshot_certificates_ok"]
    assert payload["tamper_rejected"]

    # Acceptance: abort-free snapshot reads beat validated reads on
    # the read-heavy high-skew YCSB point.
    assert payload["mvocc_speedup_highskew"] >= 1.3

    benchmark.pedantic(
        lambda: _measure_ycsb("mvocc", max(YCSB_SKEWS), 20_000.0),
        rounds=1, iterations=1)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    tiny = "--tiny" in argv
    measure_us = 10_000.0 if tiny else 40_000.0
    payload = run_ablation(measure_us=measure_us)
    emit_report("ablation_mvcc", lambda: _report(payload))
    if json_enabled(argv):
        path = emit_json("ablation_mvcc", payload,
                         config={**CONFIG, "measure_us": measure_us,
                                 "tiny": tiny})
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
