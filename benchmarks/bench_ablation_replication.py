"""Ablation: replication mode x skew, read-replica routing, failover.

The availability knob of the deployment spectrum, measured:

* **mode x skew** — SmallBank (standard mix, hotspot skew) and TPC-C
  new-order (remote-item probability) under ``none`` / ``async`` /
  ``sync`` replication.  Sync pays the ack round-trip on every writing
  commit; async hides it behind a bounded apply lag; both leave the
  abort profile of the CC scheme unchanged.
* **read-replica routing** — a read-heavy SmallBank mix (80% Balance)
  on a single-copy deployment vs. the same deployment with one replica
  per container and ``read_from_replicas``: Balance roots move to the
  replica's cores, write throughput keeps the primary, total
  throughput rises.
* **kill-primary failover** — a sync-replicated shared-nothing run
  with a mid-measurement crash of container 0 and immediate promotion:
  the formal audit certifies the promoted replica as prefix-consistent
  with zero acknowledged-commit loss while throughput recovers.

Results land in ``benchmarks/results/ablation_replication.txt`` and —
machine-readable — ``BENCH_ablation_replication.json``.  Run as a
script for the CI smoke job: ``python bench_ablation_replication.py
--tiny --json``.
"""

import sys

from _util import emit_json, emit_report, json_enabled, summary_payload

from repro.bench.harness import run_measurement
from repro.bench.report import print_table
from repro.core.database import ReactorDatabase
from repro.core.deployment import (
    shared_everything_with_affinity,
    shared_nothing,
)
from repro.experiments.common import tpcc_database
from repro.formal.audit import certify_replication
from repro.replication import ReplicationConfig
from repro.workloads import smallbank, tpcc

MODES = ("none", "async", "sync")
SKEWS = (0.0, 0.9)
N_CUSTOMERS = 40
WORKERS = 4
TPCC_WAREHOUSES = 2

CONFIG = {
    "modes": list(MODES),
    "skews": list(SKEWS),
    "n_customers": N_CUSTOMERS,
    "workers": WORKERS,
    "tpcc_warehouses": TPCC_WAREHOUSES,
}


def _replication(mode: str,
                 read_from_replicas: bool = False
                 ) -> ReplicationConfig | None:
    if mode == "none":
        return None
    return ReplicationConfig(replicas_per_container=1, mode=mode,
                             read_from_replicas=read_from_replicas,
                             async_lag_us=100.0)


def _measure_smallbank(mode: str, hotspot: float, *,
                       mix=smallbank.STANDARD_MIX,
                       read_from_replicas: bool = False,
                       n_executors: int = 4,
                       workers: int = WORKERS,
                       measure_us: float = 60_000.0):
    deployment = shared_everything_with_affinity(
        n_executors,
        replication=_replication(mode, read_from_replicas))
    database = ReactorDatabase(
        deployment, smallbank.declarations(N_CUSTOMERS))
    smallbank.load(database, N_CUSTOMERS)
    workload = smallbank.SmallbankWorkload(
        N_CUSTOMERS, mix=mix, hotspot_fraction=hotspot)
    result = run_measurement(database, workers, workload.factory_for,
                             warmup_us=5_000.0, measure_us=measure_us,
                             n_epochs=4)
    return result.summary, database


def _measure_tpcc(mode: str, remote_item_prob: float,
                  measure_us: float = 60_000.0):
    database = tpcc_database("shared-nothing-async", TPCC_WAREHOUSES,
                             mpl=4, replication=_replication(mode))
    workload = tpcc.TpccWorkload(
        n_warehouses=TPCC_WAREHOUSES, mix=tpcc.NEW_ORDER_ONLY,
        remote_item_prob=remote_item_prob, invalid_item_prob=0.0)
    result = run_measurement(database, WORKERS, workload.factory_for,
                             warmup_us=5_000.0, measure_us=measure_us,
                             n_epochs=4)
    return result.summary, database


def _measure_failover(mode: str = "sync",
                      measure_us: float = 60_000.0):
    """Kill container 0 mid-measurement and promote its replica."""
    n_customers = 16
    database = ReactorDatabase(
        shared_nothing(2, replication=_replication(mode)),
        smallbank.declarations(n_customers))
    smallbank.load(database, n_customers)
    workload = smallbank.SmallbankWorkload(n_customers)
    kill_at = 5_000.0 + measure_us / 2
    database.scheduler.at(kill_at,
                          database.replication.kill_and_promote, 0)
    result = run_measurement(database, WORKERS, workload.factory_for,
                             warmup_us=5_000.0, measure_us=measure_us,
                             n_epochs=4)
    audit = certify_replication(database)
    return result.summary, database, audit


def run_ablation(measure_us: float = 60_000.0) -> dict:
    """The full grid; returns the machine-readable payload."""
    runs = []

    def record(workload: str, mode: str, skew, summary, database,
               **extra):
        row = {
            "workload": workload,
            "mode": mode,
            "skew": skew,
            **summary_payload(summary),
            "replication": database.replication_stats(),
            **extra,
        }
        runs.append(row)
        return row

    for hotspot in SKEWS:
        for mode in MODES:
            summary, database = _measure_smallbank(
                mode, hotspot, measure_us=measure_us)
            record("smallbank", mode, hotspot, summary, database)
    for remote in (0.1, 1.0):
        for mode in MODES:
            summary, database = _measure_tpcc(
                mode, remote, measure_us=measure_us)
            record("tpcc-neworder", mode, remote, summary, database)

    # Read-replica routing: single copy vs replicated read routing on
    # the read-heavy mix (the acceptance comparison).
    base_summary, base_db = _measure_smallbank(
        "none", 0.0, mix=smallbank.READ_HEAVY_MIX, n_executors=2,
        workers=8, measure_us=measure_us)
    base_row = record("smallbank-readheavy", "none", 0.0,
                      base_summary, base_db, read_from_replicas=False)
    repl_summary, repl_db = _measure_smallbank(
        "async", 0.0, mix=smallbank.READ_HEAVY_MIX,
        read_from_replicas=True, n_executors=2, workers=8,
        measure_us=measure_us)
    repl_row = record("smallbank-readheavy", "async", 0.0,
                      repl_summary, repl_db, read_from_replicas=True)

    # Failover: kill the primary of container 0 mid-run, promote.
    fo_summary, fo_db, fo_audit = _measure_failover(
        measure_us=measure_us)
    record("smallbank-failover", "sync", 0.0, fo_summary, fo_db,
           audit_ok=fo_audit["ok"],
           failovers=fo_audit["failovers"])

    return {
        "runs": runs,
        "read_replica_speedup": round(
            repl_row["throughput_tps"]
            / max(base_row["throughput_tps"], 1e-9), 4),
        "failover_audit_ok": fo_audit["ok"],
        "failover_zero_committed_loss": all(
            f["zero_committed_loss"] for f in fo_audit["failovers"]),
    }


HEADERS = ["workload/skew", "mode", "tput [txn/s]", "lat [usec]",
           "abort %", "p99 [usec]", "repl lag [usec]", "acked"]


def _rows(payload):
    rows = []
    for run in payload["runs"]:
        repl = run["replication"]
        rows.append([
            f"{run['workload']} s={run['skew']}", run["mode"],
            round(run["throughput_tps"], 1),
            round(run["latency_us"], 1),
            round(run["abort_rate"] * 100, 2),
            round(run["p99_us"], 1),
            repl.get("avg_lag_us", 0.0),
            repl.get("acked_records", 0),
        ])
    return rows


def _report(payload):
    print_table(
        "Ablation: replication mode x skew (SmallBank, TPC-C "
        "new-order), read-replica routing, kill-primary failover",
        HEADERS, _rows(payload))
    print(f"read-replica speedup over single-copy: "
          f"{payload['read_replica_speedup']:.3f}x")
    print(f"failover audit ok: {payload['failover_audit_ok']}; "
          f"zero committed loss: "
          f"{payload['failover_zero_committed_loss']}")


def test_ablation_replication(benchmark):
    payload = run_ablation()
    emit_report("ablation_replication", lambda: _report(payload))
    emit_json("ablation_replication", payload, config=CONFIG)

    by_key = {(r["workload"], r["mode"], r["skew"]): r
              for r in payload["runs"]}

    # Every configuration makes progress.
    assert all(r["committed"] > 0 for r in payload["runs"])

    # Sync pays for acks: per-commit latency is strictly above the
    # unreplicated baseline on the write-heavy TPC-C runs.
    for remote in (0.1, 1.0):
        none = by_key[("tpcc-neworder", "none", remote)]
        sync = by_key[("tpcc-neworder", "sync", remote)]
        assert sync["latency_us"] > none["latency_us"]

    # Replicas see every shipped record (no lag backlog at drain).
    for run in payload["runs"]:
        repl = run["replication"]
        if repl["replicas_per_container"] and not run.get("failovers"):
            assert repl["records_applied"] == repl["records_shipped"]

    # Acceptance: read routing beats single-copy on the read-heavy
    # mix, and the mid-run failover certifies with zero loss.
    assert payload["read_replica_speedup"] > 1.05
    assert payload["failover_audit_ok"]
    assert payload["failover_zero_committed_loss"]

    benchmark.pedantic(
        lambda: _measure_smallbank("sync", 0.9,
                                   measure_us=20_000.0),
        rounds=1, iterations=1)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    tiny = "--tiny" in argv
    measure_us = 10_000.0 if tiny else 60_000.0
    payload = run_ablation(measure_us=measure_us)
    emit_report("ablation_replication", lambda: _report(payload))
    if json_enabled(argv):
        path = emit_json("ablation_replication", payload,
                         config={**CONFIG, "measure_us": measure_us,
                                 "tiny": tiny})
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
