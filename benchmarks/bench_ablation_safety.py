"""Ablation: cost and behavior of the dynamic safety condition.

Measures (a) the bookkeeping overhead of active-set tracking on a
workload that never violates it, and (b) the abort behavior of a
workload that does: transactions issuing two concurrent asynchronous
sub-transactions to one reactor must abort under shared-nothing and
execute fine (inlined, sequential) under shared-everything —
demonstrating that the condition is dynamic, not static.
"""

from _util import emit_report

from repro.bench.harness import run_measurement
from repro.bench.report import print_table
from repro.core.database import ReactorDatabase
from repro.core.deployment import (
    shared_everything_with_affinity,
    shared_nothing,
)
from repro.workloads import smallbank

N = 12


def _bank(deployment):
    database = ReactorDatabase(deployment, smallbank.declarations(N))
    smallbank.load(database, N)
    return database


def _race_factory(worker_id: int):
    def factory(worker):
        src = smallbank.reactor_name(worker.rng.randrange(N))
        dst = smallbank.reactor_name((int(src[4:]) + 1) % N)
        # fully-async to a single destination twice: two concurrent
        # sub-transactions on the same reactor within one root.
        return (src, "multi_transfer_fully_async",
                (src, (dst, dst), 1.0))
    return factory


def _safe_factory(worker_id: int):
    def factory(worker):
        src = smallbank.reactor_name(worker.rng.randrange(N))
        dsts = tuple(smallbank.reactor_name((int(src[4:]) + k) % N)
                     for k in (1, 2, 4))
        return (src, "multi_transfer_fully_async", (src, dsts, 1.0))
    return factory


def _danger_aborts(result) -> int:
    """Aborts caused by the safety condition specifically (OCC
    validation conflicts under contention are a different story)."""
    return sum(1 for s in result.raw_stats
               if not s.committed and s.abort_reason
               and "race on reactor" in s.abort_reason)


def test_ablation_safety_condition(benchmark):
    # (a) overhead question: safe fan-outs under shared-nothing never
    # trip the condition (its bookkeeping is O(1) dict work per call);
    # any aborts are ordinary OCC conflicts between the two workers.
    sn = _bank(shared_nothing(3))
    safe_result = run_measurement(sn, 2, _safe_factory,
                                  warmup_us=5_000.0,
                                  measure_us=40_000.0, n_epochs=4)
    safe = safe_result.summary
    assert _danger_aborts(safe_result) == 0

    # (b) dangerous program: aborts under shared-nothing...
    sn_race = _bank(shared_nothing(3))
    racing_result = run_measurement(sn_race, 2, _race_factory,
                                    warmup_us=5_000.0,
                                    measure_us=40_000.0, n_epochs=4)
    racing = racing_result.summary
    # ...but executes fine when calls inline under shared-everything.
    se_race = _bank(shared_everything_with_affinity(3))
    inlined_result = run_measurement(se_race, 2, _race_factory,
                                     warmup_us=5_000.0,
                                     measure_us=40_000.0, n_epochs=4)
    inlined = inlined_result.summary

    def report():
        print_table(
            "Ablation: dynamic safety condition",
            ["scenario", "committed", "aborted", "abort %"],
            [
                ["safe fan-out, shared-nothing", safe.committed,
                 safe.aborted, round(safe.abort_rate * 100, 2)],
                ["same-reactor race, shared-nothing",
                 racing.committed, racing.aborted,
                 round(racing.abort_rate * 100, 2)],
                ["same-reactor race, shared-everything",
                 inlined.committed, inlined.aborted,
                 round(inlined.abort_rate * 100, 2)],
            ])

    emit_report("ablation_safety", report)

    assert racing.abort_rate > 0.9  # dangerous structure aborted
    assert _danger_aborts(racing_result) > 0.9 * racing.aborted
    assert _danger_aborts(inlined_result) == 0  # inlined is safe

    benchmark.pedantic(
        lambda: run_measurement(_bank(shared_nothing(3)), 1,
                                _safe_factory, warmup_us=2_000.0,
                                measure_us=10_000.0, n_epochs=2),
        rounds=2, iterations=1)
