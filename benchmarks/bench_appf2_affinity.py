"""Appendix F.2: the affinity ablation.

Paper shape: with scale factor 1 and a single worker under round-robin
routing, adding executors *reduces* throughput — to 86% with two
executors and progressively down to ~40% with sixteen — because every
spread-out request pays cache-migration costs.
"""

from _util import emit_report

from repro.experiments import appf2

PARAMS = dict(executor_counts=(1, 2, 4, 8, 16),
              measure_us=50_000.0, n_epochs=4)


def test_appf2_affinity_ablation(benchmark):
    points = appf2.run(**PARAMS)
    emit_report("appf2", appf2.report, points)

    relative = {p.executors: p.relative_pct for p in points}
    assert relative[1] == 100.0
    # Monotone degradation as routing spreads load thinner.
    assert relative[2] < 100.0
    assert relative[16] < relative[2]
    # Magnitudes in the paper's neighbourhood (86% -> ~40%).
    assert 60.0 < relative[2] < 99.0
    assert 30.0 < relative[16] < 75.0

    benchmark.pedantic(
        lambda: appf2.run(executor_counts=(4,),
                          measure_us=15_000.0, n_epochs=2),
        rounds=2, iterations=1)
