"""Appendix F.3: containerization overhead.

Paper shape: empty transactions with concurrency control disabled
cost a roughly constant ~22 usec per invocation across scale factors
(dominated by client<->executor thread switching), a modest fraction
(~18%) of average TPC-C transaction latency.
"""

from _util import emit_report

from repro.experiments import appf3

PARAMS = dict(scale_factors=(1, 4, 8), measure_us=30_000.0,
              n_epochs=4)


def test_appf3_containerization_overhead(benchmark):
    points = appf3.run(**PARAMS)
    emit_report("appf3", appf3.report, points)

    overheads = [p.overhead_us for p in points]
    # Roughly constant across scale factors (within 25% of the mean).
    mean = sum(overheads) / len(overheads)
    assert all(abs(o - mean) / mean < 0.25 for o in overheads)
    # Same order of magnitude as the paper's ~22 usec.
    assert 10.0 < mean < 45.0
    # A minor fraction of real transaction latency.
    for p in points:
        assert p.overhead_pct_of_tpcc < 50.0

    benchmark.pedantic(
        lambda: appf3.run(scale_factors=(4,), measure_us=10_000.0,
                          n_epochs=2),
        rounds=2, iterations=1)
