"""Wall-clock scale-up of the ``threads`` execution backend.

Every other benchmark measures *virtual* time on the sim backend; this
one measures real transactions per wall-clock second on the
``threads`` backend (one OS thread per container) as the container
count grows — the certify-then-measure counterpart to the paper's
multi-core scale-up experiments.  Workloads: the SmallBank standard
mix partitioned across containers, and TPC-C new-order with one
warehouse per container (10% remote items).

Methodology:

* each (workload, containers) point runs on a freshly built database;
  the ``threads`` rows report ``wall_txns_per_sec`` over a real
  measurement window, and ``speedup_vs_1`` divides by the same
  workload's 1-container throughput;
* matching ``sim`` rows report virtual-time throughput for context
  (they use the same deployments, so certificates proven on sim apply
  to the measured configurations);
* the payload records whether the GIL was enabled.  On free-threaded
  Python (3.13t+) container threads run in parallel and throughput
  must rise monotonically 1 -> 4 containers with >= 1.5x at 4; under
  the GIL threads interleave on one core, the scale-up target does not
  apply, and the numbers are report-only (``assert_scaleup`` degrades
  to a note).

Run as a script: ``python bench_backend_scaleup.py [--tiny] [--json]
[--no-assert]``.  The CI ``backend-smoke`` job runs the tiny grid and
feeds the JSON to ``tools/bench_compare.py backend_scaleup`` as a
report-only comparison (wall numbers do not transfer between
runners).
"""

import sys
import sysconfig
import time

from _util import emit_json, emit_report, json_enabled, summary_payload

from repro.bench.harness import run_measurement
from repro.bench.report import print_table
from repro.core.database import ReactorDatabase
from repro.core.deployment import RangePlacement, shared_nothing
from repro.experiments.common import tpcc_database
from repro.workloads import smallbank, tpcc

#: Container counts measured (one executor and one OS thread each).
SCALE_POINTS = (1, 2, 4)
#: Free-threaded acceptance target: wall throughput at 4 containers
#: versus 1.
SPEEDUP_TARGET = 1.5

SB_CUSTOMERS = 64
TPCC_REMOTE_ITEM_PROB = 0.1
WORKERS_PER_CONTAINER = 2

#: (warmup_us, measure_us) per mode — *wall* microseconds on the
#: threads backend, virtual on sim.
WINDOWS = {"full": (20_000.0, 250_000.0), "tiny": (10_000.0, 60_000.0)}

WORKLOADS = ("smallbank", "tpcc-neworder")

CONFIG = {
    "scale_points": list(SCALE_POINTS),
    "workloads": list(WORKLOADS),
    "smallbank_customers": SB_CUSTOMERS,
    "tpcc_remote_item_prob": TPCC_REMOTE_ITEM_PROB,
    "workers_per_container": WORKERS_PER_CONTAINER,
    "speedup_target": SPEEDUP_TARGET,
}


def gil_enabled() -> bool:
    """Is the GIL active?  (True on every non-free-threaded build.)"""
    check = getattr(sys, "_is_gil_enabled", None)
    if check is not None:
        return bool(check())
    return not bool(sysconfig.get_config_var("Py_GIL_DISABLED"))


def _build(workload: str, n_containers: int, backend: str):
    if workload == "smallbank":
        block = max(1, SB_CUSTOMERS // n_containers)
        deployment = shared_nothing(
            n_containers, cc_scheme="occ",
            placement=RangePlacement(block), backend=backend)
        database = ReactorDatabase(
            deployment, smallbank.declarations(SB_CUSTOMERS))
        smallbank.load(database, SB_CUSTOMERS)
        factory_for = smallbank.SmallbankWorkload(
            SB_CUSTOMERS).factory_for
    elif workload == "tpcc-neworder":
        database = tpcc_database(
            "shared-nothing-async", n_containers, mpl=4,
            backend=backend)
        factory_for = tpcc.TpccWorkload(
            n_warehouses=n_containers, mix=tpcc.NEW_ORDER_ONLY,
            remote_item_prob=TPCC_REMOTE_ITEM_PROB,
            invalid_item_prob=0.0).factory_for
    else:  # pragma: no cover - WORKLOADS restricts the names
        raise ValueError(f"unknown workload {workload!r}")
    return database, factory_for


def measure_point(workload: str, n_containers: int, backend: str,
                  mode: str) -> dict:
    warmup_us, measure_us = WINDOWS[mode]
    database, factory_for = _build(workload, n_containers, backend)
    workers = WORKERS_PER_CONTAINER * n_containers
    start = time.perf_counter()
    result = run_measurement(database, workers, factory_for,
                             warmup_us=warmup_us,
                             measure_us=measure_us, n_epochs=4)
    wall = time.perf_counter() - start
    database.close()
    txns = len(result.raw_stats)
    return {
        "workload": workload,
        "containers": n_containers,
        "backend": backend,
        "mode": mode,
        "txns": txns,
        "wall_seconds": round(wall, 4),
        "wall_txns_per_sec": round(txns / wall, 1),
        **summary_payload(result.summary),
    }


def run_grid(mode: str) -> list[dict]:
    rows = []
    for workload in WORKLOADS:
        for backend in ("sim", "threads"):
            base_tps = None
            for n_containers in SCALE_POINTS:
                row = measure_point(workload, n_containers, backend,
                                    mode)
                tps = row["wall_txns_per_sec"]
                if base_tps is None:
                    base_tps = tps
                row["speedup_vs_1"] = round(
                    tps / base_tps, 3) if base_tps else 0.0
                rows.append(row)
    return rows


def build_payload(mode: str) -> dict:
    rows = run_grid(mode)
    return {
        "runs": rows,
        "gil_enabled": gil_enabled(),
        "python_version": sys.version.split()[0],
        #: bench_compare reads this; the CI job treats the whole
        #: comparison as report-only (wall numbers are machine-bound),
        #: so the band only orders the textual report.
        "gate": {"metric": "wall_txns_per_sec", "tolerance": 0.5},
    }


def assert_scaleup(payload: dict) -> None:
    """Free-threaded acceptance: threads throughput must increase
    monotonically with container count and reach ``SPEEDUP_TARGET``
    at the largest point.  Under the GIL container threads share one
    core, so the check degrades to a printed note (report-only)."""
    if payload["gil_enabled"]:
        print("GIL enabled: scale-up target is report-only on this "
              "interpreter (run on a free-threaded build to enforce)")
        return
    for workload in WORKLOADS:
        series = [r for r in payload["runs"]
                  if r["backend"] == "threads"
                  and r["workload"] == workload]
        series.sort(key=lambda r: r["containers"])
        speedups = [r["speedup_vs_1"] for r in series]
        assert all(b >= a for a, b in zip(speedups, speedups[1:])), (
            f"{workload}: threads throughput is not monotone in "
            f"container count: {speedups}")
        assert speedups[-1] >= SPEEDUP_TARGET, (
            f"{workload}: {series[-1]['containers']}-container "
            f"speedup {speedups[-1]:.2f}x is below the "
            f"{SPEEDUP_TARGET}x free-threaded target")


HEADERS = ["workload", "backend", "containers", "wall txn/s",
           "speedup", "txns", "abort %"]


def _report(payload):
    rows = []
    for run in payload["runs"]:
        rows.append([
            run["workload"], run["backend"], run["containers"],
            run["wall_txns_per_sec"], run["speedup_vs_1"],
            run["txns"], round(run["abort_rate"] * 100, 2),
        ])
    print_table(
        "Backend scale-up: wall-clock throughput vs container count "
        f"(GIL {'on' if payload['gil_enabled'] else 'off'})",
        HEADERS, rows)


def test_backend_scaleup(benchmark):
    payload = build_payload("tiny")
    emit_report("backend_scaleup", lambda: _report(payload))
    assert all(r["committed"] > 0 for r in payload["runs"])
    assert_scaleup(payload)
    benchmark.pedantic(
        lambda: measure_point("smallbank", 1, "threads", "tiny"),
        rounds=1, iterations=1)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    mode = "tiny" if "--tiny" in argv else "full"
    payload = build_payload(mode)
    emit_report("backend_scaleup", lambda: _report(payload))
    if json_enabled(argv):
        path = emit_json("backend_scaleup", payload,
                         config={**CONFIG, "mode": mode},
                         backend="threads")
        print(f"wrote {path}")
    if "--no-assert" not in argv:
        assert_scaleup(payload)


if __name__ == "__main__":
    main()
