"""Figure 5: multi-transfer latency vs size and program formulation.

Paper shape to reproduce: latency grows linearly with transaction
size for all formulations; fully-sync is slowest, latency drops as
asynchronicity increases, opt is fastest (86 usec -> 25 usec at size 7
in the paper).
"""

from _util import emit_report

from repro.experiments import fig05

SIZES = (1, 2, 3, 4, 5, 6, 7)
PARAMS = dict(n_txns=60, customers_per_container=60)


def test_fig05_multi_transfer_formulations(benchmark):
    results = fig05.run(sizes=SIZES, **PARAMS)
    emit_report("fig05", fig05.report, results)

    # Shape assertions (paper Section 4.2.1).
    for size in SIZES[2:]:
        assert results["fully-sync"][size] > \
            results["partially-async"][size]
        assert results["partially-async"][size] > \
            results["fully-async"][size]
        assert results["fully-async"][size] > results["opt"][size] * 0.9
    # Linear growth of fully-sync; opt much flatter.
    sync_growth = results["fully-sync"][7] - results["fully-sync"][1]
    opt_growth = results["opt"][7] - results["opt"][1]
    assert sync_growth > 2.5 * opt_growth

    benchmark(lambda: fig05.run(sizes=(7,), variants=("opt",),
                                n_txns=10, customers_per_container=60))
