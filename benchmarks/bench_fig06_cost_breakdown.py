"""Figure 6: latency breakdown into cost-model components.

Paper shape: the predicted per-component breakdown (calibrated only
from the size-1 profile) closely matches observed latencies; the bulk
of any residual sits in commit+input-gen, which the Figure 3 equation
deliberately excludes.
"""

from _util import emit_report

from repro.experiments import fig06

PARAMS = dict(sizes=(1, 4, 7), n_txns=60, customers_per_container=60)


def test_fig06_breakdown_observed_vs_predicted(benchmark):
    rows = fig06.run(**PARAMS)
    emit_report("fig06", fig06.report, rows)

    by_label = {row.label: row for row in rows}
    for label, row in by_label.items():
        observed = row.observed["total"]
        predicted = row.predicted["total"]
        # Predictions within 35% of observation everywhere (the paper
        # reports close fits with residuals in commit+input-gen).
        assert abs(predicted - observed) / observed < 0.35, label
    # Component-level agreement where it matters: communication.
    row = by_label["fully-sync@7"]
    assert abs(row.predicted["cs"] - row.observed["cs"]) < 2.0
    assert abs(row.predicted["cr"] - row.observed["cr"]) < 6.0

    benchmark.pedantic(
        lambda: fig06.run(sizes=(4,), variants=("opt",), n_txns=15,
                          customers_per_container=60),
        rounds=3, iterations=1)
