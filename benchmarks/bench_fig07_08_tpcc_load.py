"""Figures 7 and 8: TPC-C throughput/latency under varying load.

Paper shape: shared-everything-with-affinity wins, shared-nothing-
async close behind (small gap from 1-4 workers), shared-everything-
without-affinity clearly worst; abort rates stay near zero for the
affinity deployment while rising for the other two past 4 workers.
"""

from _util import emit_report

from repro.experiments import fig07_08

PARAMS = dict(scale_factor=4, worker_counts=(1, 2, 4, 6, 8),
              measure_us=60_000.0, n_epochs=5)


def test_fig07_08_tpcc_under_load(benchmark):
    points = fig07_08.run(**PARAMS)
    emit_report("fig07_08", fig07_08.report, points)

    def series(strategy, field):
        return {p.workers: getattr(p, field) for p in points
                if p.strategy == strategy}

    se_aff = series("shared-everything-with-affinity",
                    "throughput_ktps")
    sn = series("shared-nothing-async", "throughput_ktps")
    se_rr = series("shared-everything-without-affinity",
                   "throughput_ktps")

    for workers in PARAMS["worker_counts"]:
        assert se_aff[workers] > se_rr[workers]  # affinity matters
    # S2 and S3 are close from 1 to 4 workers (< 20% apart).
    for workers in (1, 2, 4):
        assert abs(se_aff[workers] - sn[workers]) / se_aff[workers] \
            < 0.2
    # Throughput grows with load for the affinity deployment.
    assert se_aff[8] > se_aff[1] * 2

    # Abort behavior: affinity deployment resilient under overload.
    aborts_aff = series("shared-everything-with-affinity",
                        "abort_rate")
    aborts_sn = series("shared-nothing-async", "abort_rate")
    assert aborts_sn[8] > aborts_aff[8]

    benchmark.pedantic(
        lambda: fig07_08.run(scale_factor=4, worker_counts=(4,),
                             measure_us=20_000.0, n_epochs=2),
        rounds=2, iterations=1)
