"""Figures 9 and 10: asynchronicity trade-off under load.

Paper shape: with one worker, shared-nothing-async doubles
shared-everything-with-affinity's throughput on delayed new-orders
(parallel stock replenishment); as load grows the shared-everything
deployment catches up and overtakes — the architectures cross over.
"""

from _util import emit_report

from repro.experiments import fig09_10

PARAMS = dict(scale_factor=8, worker_counts=(1, 2, 4, 6, 8),
              measure_us=200_000.0, n_epochs=4)


def test_fig09_10_delay_crossover(benchmark):
    points = fig09_10.run(**PARAMS)
    emit_report("fig09_10", fig09_10.report, points)

    def tput(strategy):
        return {p.workers: p.throughput_tps for p in points
                if p.strategy == strategy}

    sn = tput("shared-nothing-async")
    se = tput("shared-everything-with-affinity")

    # Light load: asynchronicity wins big (paper: 2x at one worker).
    assert sn[1] > se[1] * 1.5
    # The advantage shrinks (or reverses) as workers saturate cores.
    ratio_light = sn[1] / se[1]
    ratio_heavy = sn[8] / se[8]
    assert ratio_heavy < ratio_light * 0.7

    benchmark.pedantic(
        lambda: fig09_10.run(scale_factor=8, worker_counts=(1,),
                             measure_us=50_000.0, n_epochs=2),
        rounds=2, iterations=1)
