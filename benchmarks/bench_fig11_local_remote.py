"""Figure 11 (Appendix B.1): local vs remote destination placement.

Paper shape: fully-sync-remote rises sharply with size (processing
*and* per-transfer communication); fully-sync-local rises with
processing only; the opt-local vs opt-remote gap is comparatively
small because communication overlaps.
"""

from _util import emit_report

from repro.experiments import fig11

PARAMS = dict(sizes=(1, 3, 5, 7), n_txns=60,
              customers_per_container=60)


def test_fig11_local_vs_remote(benchmark):
    results = fig11.run(**PARAMS)
    emit_report("fig11", fig11.report, results)

    size = 7
    sync_gap = results["fully-sync-remote"][size] - \
        results["fully-sync-local"][size]
    opt_gap = results["opt-remote"][size] - results["opt-local"][size]
    assert sync_gap > 0
    assert opt_gap >= 0
    # The remote penalty hits fully-sync far harder than opt.
    assert sync_gap > 2.0 * opt_gap
    # Local variants still grow with size (processing cost).
    assert results["fully-sync-local"][7] > \
        results["fully-sync-local"][1]

    benchmark.pedantic(
        lambda: fig11.run(sizes=(5,), n_txns=15,
                          customers_per_container=60),
        rounds=3, iterations=1)
