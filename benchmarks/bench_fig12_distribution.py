"""Figure 12 (Appendix B.2): degree of physical distribution.

Paper shape: with transaction size fixed at 7, latency of round-robin
remote grows smoothly by one remote call per executor spanned;
round-robin all moves in steps that track its remote-call counts; the
random policy sits flat near the 6-7-remote-call level.
"""

from _util import emit_report

from repro.experiments import fig12

PARAMS = dict(executor_counts=(1, 2, 3, 4, 5, 6, 7), n_txns=60,
              customers_per_container=60)


def test_fig12_executors_spanned(benchmark):
    results = fig12.run(**PARAMS)
    emit_report("fig12", fig12.report, results)

    rr_remote = results["round-robin remote"]
    # Monotone growth: each spanned executor adds one remote call.
    values = [rr_remote[k] for k in sorted(rr_remote)]
    assert all(b >= a - 1.0 for a, b in zip(values, values[1:]))
    assert values[-1] > values[0] * 1.5

    # Random sits near the high end (expected ~6 remote calls).
    random_latency = results["random"][7]
    assert random_latency > rr_remote[4]

    benchmark.pedantic(
        lambda: fig12.run(executor_counts=(4,), n_txns=15,
                          customers_per_container=60),
        rounds=3, iterations=1)
