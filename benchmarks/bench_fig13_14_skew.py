"""Figures 13 and 14 (Appendix C): skew, queueing and the cost model.

Paper shape: with one worker, multi_update latency *decreases* as
skew rises (sub-transactions become local; dispatching a remote
update costs more than executing one); the calibrated cost model plus
measured commit/input-gen tracks the one-worker curve.  With four
workers, queueing raises latencies, most visibly at high skew.
"""

from _util import emit_report

from repro.experiments import fig13_14

PARAMS = dict(scale_factor=1, thetas=(0.01, 0.5, 0.99, 2.0, 5.0),
              worker_counts=(1, 4), measure_us=40_000.0,
              calibration_txns=60, n_epochs=4)


def test_fig13_14_skew_and_queueing(benchmark):
    points = fig13_14.run(**PARAMS)
    emit_report("fig13_14", fig13_14.report, points)

    one_worker = {p.theta: p for p in points if p.workers == 1}
    four_workers = {p.theta: p for p in points if p.workers == 4}

    # Latency decreases with skew for a single worker.
    assert one_worker[0.01].latency_us > one_worker[2.0].latency_us
    # Queueing: four workers never beat one worker on latency.
    for theta in PARAMS["thetas"]:
        assert four_workers[theta].latency_us >= \
            one_worker[theta].latency_us * 0.9
    # Cost-model fit: pred + commit within 40% of observation.
    for theta, p in one_worker.items():
        assert p.predicted_with_commit_us is not None
        assert abs(p.predicted_with_commit_us - p.latency_us) \
            / p.latency_us < 0.4, theta

    benchmark.pedantic(
        lambda: fig13_14.run(scale_factor=1, thetas=(0.99,),
                             worker_counts=(1,),
                             measure_us=10_000.0,
                             calibration_txns=20, n_epochs=2),
        rounds=2, iterations=1)
