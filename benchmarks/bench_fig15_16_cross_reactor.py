"""Figures 15 and 16 (Appendix E): effect of cross-reactor txns.

Paper shape: shared-everything deployments degrade only gradually as
the remote-item probability grows; both shared-nothing variants drop
sharply from 0% to 10% (migration-of-control cost); shared-nothing-
async holds roughly a 2x latency advantage over shared-nothing-sync
at 100% cross-reactor transactions.
"""

from _util import emit_report

from repro.experiments import fig15_16

PARAMS = dict(scale_factor=8, cross_pcts=(0, 10, 50, 100),
              measure_us=50_000.0, n_epochs=4)


def test_fig15_16_cross_reactor_effect(benchmark):
    points = fig15_16.run(**PARAMS)
    emit_report("fig15_16", fig15_16.report, points)

    def latency(strategy):
        return {p.cross_pct: p.latency_us for p in points
                if p.strategy == strategy}

    sn_async = latency("shared-nothing-async")
    sn_sync = latency("shared-nothing-sync")
    se_aff = latency("shared-everything-with-affinity")

    # Shared-nothing variants match shared-everything at 0%.
    assert abs(sn_async[0] - se_aff[0]) / se_aff[0] < 0.35
    # Clear latency penalty appears from 0% to 10% for shared-nothing
    # (the migration-of-control cost of sub-transaction dispatch).
    assert sn_async[10] > sn_async[0] * 1.1
    # Async resilience: ~2x better latency than sync at 100%.
    assert sn_sync[100] > 1.5 * sn_async[100]
    # Shared-everything-with-affinity degrades only mildly.
    assert se_aff[100] < se_aff[0] * 1.6

    benchmark.pedantic(
        lambda: fig15_16.run(scale_factor=8, cross_pcts=(10,),
                             measure_us=15_000.0, n_epochs=2),
        rounds=1, iterations=1)
