"""Figures 17 and 18 (Appendix F.1): transactional scale-up.

Paper shape: shared-everything-with-affinity and shared-nothing-async
scale near-linearly with warehouses (affinity preserved; per-core
throughput at scale 16 stays close to scale 1), with the affinity
deployment slightly ahead; shared-everything-without-affinity scales
worst because round-robin routing destroys locality.
"""

from _util import emit_report

from repro.experiments import fig17_18

PARAMS = dict(scale_factors=(1, 2, 4, 8, 16), measure_us=40_000.0,
              n_epochs=4)


def test_fig17_18_scaleup(benchmark):
    points = fig17_18.run(**PARAMS)
    emit_report("fig17_18", fig17_18.report, points)

    def tput(strategy):
        return {p.scale_factor: p.throughput_ktps for p in points
                if p.strategy == strategy}

    se_aff = tput("shared-everything-with-affinity")
    sn = tput("shared-nothing-async")
    se_rr = tput("shared-everything-without-affinity")

    # Near-linear scaling for the affinity-preserving deployments.
    assert se_aff[16] > 10 * se_aff[1]
    assert sn[16] > 9 * sn[1]
    # The two track each other closely (within 15%).
    for sf in PARAMS["scale_factors"]:
        assert abs(se_aff[sf] - sn[sf]) / se_aff[sf] < 0.15
    # Round-robin scales clearly worse.
    assert se_rr[16] < 0.75 * se_aff[16]

    benchmark.pedantic(
        lambda: fig17_18.run(scale_factors=(4,),
                             measure_us=15_000.0, n_epochs=2),
        rounds=1, iterations=1)
