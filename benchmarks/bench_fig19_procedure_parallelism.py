"""Figure 19 (Appendix G): query- vs procedure-level parallelism.

Paper shape: as the sim_risk computational load grows, sequential and
query-parallelism latencies rise ~15x faster than procedure-
parallelism's (sim_risk is serialized at the exchange in both classic
strategies); at 10^6 random draws per provider, procedure-parallelism
wins by roughly an order of magnitude (8.14x / 8.57x in the paper).
"""

from _util import emit_report

from repro.experiments import fig19

PARAMS = dict(random_loads=(10, 1000, 100_000, 1_000_000),
              n_txns=10, orders_per_provider=600, window=200)


def test_fig19_procedure_parallelism(benchmark):
    results = fig19.run(**PARAMS)
    emit_report("fig19", fig19.report, results)

    heavy = 1_000_000
    seq = results["sequential"][heavy]
    query = results["query-parallelism"][heavy]
    proc = results["procedure-parallelism"][heavy]
    # Order-of-magnitude win for holistic procedure parallelization.
    assert seq / proc > 5.0
    assert query / proc > 5.0
    # Query parallelism beats sequential when compute is light
    # (the parallel scan; paper tunes this to ~4x).
    light = 10
    assert results["sequential"][light] > \
        2.0 * results["query-parallelism"][light]
    # Procedure-parallelism is the most resilient to load growth.
    growth_proc = proc / results["procedure-parallelism"][light]
    growth_seq = seq / results["sequential"][light]
    assert growth_seq > 3.0 * growth_proc

    benchmark.pedantic(
        lambda: fig19.run(random_loads=(1000,), n_txns=5,
                          orders_per_provider=300, window=100),
        rounds=2, iterations=1)
