"""Wall-clock microbenchmark: harness transactions per second.

Every other benchmark in this suite measures *simulated* time; this one
measures the cost of the harness itself — how many transactions per
wall-clock second the Python interpreter pushes through the executor /
concurrency-control inner loops.  It is the regression gate for the
hot-path work of ROADMAP item 5: interpreter-speed changes that no
sim-time number can see (allocation diets, batching, ``__slots__``)
show up here and nowhere else.

Methodology:

* a small grid of workload x scheme points (SmallBank mix, read-heavy
  YCSB, TPC-C new-order), each run ``REPEATS`` times on a freshly
  built database with a fixed seed; the per-point wall time is the
  **median** of the repeats (transaction counts are deterministic, so
  only the denominator is noisy);
* ``wall_txns_per_sec`` = transactions processed / wall seconds of the
  measurement drive (database build and load are excluded);
* because absolute wall numbers do not transfer between machines, each
  run also reports ``txns_per_kop`` — wall throughput divided by a
  calibration loop's interpreter speed.  Machine speed drifts on
  shared runners on a scale of *seconds*, so the calibration is
  sampled immediately before and after **every repeat** (the larger
  of the two adjacent samples normalizes that repeat) and the
  per-point ``txns_per_kop`` is the **best** repeat — the cleanest
  observation of what the code can do on this machine.  The
  normalized metric is what the CI gate and the cross-commit speedup
  assertion compare;
* the committed pre-PR reference
  (``results/baselines/BENCH_harness_speed_prepr.json``, captured with
  ``--capture-prepr`` at the last commit before the hot-path overhaul)
  anchors the acceptance assertion: the optimized harness must reach
  >= 2x normalized throughput on at least one grid point.

Run as a script: ``python bench_harness_speed.py [--tiny] [--json]
[--no-assert] [--capture-prepr]``.  The CI job runs the tiny grid and
gates it with ``tools/bench_compare.py harness_speed`` (the payload's
``gate`` block widens the tolerance band — wall clock is noisy in a
way virtual time is not).
"""

import json
import statistics
import sys
import time
from pathlib import Path

from _util import emit_json, emit_report, json_enabled, summary_payload

from repro.bench.harness import run_measurement
from repro.bench.report import print_table
from repro.core.database import ReactorDatabase
from repro.core.deployment import (
    RangePlacement,
    shared_everything_with_affinity,
    shared_nothing,
)
from repro.experiments.common import tpcc_database
from repro.workloads import smallbank, tpcc, ycsb

BASELINE_DIR = Path(__file__).parent / "results" / "baselines"
PREPR_BASELINE = BASELINE_DIR / "BENCH_harness_speed_prepr.json"

#: Acceptance target: normalized harness throughput must at least
#: double versus the pre-overhaul reference on >= 1 grid point.
SPEEDUP_TARGET = 2.0
REPEATS = 3

SB_CUSTOMERS = 40
SB_WORKERS = 4
YCSB_KEYS = 64
YCSB_CONTAINERS = 4
YCSB_WORKERS = 8
YCSB_THETA = 0.6
YCSB_READ_FRACTION = 0.5
TPCC_WAREHOUSES = 2
TPCC_WORKERS = 4

#: (workload, scheme) grid; measure_us per mode keeps the full run
#: meaningful and the tiny run CI-cheap.
POINTS = (
    ("smallbank", "occ"),
    ("smallbank", "2pl_nowait"),
    ("smallbank", "mvocc"),
    ("ycsb", "occ"),
    ("ycsb", "mvocc"),
    ("tpcc-neworder", "occ"),
    # Scan-dominated: each stock-level reads ~100+ stock rows, so the
    # vectorized multi-key read path (vs a per-key lookup loop) is
    # what this point measures.
    ("tpcc-stocklevel", "occ"),
    ("tpcc-stocklevel", "mvocc"),
)
MEASURE_US = {"full": 60_000.0, "tiny": 15_000.0}

CONFIG = {
    "points": [list(p) for p in POINTS],
    "repeats": REPEATS,
    "smallbank_customers": SB_CUSTOMERS,
    "ycsb_keys": YCSB_KEYS,
    "ycsb_theta": YCSB_THETA,
    "ycsb_read_fraction": YCSB_READ_FRACTION,
    "tpcc_warehouses": TPCC_WAREHOUSES,
    "speedup_target": SPEEDUP_TARGET,
}


# ----------------------------------------------------------------------
# Machine calibration
# ----------------------------------------------------------------------

class _Probe:
    __slots__ = ("a", "b")

    def __init__(self) -> None:
        self.a = 0
        self.b = {}

    def bump(self, key, value):
        self.a += value
        self.b[key] = value
        return self.a


def _calibration_pass(n: int) -> float:
    """One timed pass of the interpreter-work proxy loop.

    The mix (attribute access, dict churn, tuple allocation, method
    and function calls) approximates what the harness hot path spends
    its time on, so normalizing by it transfers wall numbers between
    machines and Python versions to first order.
    """
    probe = _Probe()
    bump = probe.bump
    acc = 0
    start = time.perf_counter()
    for i in range(n):
        key = (i & 1023, "k")
        acc = bump(key, i) + len(probe.b)
        if len(probe.b) > 1024:
            probe.b.clear()
    elapsed = time.perf_counter() - start
    assert acc >= 0
    return n / elapsed / 1_000.0  # kilo-ops per second


#: Loop length of one adjacent calibration sample (~tens of ms): long
#: enough to average out scheduling jitter, short enough that the
#: sample reads the same machine state as the repeat it brackets.
CALIB_N = 100_000


def calibration_kops(n: int = 200_000, passes: int = 3) -> float:
    """Interpreter speed in kops/s: best of ``passes`` timed loops."""
    return max(_calibration_pass(n) for __ in range(passes))


# ----------------------------------------------------------------------
# Workload construction (one fresh database per repeat)
# ----------------------------------------------------------------------

def _run_smallbank(scheme: str, measure_us: float):
    deployment = shared_everything_with_affinity(4, cc_scheme=scheme)
    database = ReactorDatabase(
        deployment, smallbank.declarations(SB_CUSTOMERS))
    smallbank.load(database, SB_CUSTOMERS)
    workload = smallbank.SmallbankWorkload(SB_CUSTOMERS)
    return database, workload.factory_for, SB_WORKERS


def _run_ycsb(scheme: str, measure_us: float):
    deployment = shared_nothing(
        YCSB_CONTAINERS, mpl=4, cc_scheme=scheme,
        placement=RangePlacement(YCSB_KEYS // YCSB_CONTAINERS))
    decls = [(ycsb.key_name(i), ycsb.KEY_REACTOR)
             for i in range(YCSB_KEYS)]
    database = ReactorDatabase(deployment, decls)
    for i in range(YCSB_KEYS):
        name = ycsb.key_name(i)
        database.load(name, "kv",
                      [{"key": name, "value": "x" * ycsb.RECORD_SIZE}])
    workload = ycsb.YcsbWorkload(
        1, theta=YCSB_THETA, n_containers=YCSB_CONTAINERS,
        n_keys=YCSB_KEYS, read_fraction=YCSB_READ_FRACTION)
    return database, workload.factory_for, YCSB_WORKERS


def _run_tpcc(scheme: str, measure_us: float):
    database = tpcc_database("shared-nothing-async", TPCC_WAREHOUSES,
                             mpl=4, cc_scheme=scheme)
    workload = tpcc.TpccWorkload(
        n_warehouses=TPCC_WAREHOUSES, mix=tpcc.NEW_ORDER_ONLY,
        remote_item_prob=0.1, invalid_item_prob=0.0)
    return database, workload.factory_for, TPCC_WORKERS


def _run_tpcc_stock(scheme: str, measure_us: float):
    database = tpcc_database("shared-nothing-async", TPCC_WAREHOUSES,
                             mpl=4, cc_scheme=scheme)
    workload = tpcc.TpccWorkload(
        n_warehouses=TPCC_WAREHOUSES, mix=(("stock_level", 1.0),))
    return database, workload.factory_for, TPCC_WORKERS


_BUILDERS = {
    "smallbank": _run_smallbank,
    "ycsb": _run_ycsb,
    "tpcc-neworder": _run_tpcc,
    "tpcc-stocklevel": _run_tpcc_stock,
}


def measure_point(workload: str, scheme: str, measure_us: float):
    """``REPEATS`` interleaved (calibrate, measure, calibrate) runs.

    Each repeat is normalized by the larger of its two *adjacent*
    calibration samples — a global calibration taken minutes away
    reads a different machine than the one the repeat actually ran
    on.  The reported ``txns_per_kop`` is the best repeat.
    """
    wall_times = []
    normalized = []
    txns = 0
    summary = None
    calib_after = _calibration_pass(CALIB_N)
    for __ in range(REPEATS):
        database, factory_for, workers = _BUILDERS[workload](
            scheme, measure_us)
        calib_before = max(calib_after, _calibration_pass(CALIB_N))
        start = time.perf_counter()
        result = run_measurement(database, workers, factory_for,
                                 warmup_us=5_000.0,
                                 measure_us=measure_us, n_epochs=4)
        wall = time.perf_counter() - start
        calib_after = _calibration_pass(CALIB_N)
        wall_times.append(wall)
        txns = len(result.raw_stats)
        summary = result.summary
        calib = max(calib_before, calib_after)
        normalized.append(txns / wall / calib)
    wall = statistics.median(wall_times)
    return {
        "workload": workload,
        "scheme": scheme,
        "wall_seconds": round(wall, 4),
        "wall_seconds_all": [round(t, 4) for t in wall_times],
        "txns": txns,
        "wall_txns_per_sec": round(txns / wall, 1),
        "txns_per_kop": round(max(normalized), 4),
        "txns_per_kop_all": [round(v, 4) for v in normalized],
        **summary_payload(summary),
    }


def run_grid(mode: str) -> list[dict]:
    measure_us = MEASURE_US[mode]
    rows = []
    for workload, scheme in POINTS:
        row = measure_point(workload, scheme, measure_us)
        row["mode"] = mode
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Speedup versus the committed pre-overhaul reference
# ----------------------------------------------------------------------

def speedup_vs_prepr(rows: list[dict]) -> dict | None:
    """Per-point normalized speedup against the pre-PR reference, or
    ``None`` when no reference is committed."""
    if not PREPR_BASELINE.exists():
        return None
    reference = json.loads(PREPR_BASELINE.read_text())
    ref_rows = {
        (r["workload"], r["scheme"], r["mode"]): r
        for r in reference.get("runs", [])
    }
    speedups = {}
    for row in rows:
        ref = ref_rows.get((row["workload"], row["scheme"],
                            row["mode"]))
        if ref is None or not ref.get("txns_per_kop"):
            continue
        key = f"{row['workload']}/{row['scheme']}/{row['mode']}"
        speedups[key] = round(
            row["txns_per_kop"] / ref["txns_per_kop"], 3)
    if not speedups:
        return None
    return {
        "per_point": speedups,
        "max": max(speedups.values()),
        "min": min(speedups.values()),
    }


# ----------------------------------------------------------------------
# Reporting and entry points
# ----------------------------------------------------------------------

HEADERS = ["workload", "scheme", "wall txn/s", "txns/kop",
           "wall [s]", "txns", "sim tput", "abort %"]


def _rows(payload):
    out = []
    for run in payload["runs"]:
        out.append([
            run["workload"], run["scheme"],
            run["wall_txns_per_sec"],
            run["txns_per_kop"],
            run["wall_seconds"],
            run["txns"],
            round(run["throughput_tps"], 1),
            round(run["abort_rate"] * 100, 2),
        ])
    return out


def _report(payload):
    print_table(
        "Harness speed: wall-clock transactions/second across "
        "workload x scheme (median of %d)" % REPEATS,
        HEADERS, _rows(payload))
    print(f"calibration: {payload['calibration_kops']:.1f} kops/s")
    speedup = payload.get("speedup_vs_prepr")
    if speedup:
        print(f"speedup vs pre-overhaul reference: "
              f"max {speedup['max']:.2f}x, min {speedup['min']:.2f}x "
              f"(target >= {SPEEDUP_TARGET}x on one point)")
        for key, value in sorted(speedup["per_point"].items()):
            print(f"  {key}: {value:.2f}x")


def build_payload(mode: str) -> dict:
    calib = calibration_kops()
    rows = run_grid(mode)
    payload = {
        "runs": rows,
        "calibration_kops": round(calib, 1),
        #: bench_compare reads this: gate the normalized wall metric
        #: with a band wide enough for scheduler noise on CI runners.
        "gate": {"metric": "txns_per_kop", "tolerance": 0.5},
    }
    speedup = speedup_vs_prepr(rows)
    if speedup is not None:
        payload["speedup_vs_prepr"] = speedup
    return payload


def assert_speedup(payload: dict) -> None:
    """The acceptance criterion, asserted in-bench: >= 2x normalized
    harness throughput on at least one workload x scheme point versus
    the committed pre-overhaul reference."""
    speedup = payload.get("speedup_vs_prepr")
    assert speedup is not None, (
        "no pre-overhaul reference rows matched; cannot assert the "
        f"speedup target (expected {PREPR_BASELINE})")
    assert speedup["max"] >= SPEEDUP_TARGET, (
        f"hot-path speedup regressed: best point is "
        f"{speedup['max']:.2f}x vs the pre-overhaul reference, "
        f"target is {SPEEDUP_TARGET}x; per-point: "
        f"{speedup['per_point']}")


def capture_prepr() -> Path:
    """Capture the pre-overhaul reference (both modes, one file)."""
    calib = calibration_kops()
    rows = run_grid("full") + run_grid("tiny")
    BASELINE_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "runs": rows,
        "calibration_kops": round(calib, 1),
        "note": "pre-overhaul reference for the >=2x harness-speed "
                "acceptance assertion; captured with --capture-prepr",
    }
    PREPR_BASELINE.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return PREPR_BASELINE


def test_harness_speed(benchmark):
    payload = build_payload("tiny")
    emit_report("harness_speed", lambda: _report(payload))
    assert all(r["committed"] > 0 for r in payload["runs"])
    if PREPR_BASELINE.exists():
        assert_speedup(payload)
    benchmark.pedantic(
        lambda: measure_point("smallbank", "occ", 10_000.0),
        rounds=1, iterations=1)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    if "--capture-prepr" in argv:
        path = capture_prepr()
        print(f"wrote pre-overhaul reference {path}")
        return
    mode = "tiny" if "--tiny" in argv else "full"
    payload = build_payload(mode)
    emit_report("harness_speed", lambda: _report(payload))
    if json_enabled(argv):
        path = emit_json("harness_speed", payload,
                         config={**CONFIG, "mode": mode})
        print(f"wrote {path}")
    if "--no-assert" not in argv and PREPR_BASELINE.exists():
        assert_speedup(payload)


if __name__ == "__main__":
    main()
