"""Open-loop tail latency of the networked serving layer.

Every other benchmark is closed loop: captive workers wait for each
transaction before issuing the next, so a slow server throttles its
own measurement (coordinated omission) and tails look flat.  This one
serves a SmallBank database over real TCP (``repro.serving``),
connects a ``TcpClient``, and drives *open-loop* Poisson arrivals at
fixed target rates — latency is recorded from each request's
**intended** send time, so backlog shows up in the percentiles instead
of disappearing into a stalled sender (see ``docs/serving.md``).

Two phases:

* ``open_loop`` — one row per arrival rate with p50/p99/p999
  wall-clock latency, achieved throughput, and shed fraction.  At the
  lowest rate nothing may be shed (the server is unloaded; a shed
  there is a bug, asserted unless ``--no-assert``).
* ``saturate`` — a deliberately tiny admission bound (``max_inflight``)
  under a burst far above it: every refusal must be the *typed*
  ``Overloaded`` answer with a positive retry-after hint, never a
  hang or disconnect.

Numbers are wall-clock and machine-bound, so the committed baseline is
compared report-only in CI (``tools/bench_compare.py serving_latency``
with the gate echoed as a notice, like ``backend_scaleup``); the
``arrival_rate`` key identifies rows.

Run as a script: ``python bench_serving_latency.py [--tiny] [--json]
[--backend sim|threads] [--no-assert]``.
"""

import sys
import time

from _util import backend_arg, emit_json, emit_report, json_enabled

from repro.bench.report import print_table
from repro.client import TcpClient
from repro.core.database import ReactorDatabase
from repro.core.deployment import RangePlacement, shared_nothing
from repro.serving import ArrivalSchedule, run_open_loop, serve_in_thread
from repro.workloads import smallbank

SB_CUSTOMERS = 32

#: Target arrival rates (requests/second) per mode — the acceptance
#: criterion wants p50/p99/p999 at >= 3 rates.
RATES = {"full": (200.0, 500.0, 1000.0), "tiny": (100.0, 200.0, 400.0)}
#: Open-loop run length per rate, seconds of intended arrivals.
DURATIONS = {"full": 2.0, "tiny": 0.5}

#: Saturation phase: a tiny admission bound under a burst well above
#: it must shed with typed answers.
SATURATE_MAX_INFLIGHT = 2
SATURATE_RATE = 20_000.0
SATURATE_COUNT = {"full": 400, "tiny": 120}

SEED = 42

CONFIG = {
    "smallbank_customers": SB_CUSTOMERS,
    "rates": {k: list(v) for k, v in RATES.items()},
    "durations_s": DURATIONS,
    "saturate_max_inflight": SATURATE_MAX_INFLIGHT,
    "saturate_rate": SATURATE_RATE,
    "seed": SEED,
}


def _build(backend: str) -> ReactorDatabase:
    deployment = shared_nothing(
        2, mpl=8, cc_scheme="occ",
        placement=RangePlacement(SB_CUSTOMERS // 2), backend=backend)
    database = ReactorDatabase(
        deployment, smallbank.declarations(SB_CUSTOMERS))
    smallbank.load(database, SB_CUSTOMERS)
    return database


def _spec_for(index: int):
    """Commutative deposits spread across customers: no aborts, so
    the latency distribution is pure serving behavior."""
    return (smallbank.reactor_name(index % SB_CUSTOMERS),
            "deposit_checking", (1.0,))


def measure_rate(backend: str, rate: float, mode: str) -> dict:
    database = _build(backend)
    server = serve_in_thread(database)
    client = TcpClient(server.host, server.port).connect()
    count = max(20, int(rate * DURATIONS[mode]))
    schedule = ArrivalSchedule.poisson(rate, count, seed=SEED)
    start = time.perf_counter()
    result = run_open_loop(client, schedule, _spec_for)
    wall = time.perf_counter() - start
    client.close()
    server.stop()
    database.close()
    return {
        "workload": "smallbank",
        "backend": backend,
        "mode": mode,
        "phase": "open_loop",
        "wall_seconds": round(wall, 4),
        **result.summary(),
    }


def measure_saturation(backend: str, mode: str) -> dict:
    database = _build(backend)
    server = serve_in_thread(database,
                             max_inflight=SATURATE_MAX_INFLIGHT)
    client = TcpClient(server.host, server.port).connect()
    count = SATURATE_COUNT[mode]
    schedule = ArrivalSchedule.fixed(SATURATE_RATE, count)
    result = run_open_loop(client, schedule, _spec_for)
    client.close()
    server.stop()
    database.close()
    return {
        "workload": "smallbank",
        "backend": backend,
        "mode": mode,
        "phase": "saturate",
        "max_inflight": SATURATE_MAX_INFLIGHT,
        **result.summary(),
    }


def build_payload(backend: str, mode: str) -> dict:
    rows = [measure_rate(backend, rate, mode)
            for rate in RATES[mode]]
    rows.append(measure_saturation(backend, mode))
    return {
        "runs": rows,
        #: Report-only in CI (wall numbers are machine-bound): the
        #: band only orders the textual report, as backend_scaleup.
        "gate": {"metric": "throughput_tps", "tolerance": 0.5},
    }


def assert_serving(payload: dict) -> None:
    """Cross-machine invariants (the shape, not the numbers): an
    unloaded server sheds nothing; a saturated admission bound sheds
    with typed, hinted answers; percentiles are ordered."""
    open_rows = [r for r in payload["runs"]
                 if r["phase"] == "open_loop"]
    saturate = [r for r in payload["runs"]
                if r["phase"] == "saturate"]
    lowest = min(open_rows, key=lambda r: r["arrival_rate"])
    assert lowest["shed"] == 0, (
        f"unloaded server shed {lowest['shed']} requests at "
        f"{lowest['arrival_rate']} req/s")
    for row in open_rows:
        assert row["committed"] > 0, row
        assert row["p50_us"] <= row["p99_us"] <= row["p999_us"], row
    for row in saturate:
        assert row["shed"] > 0, (
            f"burst at {SATURATE_RATE} req/s against "
            f"max_inflight={SATURATE_MAX_INFLIGHT} shed nothing")
        assert row["committed"] > 0, row


HEADERS = ["phase", "rate req/s", "offered", "committed", "shed",
           "p50 us", "p99 us", "p999 us", "send lag us"]


def _report(payload):
    rows = []
    for run in payload["runs"]:
        rows.append([
            run["phase"], run["arrival_rate"], run["offered"],
            run["committed"], run["shed"], run["p50_us"],
            run["p99_us"], run["p999_us"], run["max_send_lag_us"],
        ])
    print_table(
        "Serving latency: open-loop wall-clock percentiles from "
        "intended send times (coordinated-omission-aware)",
        HEADERS, rows)


def test_serving_latency(benchmark):
    backend = "sim"
    payload = build_payload(backend, "tiny")
    emit_report("serving_latency", lambda: _report(payload))
    assert_serving(payload)
    benchmark.pedantic(
        lambda: measure_rate(backend, 200.0, "tiny"),
        rounds=1, iterations=1)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    mode = "tiny" if "--tiny" in argv else "full"
    backend = backend_arg(argv)
    payload = build_payload(backend, mode)
    emit_report("serving_latency", lambda: _report(payload))
    if json_enabled(argv):
        path = emit_json("serving_latency", payload,
                         config={**CONFIG, "mode": mode},
                         backend=backend)
        print(f"wrote {path}")
    if "--no-assert" not in argv:
        assert_serving(payload)


if __name__ == "__main__":
    main()
