"""Table 1 (Appendix D): cost-model validation on TPC-C new-order.

Paper shape: with one worker the prediction (plus measured commit and
input-generation costs) fits the observed latency at both 1% and 100%
cross-reactor access; 100% cross-reactor latency grows only modestly
over 1% thanks to overlapped sub-transactions; four workers raise
throughput ~4x at 1% but queueing bites at 100%.
"""

from _util import emit_report

from repro.experiments import table1

PARAMS = dict(scale_factor=4, measure_us=60_000.0, n_epochs=4)


def test_table1_neworder_cost_model(benchmark):
    rows = table1.run(**PARAMS)
    emit_report("table1", table1.report, rows)

    by_key = {(r.cross_reactor_pct, r.workers): r for r in rows}
    obs_1_local = by_key[(1, 1)]
    obs_1_remote = by_key[(100, 1)]

    # Prediction quality with one worker (paper: "excellent fit").
    for row in (obs_1_local, obs_1_remote):
        assert row.predicted_with_commit_ms is not None
        error = abs(row.predicted_with_commit_ms -
                    row.observed_latency_ms) / row.observed_latency_ms
        assert error < 0.45

    # Overlap keeps the 100% cross-reactor penalty modest (< 2.2x).
    assert obs_1_remote.observed_latency_ms < \
        2.2 * obs_1_local.observed_latency_ms

    # More workers, more throughput.
    assert by_key[(1, 4)].observed_tps > \
        2.5 * by_key[(1, 1)].observed_tps

    benchmark.pedantic(
        lambda: table1.run(scale_factor=4, measure_us=15_000.0,
                           n_epochs=2),
        rounds=1, iterations=1)
