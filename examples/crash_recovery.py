"""Crash recovery — group commit, kill mid-epoch, certified restart.

ReactDB's prototype (like the paper's) keeps everything in memory; the
paper points at log-based recovery plus distributed checkpoints as the
intended durability design.  This example exercises the implemented
version end to end:

1. boot a shared-nothing bank with **epoch-based group commit**
   (``durability_mode: group`` — commits acknowledge when their
   epoch's batched log flush lands, one fsync amortized over the whole
   epoch);
2. run a contended transfer workload, take an **incremental
   checkpoint** (dirty keys only, WAL truncated behind it);
3. **kill the database mid-epoch** — in-flight transactions and an
   unflushed epoch tail are simply gone, exactly like a power cut;
4. run **parallel partitioned recovery** (per-reactor log partitions
   replayed concurrently) onto a *different* architecture — logical
   reactor state survives physical re-architecture;
5. have ``certify_crash_recovery`` check the restart black-box style:
   no acknowledged commit lost, nothing unacknowledged resurrected,
   recovered state equal to an independent replay.

Run:  python examples/crash_recovery.py
"""

import random

from repro import DurabilityConfig, shared_everything_with_affinity, \
    shared_nothing
from repro.core.database import ReactorDatabase
from repro.durability import recover_image_partitioned
from repro.formal import certify_crash_recovery
from repro.workloads import smallbank as sb

N = 10


def build_bank():
    deployment = shared_nothing(
        4, durability=DurabilityConfig(enabled=True, mode="group"))
    database = ReactorDatabase(deployment, sb.declarations(N))
    sb.load(database, N)
    return database


def run_workload(database, count, seed, batch=5):
    """Submit transfers in concurrent batches — group commit batches
    the commits of an epoch into one flush, which only shows when
    clients overlap."""
    rng = random.Random(seed)
    outcomes = []

    def on_done(root, committed, reason, result):
        outcomes.append(committed)

    pending = 0
    for i in range(count):
        variant = sb.VARIANTS[i % len(sb.VARIANTS)]
        src = sb.reactor_name(rng.randrange(N))
        dst = sb.reactor_name(
            (int(src[4:]) + 1 + rng.randrange(N - 1)) % N)
        reactor, proc, args = sb.multi_transfer_spec(
            variant, src, [dst], rng.uniform(1.0, 20.0))
        database.submit(reactor, proc, *args, on_done=on_done)
        pending += 1
        if pending == batch:
            database.scheduler.run()
            pending = 0
    database.scheduler.run()
    return sum(1 for ok in outcomes if ok)


def main():
    print("1. booting shared-nothing bank with group-commit "
          "durability")
    database = build_bank()
    durability = database.durability

    committed = run_workload(database, 30, seed=1)
    stats = database.durability_stats()
    fsyncs = sum(f["fsyncs"] for f in stats["flushers"].values())
    records = sum(f["records_flushed"]
                  for f in stats["flushers"].values())
    print(f"   {committed} transactions committed, {records} redo "
          f"records made durable by {fsyncs} fsyncs "
          f"({records / max(fsyncs, 1):.1f} records/fsync)")

    print("2. incremental checkpoint + WAL truncation")
    segment = durability.incremental_checkpoint()
    print(f"   segment #{segment.seq} ({segment.kind}), manifest now "
          f"{len(durability.manifest.segments)} segment(s)")

    committed = run_workload(database, 25, seed=2)
    tail = sum(len(log) for log in durability.logs.values())
    print(f"   {committed} more transactions committed "
          f"({tail} redo records since the checkpoint)")

    print("3. CRASH — mid-epoch, with transactions in flight.")
    # Submit work and cut the power before the epoch flush lands.
    for i in range(4):
        database.submit(sb.reactor_name(i), "deposit_checking", 1.0)
    database.scheduler.run(until=database.scheduler.now + 25.0)
    image = durability.crash()
    unflushed = sum(f.unflushed_records()
                    for f in durability.flushers.values())
    print(f"   crash image: "
          f"{sum(len(r) for r in image.logs.values())} durable "
          f"records, {unflushed} unflushed (lost with the epoch), "
          f"{len(image.acked_tids)} acked commits to account for")

    print("4. parallel partitioned recovery onto "
          "shared-everything-with-affinity")
    report = recover_image_partitioned(
        shared_everything_with_affinity(4), sb.declarations(N), image)
    recovered = report.database
    print(f"   {report.partitions} reactor partitions, "
          f"{report.rows_loaded} checkpoint rows + "
          f"{report.entries_replayed} redo entries replayed in "
          f"{report.recovery_us:.1f} virtual us across "
          f"{len(report.per_executor_us)} executors")

    print("5. black-box crash-recovery certificate")
    cert = certify_crash_recovery(database, image, recovered)
    assert cert["ok"], cert
    assert cert["zero_acked_loss"], cert
    assert cert["state_ok"], cert
    print(f"   certificate: ok  (no acked-commit loss across "
          f"{cert['acked_checked']} acked writes, no resurrection, "
          f"state-replay equivalent)")

    total = sb.total_money(recovered, N)
    print(f"   total money after recovery: {total:,.2f}")

    recovered.run(sb.reactor_name(0), "deposit_checking", 1.0)
    print("6. recovered database accepts new transactions.  done.")


if __name__ == "__main__":
    main()
