"""Crash recovery — the paper's durability future work, implemented.

ReactDB's prototype (like the paper's) keeps everything in memory;
the paper points at log-based recovery plus distributed checkpoints
as the intended durability design.  This example exercises exactly
that: run a contended banking workload with redo logging enabled,
checkpoint mid-run, keep running, "crash", and recover onto a
*different* database architecture — logical reactor state survives
physical re-architecture.

Run:  python examples/crash_recovery.py
"""

import random

from repro import TransactionAbort, shared_everything_with_affinity, \
    shared_nothing
from repro.core.database import ReactorDatabase
from repro.durability import enable_durability, recover
from repro.workloads import smallbank as sb

N = 10


def build_bank():
    database = ReactorDatabase(shared_nothing(4), sb.declarations(N))
    sb.load(database, N)
    return database


def run_workload(database, count, seed):
    rng = random.Random(seed)
    committed = 0
    for i in range(count):
        variant = sb.VARIANTS[i % len(sb.VARIANTS)]
        src = sb.reactor_name(rng.randrange(N))
        dst = sb.reactor_name(
            (int(src[4:]) + 1 + rng.randrange(N - 1)) % N)
        reactor, proc, args = sb.multi_transfer_spec(
            variant, src, [dst], rng.uniform(1.0, 20.0))
        try:
            database.run(reactor, proc, *args)
            committed += 1
        except TransactionAbort:
            pass
    return committed


def main():
    print("1. booting shared-nothing bank with redo logging")
    database = build_bank()
    durability = enable_durability(database)

    committed = run_workload(database, 30, seed=1)
    print(f"   {committed} transactions committed")

    print("2. quiescent checkpoint + log truncation")
    checkpoint = durability.checkpoint_and_truncate()
    checkpoint_json = checkpoint.to_json()
    print(f"   checkpoint: {len(checkpoint_json):,} bytes of JSON")

    committed = run_workload(database, 25, seed=2)
    tail = sum(len(log) for log in durability.logs.values())
    print(f"   {committed} more transactions committed "
          f"({tail} redo records since the checkpoint)")

    total_before = sb.total_money(database, N)
    print(f"3. CRASH.  (total money at crash: {total_before:,.2f})")

    print("4. recovering onto shared-everything-with-affinity")
    recovered = recover(
        shared_everything_with_affinity(4), sb.declarations(N),
        checkpoint, durability.logs.values())

    total_after = sb.total_money(recovered, N)
    print(f"   total money after recovery: {total_after:,.2f}")
    assert total_after == total_before, "recovery lost updates!"

    for name in (sb.reactor_name(0), sb.reactor_name(7)):
        original = database.table_rows(name, "savings")
        restored = recovered.table_rows(name, "savings")
        assert original == restored
    print("   per-reactor state identical to the crashed database.")

    recovered.run(sb.reactor_name(0), "deposit_checking", 1.0)
    print("5. recovered database accepts new transactions.  done.")


if __name__ == "__main__":
    main()
