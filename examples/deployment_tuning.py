"""Deployment tuning: architecture as a configuration artifact.

An infrastructure engineer's workflow from the paper: serialize a
deployment to a JSON config file, edit *only the file*, bootstrap the
same application under each configuration, and compare latency of the
same multi-transfer transaction.  The application module is imported
once and never modified.

Run:  python examples/deployment_tuning.py
"""

import json
import tempfile
from pathlib import Path

from repro.bench.harness import single_worker_latency
from repro.bench.report import print_table
from repro.core.database import ReactorDatabase
from repro.core.deployment import (
    DeploymentConfig,
    shared_everything_with_affinity,
    shared_everything_without_affinity,
    shared_nothing,
)
from repro.workloads import smallbank

N_CUSTOMERS = 70
TXN_SIZE = 5


def write_config_files(directory: Path) -> list[Path]:
    """An engineer prepares one config file per candidate architecture."""
    configs = [
        shared_nothing(7),
        shared_everything_with_affinity(7),
        shared_everything_without_affinity(7),
    ]
    paths = []
    for config in configs:
        path = directory / f"{config.name}.json"
        path.write_text(config.to_json())
        paths.append(path)
    return paths


def bootstrap_from_file(path: Path) -> ReactorDatabase:
    """Boot the *unchanged* application under the file's architecture."""
    config = DeploymentConfig.from_json(path.read_text())
    database = ReactorDatabase(config,
                               smallbank.declarations(N_CUSTOMERS))
    smallbank.load(database, N_CUSTOMERS)
    return database


def measure(database: ReactorDatabase, variant: str) -> float:
    src = smallbank.reactor_name(0)
    dsts = [smallbank.reactor_name(10 * (i + 1)) for i in
            range(TXN_SIZE)]
    spec = smallbank.multi_transfer_spec(variant, src, dsts, 1.0)
    result = single_worker_latency(database, lambda w: spec,
                                   n_txns=60)
    return result.summary.latency_us


def main():
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        rows = []
        for path in write_config_files(directory):
            config = json.loads(path.read_text())
            latencies = [
                measure(bootstrap_from_file(path), variant)
                for variant in ("fully-sync", "opt")
            ]
            rows.append([config["name"],
                         f"{len(config['containers'])}",
                         round(latencies[0], 1),
                         round(latencies[1], 1)])
        print_table(
            f"multi-transfer (size {TXN_SIZE}) latency per "
            "architecture config file",
            ["deployment (from JSON file)", "containers",
             "fully-sync us", "opt us"],
            rows)
        print("\nEvery row booted from a config file; zero application "
              "changes.\nProgram formulation (fully-sync vs opt) and "
              "architecture compose freely.")


if __name__ == "__main__":
    main()
