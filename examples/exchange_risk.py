"""The digital currency exchange of Figure 1 — the paper's running
example — executed under all three strategies of Appendix G.

An exchange authorizes currency purchases against per-provider and
global risk limits; risk adjustment runs an expensive Monte-Carlo
kernel (``sim_risk``).  The reactor formulation (Figure 1b) expresses
the available parallelism explicitly: each Provider reactor computes
its own risk concurrently, and the paper shows this *procedure-level*
parallelism beats what a query optimizer could extract from the
classic stored procedure (query-level parallelization of the join).

Run:  python examples/exchange_risk.py
"""

from repro.bench.harness import single_worker_latency
from repro.experiments.fig19 import (
    N_PROVIDERS,
    _procedure_parallel_db,
    _query_parallel_db,
    _sequential_db,
)
from repro.workloads import exchange as ex


def authorize_some_payments():
    """Use the reactor-model API directly: a few auth_pay calls."""
    db = _procedure_parallel_db(orders_per_provider=500, window=100)
    print("authorizing payments on the reactor-model exchange...")
    for wallet, (provider, value) in enumerate([
            (ex.provider_name(2), 120.0),
            (ex.provider_name(7), 45.5),
            (ex.provider_name(11), 999.0)]):
        db.run(ex.EXCHANGE_NAME, "auth_pay", provider, wallet, value,
               1000)
        orders = db.table_rows(provider, "orders")
        newest = max(orders, key=lambda r: r["time"])
        print(f"  order recorded at {provider}: value={newest['value']}"
              f" settled={newest['settled']}")


def compare_strategies(sim_risk_randoms: int = 100_000):
    print(f"\ncomparing strategies at {sim_risk_randoms:,} sim_risk "
          "draws per provider:")
    builders = {
        "sequential": (_sequential_db, "auth_pay_sequential"),
        "query-parallelism": (_query_parallel_db,
                              "auth_pay_query_parallel"),
        "procedure-parallelism": (_procedure_parallel_db, "auth_pay"),
    }
    latencies = {}
    for strategy, (builder, proc) in builders.items():
        db = builder(500, 100)

        def factory(worker):
            provider = ex.provider_name(
                worker.rng.randrange(N_PROVIDERS))
            return (ex.EXCHANGE_NAME, proc,
                    (provider, 1, 1.0, sim_risk_randoms))

        result = single_worker_latency(db, factory, n_txns=8,
                                       warmup_txns=2)
        latencies[strategy] = result.summary.latency_us / 1000.0
        print(f"  {strategy:22s} {latencies[strategy]:9.2f} ms/txn")
    speedup = latencies["sequential"] / latencies[
        "procedure-parallelism"]
    print(f"  procedure-parallelism speedup over sequential: "
          f"{speedup:.1f}x")


if __name__ == "__main__":
    authorize_some_payments()
    compare_strategies()
