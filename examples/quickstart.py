"""Quickstart: a tiny banking application on ReactDB.

Demonstrates the core reactor programming model:

* declare a reactor type (schemas + procedures);
* instantiate a reactor database under a deployment;
* run transactions, including a cross-reactor transfer with an
  asynchronous sub-transaction;
* swap the deployment (shared-nothing <-> shared-everything) without
  touching a single line of application code.

Run:  python examples/quickstart.py
"""

from repro import (
    ReactorDatabase,
    ReactorType,
    TransactionAbort,
    shared_everything_with_affinity,
    shared_nothing,
)
from repro.relational import float_col, make_schema, str_col

# ----------------------------------------------------------------------
# 1. Application model: each bank account is a reactor.
# ----------------------------------------------------------------------

account = ReactorType("Account", lambda: [
    make_schema("ledger",
                [str_col("owner"), float_col("balance")],
                ["owner"]),
])


@account.procedure
def open_account(ctx, opening_balance):
    ctx.insert("ledger", {"owner": ctx.my_name(),
                          "balance": opening_balance})


@account.procedure
def balance_of(ctx):
    row = ctx.lookup("ledger", ctx.my_name())
    return row["balance"]


@account.procedure
def credit(ctx, amount):
    row = ctx.lookup("ledger", ctx.my_name())
    new_balance = row["balance"] + amount
    if new_balance < 0:
        ctx.abort("insufficient funds")
    ctx.update("ledger", ctx.my_name(), {"balance": new_balance})
    return new_balance


@account.procedure
def transfer(ctx, destination, amount):
    """Cross-reactor transfer: the credit on the destination reactor
    runs as an asynchronous sub-transaction, overlapped with the local
    debit; ACID guarantees still hold for the whole transaction."""
    fut = yield ctx.call(destination, "credit", amount)
    yield ctx.call(ctx.my_name(), "credit", -amount)  # local, inlined
    new_destination_balance = yield ctx.get(fut)
    return new_destination_balance


# ----------------------------------------------------------------------
# 2. Deploy and run — twice, under two architectures.
# ----------------------------------------------------------------------

def demo(deployment):
    names = ["alice", "bob", "carol", "dave"]
    db = ReactorDatabase(deployment, [(n, account) for n in names])
    for name in names:
        db.run(name, "open_account", 100.0)

    db.run("alice", "transfer", "bob", 30.0)
    try:
        db.run("carol", "transfer", "dave", 1_000.0)
    except TransactionAbort as abort:
        print(f"  carol's oversized transfer aborted: {abort}")

    balances = {n: db.run(n, "balance_of") for n in names}
    print(f"  balances: {balances}")
    print(f"  total virtual time: {db.scheduler.now:.1f} usec")
    return balances


if __name__ == "__main__":
    print("shared-nothing (4 containers, reactors pinned):")
    sn = demo(shared_nothing(4))
    print("shared-everything-with-affinity (1 container, 4 executors):")
    se = demo(shared_everything_with_affinity(4))
    assert sn == se, "same application, same results, any architecture"
    print("OK: identical results under both architectures.")
