"""Replication and failover — availability as a config edit.

The same banking application that ran single-copy in the other
examples gains log-shipping replicas by changing only the deployment:
every container ships its redo records to a replica, commits wait for
the replica's ack (``sync`` mode), and Balance reads are served from
the replica's cores.  Mid-run the primary of container 0 is killed and
its replica promoted; the formal audit then certifies that the
promoted replica is prefix-consistent with the dead primary's commit
order and that no committed transaction was lost.

Run:  python examples/replication_failover.py
"""

from repro import ReplicationConfig, TransactionAbort, shared_nothing
from repro.core.database import ReactorDatabase
from repro.formal.audit import certify_replication
from repro.workloads import smallbank as sb

N = 10


def main():
    deployment = shared_nothing(
        2, replication=ReplicationConfig(
            replicas_per_container=1, mode="sync",
            read_from_replicas=True))
    print("1. booting shared-nothing bank, 1 sync replica per "
          "container (a JSON config edit away from single-copy)")
    database = ReactorDatabase(deployment, sb.declarations(N))
    sb.load(database, N)

    print("2. running transfers with a mid-run crash of container 0")
    outcomes = []

    def on_done(root, committed, reason, result):
        outcomes.append(committed)

    def submit_batch(count, start):
        for i in range(start, start + count):
            src = sb.reactor_name(i % N)
            dst = sb.reactor_name((i + 3) % N)
            database.submit(src, "transfer", src, dst, 5.0,
                            on_done=on_done)

    submit_batch(20, start=0)
    database.scheduler.run()  # first batch fully replicated
    # CRASH scheduled into the middle of the second batch's work.
    database.scheduler.at(database.scheduler.now + 50.0,
                          database.replication.kill_and_promote, 0)
    submit_batch(20, start=20)
    database.scheduler.run()
    committed = sum(outcomes)
    print(f"   {committed}/{len(outcomes)} transfers committed "
          f"({len(outcomes) - committed} aborted around the crash)")

    event = database.replication_stats()["failovers"][0]
    print(f"3. container {event['container_id']} failed; replica "
          f"{event['replica_id']} promoted after applying "
          f"{event['applied_records']} redo records")

    print("4. auditing the promoted replica against the primary's "
          "commit order")
    report = certify_replication(database)
    assert report["ok"], report
    assert all(f["zero_committed_loss"] for f in report["failovers"])
    print("   prefix-consistent, commit order intact, "
          "no committed data lost")

    total = sum(database.run(sb.reactor_name(i), "balance")
                for i in range(N))
    assert total == 2 * sb.INITIAL_BALANCE * N, \
        "transfers must conserve money across the failover"
    routed = database.replication_stats()["reads_routed_to_replicas"]
    print(f"   total money conserved: {total:,.2f} "
          f"(reads served from replicas: {routed})")

    print("5. promoted container keeps serving writes")
    try:
        database.run(sb.reactor_name(0), "deposit_checking", 1.0)
    except TransactionAbort as abort:  # pragma: no cover
        raise AssertionError(f"promoted container rejected a write: "
                             f"{abort}")
    print("   promoted replica accepts new transactions.  done.")


if __name__ == "__main__":
    main()
