"""Serve a reactor database over TCP and talk to it with a client.

The serving layer puts a real client/server boundary in front of a
``ReactorDatabase``: transactions originate outside the process that
runs them, responses are matched by request id (out of order is fine),
and overload is shed at the wire with a typed ``Overloaded`` answer
instead of unbounded queueing.

This example starts a server on a background thread, connects a
``TcpClient``, runs the same banking transactions as ``quickstart.py``
over the wire — including two multiplexed logical sessions — and then
deliberately overloads a tiny admission bound to show a typed shed.

Run:  python examples/serve_and_connect.py
"""

from repro import ReactorDatabase, ReactorType, shared_nothing
from repro.client import TcpClient
from repro.relational import float_col, make_schema, str_col
from repro.serving import Overloaded, serve_in_thread

account = ReactorType("Account", lambda: [
    make_schema("ledger",
                [str_col("owner"), float_col("balance")],
                ["owner"]),
])


@account.procedure
def open_account(ctx, opening_balance):
    ctx.insert("ledger", {"owner": ctx.my_name(),
                          "balance": opening_balance})


@account.procedure
def balance_of(ctx):
    return ctx.lookup("ledger", ctx.my_name())["balance"]


@account.procedure
def credit(ctx, amount):
    row = ctx.lookup("ledger", ctx.my_name())
    new_balance = row["balance"] + amount
    if new_balance < 0:
        ctx.abort("insufficient funds")
    ctx.update("ledger", ctx.my_name(), {"balance": new_balance})
    return new_balance


@account.procedure
def transfer(ctx, destination, amount):
    fut = yield ctx.call(destination, "credit", amount)
    yield ctx.call(ctx.my_name(), "credit", -amount)
    new_destination_balance = yield ctx.get(fut)
    return new_destination_balance


def main():
    names = ["alice", "bob", "carol", "dave"]
    db = ReactorDatabase(shared_nothing(4),
                         [(n, account) for n in names])

    # Serve on a background event-loop thread; port 0 = pick a free one.
    server = serve_in_thread(db)
    print(f"serving on {server.host}:{server.port}")

    client = TcpClient(server.host, server.port).connect()
    print(f"negotiated protocol v{client.protocol_version}, "
          f"codec {client.codec}")

    for name in names:
        client.call(name, "open_account", 100.0)
    client.call("alice", "transfer", "bob", 30.0)

    # Two logical sessions multiplexed over the one connection.
    teller, auditor = client.session(), client.session()
    pending = teller.submit("carol", "transfer", "dave", 25.0)
    balance = auditor.call("alice", "balance_of", read_only=True)
    print(f"  alice balance (auditor session): {balance}")
    print(f"  carol->dave transfer committed: "
          f"{pending.wait(5.0).committed}")
    client.close()
    server.stop()

    # Overload: a deliberately tiny admission bound sheds bursts with
    # a typed answer carrying a retry-after hint.
    server = serve_in_thread(db, max_inflight=2)
    client = TcpClient(server.host, server.port).connect()
    burst = client.submit_many(
        [("alice", "credit", (1.0,)) for _ in range(16)])
    outcomes = [s.wait(5.0) for s in burst]
    shed = [o for o in outcomes if o.shed]
    print(f"  burst of {len(burst)}: "
          f"{sum(o.committed for o in outcomes)} committed, "
          f"{len(shed)} shed")
    try:
        shed[0].unwrap()
    except Overloaded as refused:
        print(f"  typed shed: retry after "
              f"{refused.retry_after_us:.0f} usec")
    client.close()
    server.stop()
    db.close()


if __name__ == "__main__":
    main()
