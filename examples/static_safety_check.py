"""Static safety analysis of reactor applications.

The paper's runtime enforces the dynamic safety condition of Section
2.2.4; its future work asks for *static* checks to find dangerous
call structures at development time.  This example runs the
implemented checker (`repro.analysis`) over every workload in this
repository and over a deliberately broken application, showing what a
developer would see.

Run:  python examples/static_safety_check.py
"""

from repro.analysis import analyze
from repro.core.reactor import ReactorType
from repro.relational import int_col, make_schema
from repro.workloads.exchange import CLASSIC_EXCHANGE, EXCHANGE, \
    ORDERS_FRAGMENT, PROVIDER
from repro.workloads.smallbank import CUSTOMER
from repro.workloads.tpcc import WAREHOUSE


def check(label, rtypes):
    report = analyze(rtypes)
    print(f"\n=== {label} "
          f"({len(report.call_sites)} cross-reactor call sites) ===")
    if report.ok():
        print("  clean: no dangerous structures detected")
        return
    for warning in report.warnings:
        print(f"  {warning}")


def broken_application():
    """Mutual recursion across reactors: a guaranteed cycle."""
    node = ReactorType("BrokenNode", lambda: [
        make_schema("kv", [int_col("k"), int_col("v")], ["k"]),
    ])

    @node.procedure
    def ping(ctx, other):
        fut = yield ctx.call(other, "pong", ctx.my_name())
        yield ctx.get(fut)

    @node.procedure
    def pong(ctx, origin):
        fut = yield ctx.call(origin, "ping", ctx.my_name())
        yield ctx.get(fut)

    return node


if __name__ == "__main__":
    check("Smallbank (Customer)", [CUSTOMER])
    check("TPC-C (Warehouse)", [WAREHOUSE])
    check("Exchange, reactor model", [EXCHANGE, PROVIDER])
    check("Exchange, classic/partitioned",
          [CLASSIC_EXCHANGE, ORDERS_FRAGMENT])
    check("deliberately broken app", [broken_application()])
    print("\nFan-out warnings are conservative: the flagged loops are "
          "safe because\nthe workloads deduplicate destinations (or "
          "batch per target) — exactly the\nkind of invariant a "
          "developer documents when suppressing the warning.")
