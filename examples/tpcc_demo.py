"""TPC-C on ReactDB: one application, three database architectures.

Loads a two-warehouse TPC-C database (warehouse = reactor), runs the
standard transaction mix under closed-loop workers, and reports
throughput/latency/abort rates for each deployment strategy — the
virtualization-of-architecture demonstration of Section 4.3, scaled
to run in seconds.

Run:  python examples/tpcc_demo.py
"""

from repro.bench.harness import run_measurement
from repro.bench.report import print_table
from repro.experiments.common import tpcc_database
from repro.workloads import tpcc

SCALE_FACTOR = 2
WORKERS = 4
STRATEGIES = (
    "shared-everything-with-affinity",
    "shared-nothing-async",
    "shared-everything-without-affinity",
)


def run_one(strategy: str):
    database = tpcc_database(strategy, SCALE_FACTOR)
    workload = tpcc.TpccWorkload(n_warehouses=SCALE_FACTOR)
    result = run_measurement(
        database, WORKERS, workload.factory_for,
        warmup_us=10_000.0, measure_us=80_000.0, n_epochs=4)
    return result.summary, result.utilization()


def main():
    rows = []
    for strategy in STRATEGIES:
        summary, utilization = run_one(strategy)
        rows.append([
            strategy,
            round(summary.throughput_ktps, 2),
            round(summary.latency_us, 1),
            round(summary.abort_rate * 100, 2),
            round(100 * max(utilization.values()), 1),
        ])
    print_table(
        f"TPC-C, scale factor {SCALE_FACTOR}, {WORKERS} workers "
        "(same application code for every row)",
        ["deployment", "Ktxn/s", "latency us", "abort %",
         "peak core util %"],
        rows)
    print("\nNote how architecture choice changes performance but "
          "never semantics:\nno application code differs between "
          "rows — only the deployment config.")


if __name__ == "__main__":
    main()
