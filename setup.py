"""Setuptools shim.

Allows ``python setup.py develop`` in offline environments whose
setuptools predates PEP 660 editable installs (no ``wheel`` package).
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
