"""Reactors / ReactDB — SIGMOD 2018 reproduction.

A from-scratch Python implementation of the relational actor (reactor)
programming model and the ReactDB in-memory database system from:

    Vivek Shah and Marcos Antonio Vaz Salles.
    "Reactors: A Case for Predictable, Virtualized Actor Database
    Systems." SIGMOD 2018.

Quick start::

    from repro import (ReactorType, ReactorDatabase, shared_nothing)
    from repro.relational import make_schema, int_col, float_col

    account = ReactorType("Account", lambda: [
        make_schema("savings", [int_col("id"), float_col("balance")],
                    ["id"]),
    ])

    @account.procedure
    def deposit(ctx, amount):
        ctx.update("savings", pk=1, values={"balance": amount})

    db = ReactorDatabase(shared_nothing(2),
                         [("alice", account), ("bob", account)])

See ``examples/`` for complete applications, ``benchmarks/`` for the
reproduction of every table and figure of the paper, and ``docs/`` for
the architecture / deployment / benchmark guides.

Public exports: the programming-model surface
(:class:`~repro.core.reactor.ReactorType`,
:class:`~repro.core.database.ReactorDatabase`,
:class:`~repro.core.context.ReactorContext`), the deployment-time
knobs (:class:`~repro.core.deployment.DeploymentConfig`, the S1/S2/S3
factories, :class:`~repro.replication.config.ReplicationConfig`,
:class:`~repro.migration.config.MigrationConfig`,
:class:`~repro.durability.config.DurabilityConfig`), the error roots
(:class:`~repro.errors.ReactorError`,
:class:`~repro.errors.TransactionAbort`,
:class:`~repro.errors.UserAbort`) and the two machine profiles.
"""

from repro.core import (
    DeploymentConfig,
    ReactorContext,
    ReactorDatabase,
    ReactorType,
    shared_everything_with_affinity,
    shared_everything_without_affinity,
    shared_nothing,
)
from repro.durability.config import DurabilityConfig
from repro.errors import ReactorError, TransactionAbort, UserAbort
from repro.migration import MigrationConfig
from repro.replication import ReplicationConfig
from repro.sim import OPTERON_6274, XEON_E3_1276

__version__ = "1.0.0"

__all__ = [
    "ReactorType",
    "ReactorDatabase",
    "ReactorContext",
    "DeploymentConfig",
    "ReplicationConfig",
    "MigrationConfig",
    "DurabilityConfig",
    "shared_everything_without_affinity",
    "shared_everything_with_affinity",
    "shared_nothing",
    "ReactorError",
    "TransactionAbort",
    "UserAbort",
    "XEON_E3_1276",
    "OPTERON_6274",
    "__version__",
]
