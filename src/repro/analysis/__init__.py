"""Static program analysis for the reactor model.

Implements the paper's future-work static checks for dangerous call
structures (Section 2.2.4): call-graph cycle detection and fan-out
race warnings over reactor procedure source code.

Public exports: ``analyze`` / ``extract_call_sites`` and their result
types (:class:`AnalysisReport`, :class:`CallSite`, :class:`Warning_`).
"""

from repro.analysis.static_safety import (
    AnalysisReport,
    CallSite,
    Warning_,
    analyze,
    extract_call_sites,
)

__all__ = [
    "analyze",
    "extract_call_sites",
    "AnalysisReport",
    "CallSite",
    "Warning_",
]
