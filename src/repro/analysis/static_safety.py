"""Static detection of dangerous call structures.

The paper's runtime enforces the dynamic safety condition (Section
2.2.4) and names "formalizing static program checks to aid in
detection of dangerous call structures among reactors" as future
work.  This module implements such a checker over procedure source
code: it extracts cross-reactor call sites by AST analysis, builds a
procedure-level call graph, and reports

* **cycles** in the call graph — programs that *may* re-enter a
  reactor already active in the same root transaction (the cyclic
  structures the dynamic condition prohibits);
* **fan-out races** — multiple asynchronous call sites (or a call
  inside a loop) whose targets are not statically distinct, which
  race the same reactor whenever two targets coincide at runtime.

The analysis is conservative by design: it cannot prove targets
distinct (reactor names are runtime values), so it warns on
possibility, mirroring how the dynamic condition "conservatively
assumes that conflicts may arise".  Suppress a warning by verifying
the input-generation invariant (e.g. deduplicated destination lists)
and documenting it.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.reactor import ReactorType
from repro.formal.serializability import has_cycle

SELF_TARGET = "<self>"
UNKNOWN_TARGET = "<unknown>"


@dataclass(frozen=True)
class CallSite:
    """One ``ctx.call(target, "proc", ...)`` occurrence."""

    caller_type: str
    caller_proc: str
    target: str  # literal reactor name, SELF_TARGET or UNKNOWN_TARGET
    callee_proc: str | None  # None when not a string literal
    in_loop: bool
    line: int


@dataclass(frozen=True)
class Warning_:
    """One finding of the static checker."""

    kind: str  # "cycle" | "fanout-race"
    procedures: tuple[str, ...]
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"[{self.kind}] {' -> '.join(self.procedures)}: " \
            f"{self.detail}"


@dataclass
class AnalysisReport:
    call_sites: list[CallSite] = field(default_factory=list)
    warnings: list[Warning_] = field(default_factory=list)

    @property
    def cycles(self) -> list[Warning_]:
        return [w for w in self.warnings if w.kind == "cycle"]

    @property
    def fanout_races(self) -> list[Warning_]:
        return [w for w in self.warnings if w.kind == "fanout-race"]

    def ok(self) -> bool:
        return not self.warnings


class _CallVisitor(ast.NodeVisitor):
    """Collects ctx.call sites and their loop nesting."""

    def __init__(self, caller_type: str, caller_proc: str,
                 ctx_name: str) -> None:
        self.caller_type = caller_type
        self.caller_proc = caller_proc
        self.ctx_name = ctx_name
        self.sites: list[CallSite] = []
        self._loop_depth = 0

    def visit_For(self, node: ast.For) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        function = node.func
        is_ctx_call = (
            isinstance(function, ast.Attribute)
            and function.attr == "call"
            and isinstance(function.value, ast.Name)
            and function.value.id == self.ctx_name
        )
        if is_ctx_call and node.args:
            self.sites.append(CallSite(
                caller_type=self.caller_type,
                caller_proc=self.caller_proc,
                target=self._target_of(node.args[0]),
                callee_proc=self._literal_str(node.args[1])
                if len(node.args) > 1 else None,
                in_loop=self._loop_depth > 0,
                line=node.lineno,
            ))
        self.generic_visit(node)

    def _target_of(self, expr: ast.expr) -> str:
        literal = self._literal_str(expr)
        if literal is not None:
            return literal
        # ctx.my_name() is a self-call: inlined, never dangerous.
        if (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "my_name"
                and isinstance(expr.func.value, ast.Name)
                and expr.func.value.id == self.ctx_name):
            return SELF_TARGET
        return UNKNOWN_TARGET

    @staticmethod
    def _literal_str(expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Constant) and \
                isinstance(expr.value, str):
            return expr.value
        return None


def extract_call_sites(rtype: ReactorType) -> list[CallSite]:
    """All cross-reactor call sites in a reactor type's procedures."""
    sites: list[CallSite] = []
    for proc_name, proc in sorted(rtype.procedures.items()):
        try:
            source = textwrap.dedent(inspect.getsource(proc))
        except (OSError, TypeError):  # builtins, exec'd code...
            continue
        tree = ast.parse(source)
        function = tree.body[0]
        if not isinstance(function,
                          (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        ctx_name = function.args.args[0].arg if function.args.args \
            else "ctx"
        visitor = _CallVisitor(rtype.name, proc_name, ctx_name)
        visitor.visit(function)
        sites.extend(visitor.sites)
    return sites


def analyze(rtypes: Iterable[ReactorType]) -> AnalysisReport:
    """Run the static checker over a set of reactor types.

    The call graph is procedure-level: an edge ``caller -> callee``
    exists for every call site naming ``callee`` as a string literal
    (calls with dynamic procedure names conservatively connect to
    every procedure of that name across the given types).
    """
    rtypes = list(rtypes)
    report = AnalysisReport()
    known_procs = {proc: rtype.name for rtype in rtypes
                   for proc in rtype.procedures}

    for rtype in rtypes:
        report.call_sites.extend(extract_call_sites(rtype))

    # -- cycle detection over the procedure call graph ----------------
    nodes = set(known_procs)
    edges: set[tuple[str, str]] = set()
    for site in report.call_sites:
        if site.callee_proc is not None and \
                site.callee_proc in known_procs and \
                site.target != SELF_TARGET:
            edges.add((site.caller_proc, site.callee_proc))
    if has_cycle(nodes, edges):
        cycle_members = _cycle_members(nodes, edges)
        report.warnings.append(Warning_(
            kind="cycle",
            procedures=tuple(sorted(cycle_members)),
            detail="cross-reactor call cycle: a transaction may "
                   "re-enter a reactor it is already active on "
                   "(dangerous structure, Section 2.2.4)",
        ))

    # -- fan-out race detection per procedure --------------------------
    by_proc: dict[str, list[CallSite]] = {}
    for site in report.call_sites:
        if site.target != SELF_TARGET:
            by_proc.setdefault(site.caller_proc, []).append(site)
    for proc_name, sites in sorted(by_proc.items()):
        looped = [s for s in sites if s.in_loop]
        distinct_literals = {s.target for s in sites
                             if s.target not in (UNKNOWN_TARGET,)}
        unknowns = [s for s in sites if s.target == UNKNOWN_TARGET]
        risky = bool(looped) or len(unknowns) >= 2
        if risky:
            lines = sorted({s.line for s in (looped or unknowns)})
            report.warnings.append(Warning_(
                kind="fanout-race",
                procedures=(proc_name,),
                detail=(
                    "multiple asynchronous call sites with "
                    "statically indistinct targets (lines "
                    f"{lines}); two coinciding targets at runtime "
                    "violate the safety condition unless results "
                    "are awaited in between or targets are "
                    "deduplicated"
                ),
            ))
        del distinct_literals
    return report


def _cycle_members(nodes: set[str],
                   edges: set[tuple[str, str]]) -> set[str]:
    """Nodes on at least one cycle (nodes reachable from themselves)."""
    adjacency: dict[str, set[str]] = {n: set() for n in nodes}
    for src, dst in edges:
        adjacency.setdefault(src, set()).add(dst)
        adjacency.setdefault(dst, set())
    members = set()
    for start in adjacency:
        seen: set[str] = set()
        stack = list(adjacency[start])
        while stack:
            node = stack.pop()
            if node == start:
                members.add(start)
                break
            if node in seen:
                continue
            seen.add(node)
            stack.extend(adjacency[node])
    return members
