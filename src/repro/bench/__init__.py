"""Benchmark harness: workers, epoch metrics, experiment driver.

Methodology mirrors the paper (Section 4.1.2): epoch-based measurement
after OLTP-Bench, closed-loop client workers in a separate worker
container, latency measured including input generation, and mean/std
reported across epochs.

Public exports: the drivers (``run_measurement``,
``single_worker_latency``, :class:`MeasurementResult`), the load
generators (:class:`Worker`, ``spawn_workers``), the statistics
(:class:`RunSummary`, ``summarize``, ``mean`` / ``stddev`` /
``percentile``) and the table/series printers (``format_table``,
``print_table``, ``print_series``).
"""

from repro.bench.harness import (
    MeasurementResult,
    run_measurement,
    single_worker_latency,
)
from repro.bench.metrics import RunSummary, mean, percentile, stddev, summarize
from repro.bench.report import format_table, print_series, print_table
from repro.bench.worker import Worker, spawn_workers

__all__ = [
    "Worker",
    "spawn_workers",
    "run_measurement",
    "single_worker_latency",
    "MeasurementResult",
    "RunSummary",
    "summarize",
    "mean",
    "stddev",
    "percentile",
    "format_table",
    "print_table",
    "print_series",
]
