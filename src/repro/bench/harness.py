"""Experiment driver: load, warm up, measure, summarize.

:func:`run_measurement` is the shared engine behind every figure/table
reproduction: it takes a freshly built database — or a
:class:`~repro.client.Client` wrapping one; either is normalized via
:func:`~repro.client.as_client` — plus per-worker transaction
factories, runs warmup + measurement in virtual time, and returns a
:class:`~repro.bench.metrics.RunSummary` (plus raw stats for
specialized analyses like the Figure 6 breakdown).  The closed-loop
machinery requires the embedded path (a
:class:`~repro.client.LocalClient`); served databases are measured
open-loop by :mod:`repro.serving.loadgen` instead.

Every measurement also snapshots the database's telemetry summary
(commit/abort latency percentiles from the metrics registry); the
benchmark JSON writer drains :func:`drain_telemetry_summaries` and
embeds the blocks under a top-level ``telemetry`` key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.bench.metrics import RunSummary, summarize
from repro.bench.worker import TxnFactory, Worker, spawn_workers
from repro.client import as_client
from repro.core.database import ReactorDatabase
from repro.runtime.transaction import TxnStats

#: Telemetry summaries accumulated across measurements of the current
#: benchmark process, drained by ``benchmarks/_util.emit_json``.
_TELEMETRY_LOG: list[dict] = []


def _note_telemetry(database: ReactorDatabase) -> dict:
    summary = database.telemetry.bench_summary()
    if summary:
        _TELEMETRY_LOG.append(summary)
    return summary


def drain_telemetry_summaries() -> list[dict]:
    """Telemetry summaries of every measurement since the last drain
    (benchmark JSON writers embed them, then the log resets)."""
    drained = list(_TELEMETRY_LOG)
    _TELEMETRY_LOG.clear()
    return drained


@dataclass
class MeasurementResult:
    """Summary plus everything needed for deeper analysis."""

    summary: RunSummary
    raw_stats: list[TxnStats] = field(default_factory=list)
    workers: list[Worker] = field(default_factory=list)
    #: busy time per executor core during the measurement window
    core_busy: dict[int, float] = field(default_factory=dict)
    window_us: float = 0.0
    #: ``database.telemetry.bench_summary()`` at measurement end
    #: (empty when telemetry is disabled).
    telemetry: dict = field(default_factory=dict)
    #: Execution backend that produced the numbers: ``"sim"`` times are
    #: virtual microseconds, ``"threads"`` times are wall-clock.
    backend: str = "sim"

    def utilization(self) -> dict[int, float]:
        """Core utilization in [0, 1] over the measurement window."""
        if not self.window_us:
            return {}
        return {core: busy / self.window_us
                for core, busy in sorted(self.core_busy.items())}


def run_measurement(database: "ReactorDatabase | Any", n_workers: int,
                    txn_factory_for: Callable[[int], TxnFactory],
                    warmup_us: float = 20_000.0,
                    measure_us: float = 200_000.0,
                    n_epochs: int = 10,
                    seed: int = 42) -> MeasurementResult:
    """Run a closed-loop measurement on a freshly loaded database
    (or a client wrapping one — see the module docstring).

    Workers issue transactions from virtual time 0; statistics are
    summarized over ``[warmup_us, warmup_us + measure_us)``, split into
    ``n_epochs`` epochs (the paper uses 50 epochs; benchmarks here
    default to fewer for tractable wall-clock times, configurable up).
    """
    client = as_client(database)
    database = client.database
    scheduler = database.scheduler
    start = scheduler.now
    deadline = start + warmup_us + measure_us
    workers = spawn_workers(client, n_workers, txn_factory_for,
                            deadline, seed=seed)

    busy_before: dict[int, float] = {}

    def snapshot_busy() -> None:
        for executor in database.executors:
            busy_before[executor.core_id] = executor.busy_time

    scheduler.at(start + warmup_us, snapshot_busy)
    # Drain: run until all in-flight transactions complete (workers
    # stop issuing at the deadline, so the event queue empties).
    scheduler.run()

    all_stats: list[TxnStats] = []
    for worker in workers:
        all_stats.extend(worker.stats)
    summary = summarize(all_stats, start + warmup_us, deadline,
                        n_epochs=n_epochs)
    core_busy = {
        executor.core_id:
            executor.busy_time - busy_before.get(executor.core_id, 0.0)
        for executor in database.executors
    }
    return MeasurementResult(
        summary=summary,
        raw_stats=all_stats,
        workers=workers,
        core_busy=core_busy,
        window_us=measure_us,
        telemetry=_note_telemetry(database),
        backend=getattr(scheduler, "name", "sim"),
    )


def single_worker_latency(database: "ReactorDatabase | Any",
                          txn_factory: TxnFactory,
                          n_txns: int = 200,
                          warmup_txns: int = 20,
                          seed: int = 42) -> MeasurementResult:
    """Latency-oriented measurement: one worker, a fixed transaction
    count (the Section 4.2 single-worker methodology).

    The worker issues ``warmup_txns + n_txns`` transactions; the
    summary covers the completion window of the measured ones.
    """
    client = as_client(database)
    database = client.database
    remaining = {"count": warmup_txns + n_txns}

    def factory(worker: Worker):
        if remaining["count"] <= 0:
            return None
        remaining["count"] -= 1
        return txn_factory(worker)

    worker = Worker(0, client, factory, deadline=float("inf"),
                    seed=seed)
    worker.start()
    database.scheduler.run()

    stats = worker.stats
    measured = stats[warmup_txns:]
    if not measured:
        raise ValueError("no transactions measured")
    window_start = measured[0].start
    window_end = measured[-1].end + 1e-6
    summary = summarize(measured, window_start, window_end,
                        n_epochs=min(10, max(1, len(measured) // 10)))
    return MeasurementResult(
        summary=summary,
        raw_stats=measured,
        workers=[worker],
        core_busy={e.core_id: e.busy_time for e in database.executors},
        window_us=window_end - window_start,
        telemetry=_note_telemetry(database),
        backend=getattr(database.scheduler, "name", "sim"),
    )
