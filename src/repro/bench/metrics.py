"""Measurement aggregation.

Follows the paper's methodology (Section 4.1.2, after OLTP-Bench): a
run is divided into fixed-length epochs; average latency / throughput
is computed per epoch over *successful* transactions, and the mean and
standard deviation across epochs are reported.  Abort rates are
reported over the whole measurement window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.runtime.transaction import CATEGORIES, TxnStats


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def stddev(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values)
                     / (len(values) - 1))


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile; q in [0, 100]."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(math.ceil(q / 100.0 * len(ordered))) - 1))
    return ordered[rank]


@dataclass
class EpochSummary:
    """Per-epoch successful-transaction statistics."""

    epoch: int
    committed: int
    aborted: int
    throughput_tps: float
    mean_latency_us: float


@dataclass
class RunSummary:
    """Aggregated statistics for one measurement run."""

    committed: int = 0
    aborted: int = 0
    user_aborts: int = 0
    #: mean of per-epoch throughputs (txn/sec) and its std deviation
    throughput_tps: float = 0.0
    throughput_std: float = 0.0
    #: mean of per-epoch mean latencies (microseconds) and its std
    latency_us: float = 0.0
    latency_std: float = 0.0
    p50_us: float = 0.0
    p99_us: float = 0.0
    #: average latency breakdown by cost-model category (microseconds)
    breakdown: dict[str, float] = field(default_factory=dict)
    epochs: list[EpochSummary] = field(default_factory=list)

    @property
    def abort_rate(self) -> float:
        total = self.committed + self.aborted
        return self.aborted / total if total else 0.0

    @property
    def throughput_ktps(self) -> float:
        return self.throughput_tps / 1000.0

    @property
    def latency_ms(self) -> float:
        return self.latency_us / 1000.0


def summarize(stats: Iterable[TxnStats], window_start: float,
              window_end: float, n_epochs: int = 10) -> RunSummary:
    """Aggregate transaction stats over ``[window_start, window_end)``.

    Transactions completing outside the window (warmup / drain) are
    ignored.  The window is split into ``n_epochs`` equal epochs.
    """
    if window_end <= window_start:
        raise ValueError("empty measurement window")
    in_window = [s for s in stats
                 if window_start <= s.end < window_end]
    committed = [s for s in in_window if s.committed]
    aborted = [s for s in in_window if not s.committed]

    epoch_len = (window_end - window_start) / n_epochs
    epochs: list[EpochSummary] = []
    for e in range(n_epochs):
        lo = window_start + e * epoch_len
        hi = lo + epoch_len
        epoch_committed = [s for s in committed if lo <= s.end < hi]
        epoch_aborted = sum(1 for s in aborted if lo <= s.end < hi)
        latencies = [s.latency for s in epoch_committed]
        epochs.append(EpochSummary(
            epoch=e,
            committed=len(epoch_committed),
            aborted=epoch_aborted,
            throughput_tps=len(epoch_committed) / (epoch_len / 1e6),
            mean_latency_us=mean(latencies),
        ))

    summary = RunSummary(
        committed=len(committed),
        aborted=len(aborted),
        user_aborts=sum(1 for s in aborted if s.user_abort),
        epochs=epochs,
    )
    tputs = [e.throughput_tps for e in epochs]
    # Epochs with no completions contribute zero throughput but no
    # latency sample.
    lats = [e.mean_latency_us for e in epochs if e.committed]
    summary.throughput_tps = mean(tputs)
    summary.throughput_std = stddev(tputs)
    summary.latency_us = mean(lats)
    summary.latency_std = stddev(lats)
    all_lats = [s.latency for s in committed]
    summary.p50_us = percentile(all_lats, 50)
    summary.p99_us = percentile(all_lats, 99)
    if committed:
        summary.breakdown = {
            cat: mean([s.breakdown.get(cat, 0.0) for s in committed])
            for cat in CATEGORIES
        }
    return summary
