"""ASCII reporting of experiment series.

Each experiment module prints the same rows/series the paper's figure
or table reports, via these small helpers — no plotting dependencies.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]]) -> str:
    """Render a fixed-width table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append(
            "  ".join(cell.rjust(widths[i]) if _numeric(cell)
                      else cell.ljust(widths[i])
                      for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str],
                rows: Sequence[Sequence[Any]]) -> None:
    print(f"\n== {title} ==")
    print(format_table(headers, rows))


def print_series(title: str, x_label: str, series: dict[str, dict],
                 unit: str = "") -> None:
    """Print multiple named series sharing an x axis.

    ``series`` maps series name -> {x value -> y value}.
    """
    xs = sorted({x for ys in series.values() for x in ys})
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row: list[Any] = [x]
        for name in series:
            row.append(series[name].get(x, ""))
        rows.append(row)
    suffix = f" [{unit}]" if unit else ""
    print_table(title + suffix, headers, rows)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def _numeric(cell: str) -> bool:
    try:
        float(cell.replace(",", ""))
        return True
    except ValueError:
        return False
