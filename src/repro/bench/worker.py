"""Closed-loop client workers.

Workers model the paper's client threads: each worker lives in a
*worker container* (cores disjoint from the transaction executors),
generates transaction inputs (paying ``input_gen``), submits the
transaction (paying ``client_send``), blocks until completion, pays
``client_receive`` on the reply thread switch, records the measurement,
and immediately issues the next transaction.

A workload supplies a ``txn_factory(worker) -> (reactor, proc, args)``
callable (or ``None`` to stop early); experiment code decides how many
workers to run and for how long.

Workers accept either a bare :class:`ReactorDatabase` or a
:class:`~repro.client.Client` (normalized via
:func:`~repro.client.as_client`).  Being closed-loop *and* part of the
cost model (they charge client-side overheads onto the root and read
the virtual clock), they require the embedded path — a
:class:`~repro.client.LocalClient`; open-loop load over the wire is
:mod:`repro.serving.loadgen`'s job.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.client import as_client
from repro.core.database import ReactorDatabase
from repro.runtime.transaction import RootTransaction, TxnStats

TxnSpec = tuple[str, str, tuple]
TxnFactory = Callable[["Worker"], TxnSpec | None]


class Worker:
    """One closed-loop load generator."""

    __slots__ = ("worker_id", "client", "database", "txn_factory",
                 "deadline", "rng", "stats", "issued", "busy_time",
                 "_issue_start")

    def __init__(self, worker_id: int,
                 database: "ReactorDatabase | Any",
                 txn_factory: TxnFactory, deadline: float,
                 seed: int = 42) -> None:
        self.worker_id = worker_id
        self.client = as_client(database)
        self.database = self.client.database
        self.txn_factory = txn_factory
        #: Virtual time after which no new transactions are issued.
        self.deadline = deadline
        self.rng = random.Random(f"worker-{worker_id}/{seed}")
        self.stats: list[TxnStats] = []
        self.issued = 0
        self.busy_time = 0.0
        self._issue_start = 0.0

    # ------------------------------------------------------------------

    def start(self) -> None:
        self.database.scheduler.soon(self._issue)

    def _issue(self) -> None:
        scheduler = self.database.scheduler
        if scheduler.now >= self.deadline:
            return
        spec = self.txn_factory(self)
        if spec is None:
            return
        reactor, proc, args = spec
        self._issue_start = scheduler.now
        costs = self.database.costs
        setup = costs.input_gen + costs.client_send
        self.busy_time += setup
        scheduler.after(setup, self._submit, reactor, proc, args)

    def _submit(self, reactor: str, proc: str, args: tuple) -> None:
        costs = self.database.costs
        root = self.database.submit(reactor, proc, *args,
                                    on_done=self._on_done)
        # Client-side overheads belong to the commit+input-gen bucket
        # of the latency breakdown (they are not part of the
        # sub-transaction cost model of Figure 3).
        root.charge("commit_input_gen",
                    costs.input_gen + costs.client_send)
        root.client_worker = self
        self.issued += 1

    def _on_done(self, root: RootTransaction, committed: bool,
                 reason: str | None, result: Any) -> None:
        costs = self.database.costs
        self.busy_time += costs.client_receive
        root.charge("commit_input_gen", costs.client_receive)
        self.database.scheduler.after(
            costs.client_receive, self._record, root, committed, reason)

    def _record(self, root: RootTransaction, committed: bool,
                reason: str | None) -> None:
        stats = root.make_stats(
            end_time=self.database.scheduler.now,
            committed=committed,
            abort_reason=reason,
        )
        # Latency includes input generation (paper Section 4.1.2).
        stats.start = self._issue_start
        self.stats.append(stats)
        self._issue()


def spawn_workers(database: "ReactorDatabase | Any", n_workers: int,
                  txn_factory_for: Callable[[int], TxnFactory],
                  deadline: float, seed: int = 42) -> list[Worker]:
    """Create and start ``n_workers`` closed-loop workers against a
    database or client (see :class:`Worker` on which clients work)."""
    client = as_client(database)
    workers = []
    for i in range(n_workers):
        worker = Worker(i, client, txn_factory_for(i), deadline,
                        seed=seed)
        worker.start()
        workers.append(worker)
    return workers
