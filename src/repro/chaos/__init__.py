"""Adversarial scenario campaigns on the deterministic simulator.

FoundationDB-style seeded fault campaigns: a single master seed expands
into randomized deployment configs and fault schedules (crashes +
promotions, mid-flight migrations and rebalances, torn-flush crash
images, asymmetric container slowdowns, replica-lag spikes) injected at
virtual-time points over SmallBank / YCSB / TPC-C slices.  Every
episode must pass every applicable black-box certificate from
:mod:`repro.formal.audit`; failures are auto-shrunk to minimal repro
files the regression suite replays.

Layers: :mod:`~repro.chaos.schedule` (pure fault-schedule data +
generator), :mod:`~repro.chaos.injection` (resolving actions against a
live database), :mod:`~repro.chaos.episode` (one run + verdict),
:mod:`~repro.chaos.shrink` (delta-debugging), and
:mod:`~repro.chaos.campaign` (the master-seeded driver behind
``tools/chaos_campaign.py``).
"""

from repro.chaos.campaign import (
    CampaignConfig,
    CampaignReport,
    episode_config,
    episode_schedule,
    run_campaign,
)
from repro.chaos.episode import (
    BUG_TOGGLES,
    EpisodeConfig,
    EpisodeResult,
    run_episode,
)
from repro.chaos.injection import FaultInjector
from repro.chaos.schedule import (
    FAULT_KINDS,
    FaultAction,
    FaultSchedule,
    ScheduleSpec,
    generate_schedule,
)
from repro.chaos.shrink import ShrinkResult, make_repro, shrink_schedule

__all__ = [
    "FAULT_KINDS",
    "BUG_TOGGLES",
    "FaultAction",
    "FaultSchedule",
    "ScheduleSpec",
    "generate_schedule",
    "FaultInjector",
    "EpisodeConfig",
    "EpisodeResult",
    "run_episode",
    "ShrinkResult",
    "shrink_schedule",
    "make_repro",
    "CampaignConfig",
    "CampaignReport",
    "episode_config",
    "episode_schedule",
    "run_campaign",
]
