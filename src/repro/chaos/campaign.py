"""Master-seeded campaigns: many episodes, one verdict, auto-repro.

From a single master seed the campaign deterministically derives, per
episode, a deployment config (workload × ``cc_scheme`` ×
``durability_mode`` × replication mode, under the deployment layer's
validity rules) and a fault schedule, runs the episode, and demands a
100% certificate pass rate.  A failing episode is re-run under full
tracing (the Chrome trace export lands next to the report for CI
artifact upload), shrunk with :mod:`repro.chaos.shrink`, and written
out as a minimal ``(seed, config, schedule)`` repro file that
``tests/test_chaos_regressions.py`` replays forever after.

The report is **byte-reproducible**: it contains only virtual-time
quantities and deterministic counters — no wall clock, no hostnames —
so two runs of ``run_campaign`` with the same arguments serialize to
identical JSON.  Campaign counters go through a
:class:`~repro.telemetry.metrics.MetricsRegistry` under the
``chaos_*`` catalog names, so ``tools/check_trace.py`` and the
Prometheus renderer accept them like any other series.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.chaos.episode import (
    BUG_TOGGLES,
    EpisodeConfig,
    EpisodeResult,
    run_episode,
)
from repro.chaos.schedule import FaultSchedule, generate_schedule
from repro.chaos.shrink import make_repro, shrink_schedule
from repro.sim.rng import RngFactory
from repro.telemetry.metrics import MetricsRegistry

CAMPAIGN_SCHEMA = "chaos-campaign-v1"

_WORKLOADS = ("smallbank", "smallbank", "ycsb", "tpcc")
_SCHEMES = ("occ", "mvocc", "2pl_nowait", "2pl_waitdie")
_DURABILITY = ("none", "group", "group", "sync", "async")
_REPLICATION = ("none", "none", "sync", "async")


@dataclass
class CampaignConfig:
    episodes: int = 25
    master_seed: int = 42
    tiny: bool = False
    #: Arm one deliberate bug toggle in every episode (pipeline
    #: self-test: the campaign must catch, shrink, and file it).
    inject_bug: str | None = None
    shrink: bool = True
    shrink_budget: int = 60
    #: Stop shrinking/refiling after this many distinct failures.
    max_repros: int = 5

    def __post_init__(self) -> None:
        if self.inject_bug is not None and \
                self.inject_bug not in BUG_TOGGLES:
            raise ValueError(
                f"unknown bug toggle {self.inject_bug!r}; expected "
                f"one of {', '.join(BUG_TOGGLES)}")


def episode_config(master_seed: int, index: int, tiny: bool = False,
                   inject_bug: str | None = None) -> EpisodeConfig:
    """Derive episode ``index``'s deployment config from the master
    seed (pure function — the repro files do not depend on it)."""
    rng = RngFactory(master_seed).stream(f"chaos/episode/{index}")
    workload = _WORKLOADS[rng.randrange(len(_WORKLOADS))]
    cc_scheme = _SCHEMES[rng.randrange(len(_SCHEMES))]
    durability = _DURABILITY[rng.randrange(len(_DURABILITY))]
    replication = _REPLICATION[rng.randrange(len(_REPLICATION))]
    snapshot_reads = cc_scheme == "mvocc" or rng.random() < 0.25
    read_from_replicas = (
        replication != "none"
        and (cc_scheme in ("occ", "mvocc") or snapshot_reads)
        and rng.random() < 0.4)
    n_containers = 2 if tiny else rng.randint(2, 3)
    if workload == "tpcc":
        n_txns = 16 if tiny else 28
        gap = 60.0
    else:
        n_txns = 24 if tiny else 48
        gap = 25.0
    return EpisodeConfig(
        workload=workload,
        cc_scheme=cc_scheme,
        durability_mode=durability,
        replication_mode=replication,
        replicas=1 if replication != "none" else 0,
        read_from_replicas=read_from_replicas,
        snapshot_reads=snapshot_reads,
        n_containers=n_containers,
        n_txns=n_txns,
        txn_gap_us=gap,
        scale=1,
        seed=rng.randrange(2 ** 31),
        inject_bug=inject_bug,
    )


def episode_schedule(config: EpisodeConfig,
                     tiny: bool = False) -> FaultSchedule:
    spec = config.schedule_spec(min_actions=1 if tiny else 2,
                                max_actions=3 if tiny else 5)
    return generate_schedule(config.seed, spec)


@dataclass
class CampaignReport:
    config: CampaignConfig
    episodes: list[dict[str, Any]] = field(default_factory=list)
    failures: list[dict[str, Any]] = field(default_factory=list)
    repros: list[dict[str, Any]] = field(default_factory=list)
    #: ``(file name, Chrome-trace JSON)`` exports of failing episodes.
    traces: list[tuple[str, str]] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def passed(self) -> int:
        return sum(1 for episode in self.episodes if episode["ok"])

    @property
    def pass_rate(self) -> float:
        if not self.episodes:
            return 1.0
        return self.passed / len(self.episodes)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": CAMPAIGN_SCHEMA,
            "master_seed": self.config.master_seed,
            "episodes": len(self.episodes),
            "tiny": self.config.tiny,
            "inject_bug": self.config.inject_bug,
            "passed": self.passed,
            "failed": len(self.episodes) - self.passed,
            "pass_rate": round(self.pass_rate, 6),
            "counters": self.metrics.snapshot(),
            "episode_results": self.episodes,
            "failures": self.failures,
            "repros": [repro["name"] for repro in self.repros],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True,
                          default=repr) + "\n"


def _episode_row(index: int, config: EpisodeConfig,
                 schedule: FaultSchedule,
                 result: EpisodeResult) -> dict[str, Any]:
    return {
        "episode": index,
        "workload": config.workload,
        "cc_scheme": config.cc_scheme,
        "durability_mode": config.durability_mode,
        "replication_mode": config.replication_mode,
        "seed": config.seed,
        "n_actions": len(schedule.actions),
        "ok": result.ok,
        "failure_kinds": result.failure_kinds,
        "submitted": result.submitted,
        "committed": result.committed,
        "aborted": result.aborted,
        "sim_time_us": result.sim_time_us,
        "digest": result.digest,
        "faults_applied": result.injection["applied"],
        "faults_skipped": result.injection["skipped"],
    }


def run_campaign(config: CampaignConfig) -> CampaignReport:
    """Run a full campaign; see the module docstring for semantics."""
    report = CampaignReport(config=config)
    metrics = report.metrics
    for index in range(config.episodes):
        econfig = episode_config(config.master_seed, index,
                                 tiny=config.tiny,
                                 inject_bug=config.inject_bug)
        schedule = episode_schedule(econfig, tiny=config.tiny)
        result = run_episode(econfig, schedule)
        metrics.counter("chaos_episodes_total").inc()
        for kind, count in result.injection["applied"].items():
            metrics.counter("chaos_faults_injected_total",
                            kind=kind).inc(count)
        for kind, count in result.injection["skipped"].items():
            metrics.counter("chaos_faults_skipped_total",
                            kind=kind).inc(count)
        report.episodes.append(
            _episode_row(index, econfig, schedule, result))
        if result.ok:
            continue
        metrics.counter("chaos_episode_failures_total").inc()
        failure = {
            "episode": index,
            "seed": econfig.seed,
            "failure_kinds": result.failure_kinds,
            "failures": result.failures,
            "original_actions": len(schedule.actions),
        }
        # Re-run under full tracing: the failing episode's span tree
        # is the artifact a human debugs from.
        traced = run_episode(econfig, schedule, full_trace=True)
        trace_name = (f"chaos-{config.master_seed}-"
                      f"episode-{index:04d}.trace.json")
        if traced.trace_json is not None:
            report.traces.append((trace_name, traced.trace_json))
            failure["trace"] = trace_name
        if config.shrink and len(report.repros) < config.max_repros:
            target_kinds = set(result.failure_kinds)

            def reproduces(candidate: FaultSchedule) -> bool:
                rerun = run_episode(econfig, candidate)
                metrics.counter("chaos_shrink_episodes_total").inc()
                return target_kinds <= set(rerun.failure_kinds)

            shrunk = shrink_schedule(
                schedule, reproduces,
                max_episodes=config.shrink_budget,
                snap_gap_us=econfig.txn_gap_us)
            name = (f"{econfig.inject_bug or 'found'}-"
                    f"{config.master_seed}-{index:04d}")
            repro = make_repro(name, econfig, shrunk.schedule,
                               result.failure_kinds)
            report.repros.append(repro)
            metrics.counter("chaos_repro_files_total").inc()
            failure["shrunk_actions"] = len(shrunk.schedule.actions)
            failure["shrink_episodes"] = shrunk.episodes_run
            failure["shrink_minimal"] = shrunk.minimal
            failure["repro"] = f"{name}.json"
        report.failures.append(failure)
    return report
