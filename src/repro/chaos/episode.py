"""One chaos episode: build, load, inject, run, certify.

An episode is a deterministic function ``(EpisodeConfig, FaultSchedule)
→ EpisodeResult``: a fresh database is built from the config, a sliced
workload (SmallBank / YCSB / TPC-C) is scheduled open-loop at fixed
virtual-time points, the fault schedule is armed on the same scheduler,
the simulation runs to quiescence, and the episode is judged by

* **liveness** — every submitted root reported an outcome (commit or
  a reported abort; a root that silently vanished is a bug), and
* **every applicable certificate** from :mod:`repro.formal.audit`,
  via :func:`~repro.formal.audit.certify_all` (serializability from an
  episode-scoped recorder, replication, migration, snapshot isolation,
  plus the crash-recovery reports ``crash_image`` faults produced
  mid-run).

Everything an episode observes — outcome counts, injection record,
certificate verdicts, a state digest — lands in the result dict, and
two runs of the same ``(config, schedule)`` produce byte-identical
dicts.  ``inject_bug`` enables one of the deliberate ``chaos_*`` bug
toggles the runtime hooks expose (see :mod:`repro.chaos.campaign`),
which is how the pipeline itself is tested: a bug must be caught,
shrunk, and replayed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any

from repro.chaos.injection import FaultInjector
from repro.chaos.schedule import FaultSchedule, ScheduleSpec
from repro.core.database import ReactorDatabase
from repro.core.deployment import shared_nothing
from repro.durability.config import DurabilityConfig
from repro.formal.audit import certify_all, recording
from repro.migration.config import MigrationConfig
from repro.replication.config import ReplicationConfig
from repro.sim.rng import RngFactory
from repro.telemetry.config import TelemetryConfig, full_tracing
from repro.workloads import smallbank as sb
from repro.workloads import ycsb
from repro.workloads.tpcc import loader as tpcc_loader
from repro.workloads.tpcc.schema import TpccScale
from repro.workloads.tpcc.workload import TpccWorkload

EPISODE_SCHEMA = "chaos-episode-v1"

WORKLOADS = ("smallbank", "ycsb", "tpcc")

#: The deliberate bug toggles an episode can arm (name → what breaks).
BUG_TOGGLES = ("ack_before_flush", "drop_shipped_record",
               "drop_parked_roots")


@dataclass(frozen=True)
class EpisodeConfig:
    """Everything that determines an episode besides its schedule."""

    workload: str = "smallbank"
    cc_scheme: str = "occ"
    durability_mode: str = "none"       # none | sync | group | async
    replication_mode: str = "none"      # none | sync | async
    replicas: int = 0
    read_from_replicas: bool = False
    snapshot_reads: bool = False
    n_containers: int = 2
    n_txns: int = 40
    txn_gap_us: float = 25.0
    scale: int = 1
    seed: int = 1
    inject_bug: str | None = None

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(f"unknown workload {self.workload!r}")
        if self.inject_bug is not None and \
                self.inject_bug not in BUG_TOGGLES:
            raise ValueError(f"unknown bug toggle {self.inject_bug!r}")

    # -- derived -------------------------------------------------------

    @property
    def horizon_us(self) -> float:
        return self.n_txns * self.txn_gap_us

    def schedule_spec(self, min_actions: int = 2,
                      max_actions: int = 5) -> ScheduleSpec:
        return ScheduleSpec(
            n_containers=self.n_containers,
            horizon_us=self.horizon_us,
            replication=self.replication_mode != "none",
            durability=(self.durability_mode != "none"
                        or self.replication_mode != "none"),
            min_actions=min_actions,
            max_actions=max_actions,
        )

    def without_bug(self) -> "EpisodeConfig":
        return replace(self, inject_bug=None)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "cc_scheme": self.cc_scheme,
            "durability_mode": self.durability_mode,
            "replication_mode": self.replication_mode,
            "replicas": self.replicas,
            "read_from_replicas": self.read_from_replicas,
            "snapshot_reads": self.snapshot_reads,
            "n_containers": self.n_containers,
            "n_txns": self.n_txns,
            "txn_gap_us": self.txn_gap_us,
            "scale": self.scale,
            "seed": self.seed,
            "inject_bug": self.inject_bug,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "EpisodeConfig":
        return EpisodeConfig(**data)


@dataclass
class EpisodeResult:
    """The full deterministic record of one episode."""

    ok: bool
    failures: list[dict[str, Any]]
    submitted: int
    committed: int
    aborted: int
    sim_time_us: float
    digest: str
    injection: dict[str, Any]
    certificates: dict[str, Any]
    trace_json: str | None = field(default=None, repr=False)

    @property
    def failure_kinds(self) -> list[str]:
        return sorted({f["kind"] for f in self.failures})

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": EPISODE_SCHEMA,
            "ok": self.ok,
            "failures": self.failures,
            "submitted": self.submitted,
            "committed": self.committed,
            "aborted": self.aborted,
            "sim_time_us": self.sim_time_us,
            "digest": self.digest,
            "injection": self.injection,
            "certificates": self.certificates,
        }


# ----------------------------------------------------------------------
# Deployment / workload assembly
# ----------------------------------------------------------------------

def _build_deployment(config: EpisodeConfig, full_trace: bool):
    replication = None
    if config.replication_mode != "none":
        replication = ReplicationConfig(
            replicas_per_container=max(1, config.replicas),
            mode=config.replication_mode,
            read_from_replicas=config.read_from_replicas,
        )
    durability = None
    if config.durability_mode != "none":
        durability = DurabilityConfig(enabled=True,
                                      mode=config.durability_mode)
    deployment = shared_nothing(
        config.n_containers,
        cc_scheme=config.cc_scheme,
        snapshot_reads=config.snapshot_reads,
        replication=replication,
        migration=MigrationConfig(),
        durability=durability,
    )
    # Pin telemetry explicitly: episode results must not depend on the
    # REPRO_* environment the process happens to run under.
    deployment.telemetry = full_tracing() if full_trace else \
        TelemetryConfig(enabled=True, trace_sample=0,
                        trace_system=False)
    return deployment


class _Worker:
    """The minimal worker shim the workload generators consume."""

    __slots__ = ("rng", "issued")

    def __init__(self, rng) -> None:
        self.rng = rng
        self.issued = 0


def _workload_plan(config: EpisodeConfig):
    """Declarations, a loader, and the deterministic list of
    transaction specs an episode submits."""
    rngs = RngFactory(config.seed)
    if config.workload == "smallbank":
        n_customers = 8 * config.scale
        declarations = sb.declarations(n_customers)
        workload = sb.SmallbankWorkload(n_customers,
                                        hotspot_fraction=0.25)
        worker = _Worker(rngs.stream("chaos/driver"))

        def load(database: ReactorDatabase) -> None:
            sb.load(database, n_customers)

        def spec_at(index: int):
            worker.issued += 1
            return workload.next_txn(worker)

    elif config.workload == "ycsb":
        n_keys = 16 * config.scale
        declarations = [(ycsb.key_name(i), ycsb.KEY_REACTOR)
                        for i in range(n_keys)]
        workload = ycsb.YcsbWorkload(
            scale_factor=1, theta=0.6,
            n_containers=config.n_containers, keys_per_txn=4,
            seed=config.seed, n_keys=n_keys, read_fraction=0.25)
        worker = _Worker(rngs.stream("chaos/driver"))

        def load(database: ReactorDatabase) -> None:
            for name, __ in declarations:
                database.load(name, "kv",
                              [{"key": name, "value": "v"}])

        def spec_at(index: int):
            spec = workload.next_txn(worker)
            worker.issued += 1
            return spec

    else:  # tpcc
        n_warehouses = config.n_containers
        scale = TpccScale(districts=2, customers_per_district=8,
                          items=24, orders_per_district=4,
                          last_names=5)
        declarations = tpcc_loader.declarations(n_warehouses)
        workload = TpccWorkload(n_warehouses=n_warehouses, scale=scale,
                                seed=config.seed)
        factories = [workload.factory_for(w)
                     for w in range(n_warehouses)]
        workers = [_Worker(rngs.stream(f"chaos/driver/{w}"))
                   for w in range(n_warehouses)]

        def load(database: ReactorDatabase) -> None:
            tpcc_loader.load(database, n_warehouses, scale,
                             seed=config.seed)

        def spec_at(index: int):
            w = index % n_warehouses
            workers[w].issued += 1
            return factories[w](workers[w])

    return declarations, load, spec_at


def _arm_bug(database: ReactorDatabase, bug: str | None) -> None:
    if bug is None:
        return
    if bug == "ack_before_flush" and database.durability is not None:
        database.durability.chaos_ack_bypass = True
    elif bug == "drop_shipped_record" and \
            database.replication is not None:
        database.replication.chaos_drop_ship = True
    elif bug == "drop_parked_roots" and database.migration is not None:
        database.migration.chaos_drop_parked = True


def _state_digest(database: ReactorDatabase) -> str:
    """A stable fingerprint of every live table (reproducibility
    checks compare digests instead of full dumps)."""
    payload: list[Any] = []
    for name in sorted(database.reactor_names()):
        reactor = database.reactor(name)
        for table in reactor.catalog:
            rows = sorted(
                (sorted(row.items()) for row in table.rows()),
                key=repr)
            payload.append((name, table.name, rows))
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# The episode runner
# ----------------------------------------------------------------------

def run_episode(config: EpisodeConfig, schedule: FaultSchedule,
                full_trace: bool = False) -> EpisodeResult:
    """Run one episode to quiescence and certify it."""
    declarations, load, spec_at = _workload_plan(config)
    deployment = _build_deployment(config, full_trace)
    database = ReactorDatabase(deployment, declarations)
    _arm_bug(database, config.inject_bug)
    load(database)

    audit_events = None
    if config.snapshot_reads or config.cc_scheme == "mvocc":
        audit_events = database.enable_snapshot_audit()

    outcomes = {"submitted": 0, "completed": 0, "committed": 0,
                "aborted": 0}

    def on_done(root, committed, reason, result) -> None:
        outcomes["completed"] += 1
        outcomes["committed" if committed else "aborted"] += 1

    def submit(spec) -> None:
        reactor, proc, args = spec
        outcomes["submitted"] += 1
        database.submit(reactor, proc, *args, on_done=on_done)

    injector = FaultInjector(database, declarations)
    with recording(database) as recorder:
        for index in range(config.n_txns):
            database.scheduler.at((index + 1) * config.txn_gap_us,
                                  submit, spec_at(index))
        injector.arm(schedule)
        database.scheduler.run()
        certificates = certify_all(
            database, recorder=recorder, si_events=audit_events,
            crash_reports=[entry["report"]
                           for entry in injector.crash_reports])

    failures: list[dict[str, Any]] = list(certificates["failures"])
    if outcomes["completed"] != outcomes["submitted"]:
        failures.append({
            "kind": "liveness",
            "detail": (f"{outcomes['submitted']} roots submitted, "
                       f"{outcomes['completed']} reported an outcome"),
        })

    trace_json = None
    if full_trace:
        trace_json = database.telemetry.export_chrome_json()

    return EpisodeResult(
        ok=not failures,
        failures=failures,
        submitted=outcomes["submitted"],
        committed=outcomes["committed"],
        aborted=outcomes["aborted"],
        sim_time_us=round(database.scheduler.now, 3),
        digest=_state_digest(database),
        injection=injector.summary(),
        certificates=certificates,
        trace_json=trace_json,
    )
