"""Resolving fault actions against a live episode.

A :class:`FaultInjector` arms every action of a schedule as a scheduler
event.  At fire time the action's *parameters* (drawn blind at
generation time) are resolved against live state — container indices
wrap, migration targets come from
:meth:`~repro.migration.manager.MigrationManager.movable_reactors` —
and an action whose preconditions no longer hold (no replica left to
promote, nothing movable, no durability manager) is **skipped**, not
errored: a schedule stays replayable verbatim even after shrinking
removed the actions that set its preconditions up.  Every applied and
skipped action is counted per kind, deterministically, so two runs of
one episode agree on the full injection record, not just the outcome.

``crash_image`` is special: it takes a
:meth:`~repro.durability.recovery.DurabilityManager.crash` image of the
running database, recovers a *fresh* database from the image into a
plain deployment, certifies the pair with
:func:`~repro.formal.audit.certify_crash_recovery`, and stores the
report for the episode's verdict — a full kill-at-arbitrary-epoch
recovery drill in the middle of the workload.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.chaos.schedule import FaultAction, FaultSchedule
from repro.core.deployment import DeploymentConfig
from repro.durability.config import DurabilityConfig
from repro.durability.recovery import recover_from_image
from repro.formal.audit import certify_crash_recovery


class FaultInjector:
    """Arms a fault schedule on a database and records what happened."""

    def __init__(self, database: Any,
                 declarations: Sequence[tuple[str, Any]]) -> None:
        self.database = database
        self.declarations = declarations
        self.applied: dict[str, int] = {}
        self.skipped: dict[str, int] = {}
        #: ``certify_crash_recovery`` reports from ``crash_image``
        #: actions, in fire order.
        self.crash_reports: list[dict[str, Any]] = []

    # ------------------------------------------------------------------

    def arm(self, schedule: FaultSchedule) -> None:
        """Schedule every action of ``schedule`` in virtual time."""
        for action in schedule.actions:
            self.database.scheduler.at(action.at_us, self._fire, action)

    def _note(self, action: FaultAction, applied: bool) -> None:
        book = self.applied if applied else self.skipped
        book[action.kind] = book.get(action.kind, 0) + 1

    def _fire(self, action: FaultAction) -> None:
        handler = getattr(self, f"_do_{action.kind}", None)
        if handler is None:
            self._note(action, False)
            return
        self._note(action, bool(handler(action)))

    # -- handlers (return True when the fault actually applied) --------

    def _do_crash_promote(self, action: FaultAction) -> bool:
        replication = self.database.replication
        if replication is None:
            return False
        cid = action.param("container", 0) % len(self.database.containers)
        if self.database.containers[cid].failed:
            return False
        if not replication.replicas.get(cid):
            return False
        replication.kill_and_promote(cid)
        return True

    def _do_migrate(self, action: FaultAction) -> bool:
        database = self.database
        migration = database.migration
        if migration is None or len(database.containers) < 2:
            return False
        movable = migration.movable_reactors()
        if not movable:
            return False
        name = movable[action.param("reactor_index", 0) % len(movable)]
        n = len(database.containers)
        dst = action.param("dst", 0) % n
        src = database.reactor(name).container.container_id
        for __ in range(n):
            if dst != src and not database.containers[dst].failed:
                break
            dst = (dst + 1) % n
        else:
            return False
        database.migrate(name, dst)
        return True

    def _do_rebalance(self, action: FaultAction) -> bool:
        if self.database.migration is None or \
                len(self.database.containers) < 2:
            return False
        self.database.rebalance()
        return True

    def _do_crash_image(self, action: FaultAction) -> bool:
        durability = self.database.durability
        if durability is None:
            return False
        image = durability.crash()
        recovered = recover_from_image(
            self._recovery_deployment(durability.mode),
            self.declarations, image)
        report = certify_crash_recovery(self.database, image, recovered)
        self.crash_reports.append({
            "at_us": self.database.scheduler.now,
            "report": report,
        })
        return True

    def _recovery_deployment(self, mode: str) -> DeploymentConfig:
        # Recovery targets a plain deployment of the same shape: state
        # is logical, replication/migration of the crashed primary are
        # not part of what an image restores.
        from repro.core.deployment import shared_nothing
        deployment = shared_nothing(
            len(self.database.containers),
            cc_scheme=self.database.deployment.cc_scheme,
            snapshot_reads=self.database.deployment.snapshot_reads,
            durability=DurabilityConfig(enabled=True, mode=mode))
        return deployment

    def _do_slow_container(self, action: FaultAction) -> bool:
        database = self.database
        cid = action.param("container", 0) % len(database.containers)
        container = database.containers[cid]
        if container.failed:
            return False
        scaled = database.costs.container_scaled(
            float(action.param("factor", 2.0)))
        for executor in container.executors:
            executor.costs = scaled
        if database.durability is not None:
            flusher = database.durability.flushers.get(cid)
            if flusher is not None:
                flusher.costs = scaled
        return True

    def _do_lag_spike(self, action: FaultAction) -> bool:
        replication = self.database.replication
        if replication is None:
            return False
        cid = action.param("container", 0) % len(self.database.containers)
        if not replication.replicas.get(cid):
            return False
        replication.inject_lag(cid, float(action.param("extra_us",
                                                       500.0)))
        return True

    def _do_kick_flush(self, action: FaultAction) -> bool:
        durability = self.database.durability
        if durability is None:
            return False
        cid = action.param("container", 0) % len(self.database.containers)
        if cid not in durability.flushers:
            return False
        durability.kick_flush(cid)
        return True

    # ------------------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        return {
            "applied": dict(sorted(self.applied.items())),
            "skipped": dict(sorted(self.skipped.items())),
        }
