"""Seeded fault schedules: the randomized-but-replayable adversary.

A :class:`FaultSchedule` is a list of :class:`FaultAction` entries —
``(at_us, kind, params)`` — injected at virtual-time points while an
episode's workload runs.  Schedules are *pure data*: generation is a
deterministic function of ``(seed, spec)``, serialization round-trips
exactly through JSON, and the shrinker manipulates schedules without
knowing what any action does.  That separation is what makes a failing
episode a three-line repro file instead of a flaky observation.

Fault kinds (resolved against live state by
:mod:`repro.chaos.injection`; an action whose preconditions fail at its
fire time is *skipped*, deterministically, and counted):

``crash_promote``
    Kill a primary container and promote its most advanced replica.
``migrate``
    Start an online migration of a currently-movable reactor.
``rebalance``
    One elastic load check (``ReactorDatabase.rebalance``).
``crash_image``
    Take a :meth:`DurabilityManager.crash` image mid-run, recover a
    fresh database from it, and certify the pair.
``slow_container``
    Asymmetric slowdown: rescale one container's local costs.
``lag_spike``
    Stall one container's replication ship channel.
``kick_flush``
    Force a container's open group-commit epoch down early.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.sim.rng import RngFactory

SCHEDULE_SCHEMA = "chaos-schedule-v1"

#: Every fault kind the injector understands.
FAULT_KINDS = (
    "crash_promote",
    "migrate",
    "rebalance",
    "crash_image",
    "slow_container",
    "lag_spike",
    "kick_flush",
)


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault: ``kind`` fires at virtual time ``at_us``."""

    at_us: float
    kind: str
    params: tuple[tuple[str, Any], ...] = ()

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def to_dict(self) -> dict[str, Any]:
        return {"at_us": self.at_us, "kind": self.kind,
                "params": dict(self.params)}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "FaultAction":
        return FaultAction(
            at_us=float(data["at_us"]),
            kind=str(data["kind"]),
            params=tuple(sorted(dict(data.get("params", {})).items())),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered fault schedule plus the seed that generated it.

    ``seed`` and ``horizon_us`` are provenance — replay and shrinking
    operate on the ``actions`` list alone.
    """

    seed: int
    horizon_us: float
    actions: tuple[FaultAction, ...] = field(default_factory=tuple)

    def replace_actions(self,
                        actions: list[FaultAction]) -> "FaultSchedule":
        return FaultSchedule(seed=self.seed,
                             horizon_us=self.horizon_us,
                             actions=tuple(actions))

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEDULE_SCHEMA,
            "seed": self.seed,
            "horizon_us": self.horizon_us,
            "actions": [action.to_dict() for action in self.actions],
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "FaultSchedule":
        return FaultSchedule(
            seed=int(data["seed"]),
            horizon_us=float(data["horizon_us"]),
            actions=tuple(FaultAction.from_dict(entry)
                          for entry in data.get("actions", [])),
        )


@dataclass(frozen=True)
class ScheduleSpec:
    """What the generator may draw: applicability flags derived from
    an episode's deployment, plus the action-count band."""

    n_containers: int
    horizon_us: float
    replication: bool = False
    durability: bool = False
    migration: bool = True
    min_actions: int = 2
    max_actions: int = 5


def _applicable_kinds(spec: ScheduleSpec) -> list[str]:
    kinds = ["slow_container"]
    if spec.migration and spec.n_containers >= 2:
        kinds += ["migrate", "rebalance"]
    if spec.replication:
        kinds += ["crash_promote", "lag_spike"]
    if spec.durability:
        kinds += ["crash_image", "kick_flush"]
    return kinds


def generate_schedule(seed: int, spec: ScheduleSpec) -> FaultSchedule:
    """Deterministically expand ``seed`` into a fault schedule.

    Same ``(seed, spec)`` → byte-identical schedule; different seeds →
    independent draws (named RNG streams, no global state).
    """
    rng = RngFactory(seed).stream("chaos/schedule")
    kinds = _applicable_kinds(spec)
    n_actions = rng.randint(spec.min_actions,
                            max(spec.min_actions, spec.max_actions))
    actions: list[FaultAction] = []
    for __ in range(n_actions):
        kind = kinds[rng.randrange(len(kinds))]
        # Fault points span warmup through the post-workload drain
        # window (late faults catch in-flight commit/ack races).
        at_us = round(rng.uniform(0.05, 1.1) * spec.horizon_us, 3)
        params: dict[str, Any] = {}
        if kind in ("crash_promote", "slow_container", "lag_spike",
                    "kick_flush"):
            params["container"] = rng.randrange(spec.n_containers)
        if kind == "migrate":
            params["reactor_index"] = rng.randrange(64)
            params["dst"] = rng.randrange(spec.n_containers)
        if kind == "slow_container":
            params["factor"] = round(rng.uniform(1.5, 4.0), 3)
        if kind == "lag_spike":
            params["extra_us"] = round(rng.uniform(100.0, 2000.0), 3)
        actions.append(FaultAction(
            at_us=at_us, kind=kind,
            params=tuple(sorted(params.items()))))
    actions.sort(key=lambda action: (action.at_us, action.kind))
    return FaultSchedule(seed=seed, horizon_us=spec.horizon_us,
                         actions=tuple(actions))
