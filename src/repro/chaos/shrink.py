"""Delta-debugging a failing fault schedule down to a minimal repro.

Classic ddmin over the action list — try dropping chunks at shrinking
granularity while the failure still reproduces — followed by a retiming
pass that snaps the surviving actions' fire times to coarse values
(whole microseconds, then multiples of the workload gap), which makes
the committed repro files humanly readable.  The predicate is opaque
(usually "re-run the episode, same failure kinds"), so the shrinker
works for any failure the campaign can observe; a run budget caps the
episode count because each probe is a full simulation.

The output is 1-minimal with respect to action removal when the budget
allowed a complete final sweep: removing any single remaining action
makes the failure vanish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.chaos.schedule import FaultAction, FaultSchedule

Predicate = Callable[[FaultSchedule], bool]


@dataclass
class ShrinkResult:
    schedule: FaultSchedule
    episodes_run: int
    minimal: bool  # True when the final 1-minimality sweep completed


def _snap_candidates(at_us: float, gap_us: float) -> list[float]:
    out = []
    for candidate in (round(at_us / gap_us) * gap_us,
                      float(round(at_us))):
        if candidate > 0 and candidate != at_us and candidate not in out:
            out.append(candidate)
    return out


def shrink_schedule(schedule: FaultSchedule, reproduces: Predicate,
                    max_episodes: int = 80,
                    snap_gap_us: float = 25.0) -> ShrinkResult:
    """Minimize ``schedule`` while ``reproduces(candidate)`` holds.

    ``reproduces`` must be True for ``schedule`` itself (the caller
    observed the failure); it is *not* re-checked here.
    """
    budget = {"left": max_episodes}

    def probe(actions: Sequence[FaultAction]) -> bool:
        if budget["left"] <= 0:
            return False
        budget["left"] -= 1
        return reproduces(schedule.replace_actions(list(actions)))

    actions = list(schedule.actions)

    # -- ddmin over the action list ------------------------------------
    granularity = 2
    while len(actions) >= 2 and budget["left"] > 0:
        chunk = max(1, len(actions) // granularity)
        reduced = False
        start = 0
        while start < len(actions) and budget["left"] > 0:
            candidate = actions[:start] + actions[start + chunk:]
            if probe(candidate):
                actions = candidate
                reduced = True
                # Same start now points at the next chunk.
            else:
                start += chunk
        if reduced:
            granularity = max(granularity - 1, 2)
        elif chunk == 1:
            break
        else:
            granularity = min(granularity * 2, len(actions))
    if len(actions) == 1 and budget["left"] > 0 and probe([]):
        actions = []

    # -- retime the survivors ------------------------------------------
    for index in range(len(actions)):
        for at_us in _snap_candidates(actions[index].at_us,
                                      snap_gap_us):
            if budget["left"] <= 0:
                break
            candidate = list(actions)
            candidate[index] = FaultAction(
                at_us=at_us, kind=actions[index].kind,
                params=actions[index].params)
            if probe(candidate):
                actions = candidate
                break

    # -- certify 1-minimality (drop any single action → no repro) ------
    minimal = budget["left"] >= len(actions)
    if minimal:
        for index in range(len(actions)):
            if probe(actions[:index] + actions[index + 1:]):
                # A single drop still reproduces: take it and give up
                # on certifying minimality within this budget.
                actions = actions[:index] + actions[index + 1:]
                minimal = False
                break

    return ShrinkResult(
        schedule=schedule.replace_actions(actions),
        episodes_run=max_episodes - budget["left"],
        minimal=minimal,
    )


def make_repro(name: str, config: Any, schedule: FaultSchedule,
               failure_kinds: list[str]) -> dict[str, Any]:
    """The committed repro-file payload
    (``tests/test_chaos_regressions.py`` replays these forever)."""
    return {
        "schema": "chaos-repro-v1",
        "name": name,
        "config": config.to_dict(),
        "schedule": schedule.to_dict(),
        "expected_ok": False,
        "failure_kinds": sorted(failure_kinds),
    }
