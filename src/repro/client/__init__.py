"""The client package: one submission surface, embedded or remote.

:class:`Client` is the protocol; :class:`LocalClient` wraps
``db.submit`` in-process (zero overhead, the embedded path stays
public), :class:`TcpClient` speaks the :mod:`repro.serving` wire
protocol to a served database.  :func:`as_client` normalizes a bare
:class:`~repro.core.database.ReactorDatabase` into a
:class:`LocalClient`, which is how the bench harness and experiments
accept either.
"""

from repro.client.base import (
    Client,
    Outcome,
    Spec,
    Submission,
    as_client,
)
from repro.client.local import LocalClient
from repro.client.tcp import ClientSession, TcpClient

__all__ = [
    "Client",
    "ClientSession",
    "LocalClient",
    "Outcome",
    "Spec",
    "Submission",
    "TcpClient",
    "as_client",
]
