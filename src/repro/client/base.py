"""The unified submission surface: one ``Client`` protocol, two paths.

Every way of getting a transaction into the system goes through the
same four calls::

    client.connect()
    handle = client.submit(reactor, proc, *args, read_only=...)
    handles = client.submit_many([(reactor, proc, args), ...])
    client.close()

and each submission returns a :class:`Submission` handle that resolves
to an :class:`Outcome`.  The two implementations are

* :class:`~repro.client.local.LocalClient` — wraps
  :meth:`ReactorDatabase.submit` directly (the zero-overhead embedded
  path; ``db.submit`` itself remains public for embedded use);
* :class:`~repro.client.tcp.TcpClient` — speaks the
  :mod:`repro.serving` wire protocol to a remote server, as a
  synchronous facade over asyncio.

Callers that accept "anything submittable" normalize with
:func:`as_client`, which wraps a bare :class:`ReactorDatabase` in a
:class:`LocalClient` and passes clients through.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Protocol, runtime_checkable

from repro.errors import TransactionAbort
from repro.serving.protocol import Overloaded

#: One submission spec, as the bench harness has always shaped it.
Spec = tuple[str, str, tuple]


class Outcome:
    """Terminal result of one submitted transaction."""

    __slots__ = ("committed", "reason", "result", "error_code",
                 "retry_after_us")

    def __init__(self, committed: bool, reason: str | None = None,
                 result: Any = None, error_code: str | None = None,
                 retry_after_us: float = 0.0) -> None:
        self.committed = committed
        self.reason = reason
        self.result = result
        #: Wire error code (``overloaded``, ``bad_request``, ...) when
        #: the server refused the request without running it.
        self.error_code = error_code
        self.retry_after_us = retry_after_us

    @property
    def shed(self) -> bool:
        """Was this request refused by admission control?"""
        return self.error_code == "overloaded"

    def unwrap(self) -> Any:
        """The result, or a typed raise on abort/shed."""
        if self.committed:
            return self.result
        if self.shed:
            raise Overloaded(self.reason or "overloaded",
                             retry_after_us=self.retry_after_us)
        raise TransactionAbort(self.reason or "aborted")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "committed" if self.committed else \
            f"failed({self.error_code or self.reason})"
        return f"Outcome({state})"


class Submission:
    """A pending submission; resolves exactly once to an Outcome.

    Thread-safe: wire clients resolve it from their reader thread
    while the caller blocks in :meth:`wait`.  ``on_done`` callbacks
    registered at submit time run on the resolving thread.
    """

    __slots__ = ("_outcome", "_event", "_callbacks")

    def __init__(self) -> None:
        self._outcome: Outcome | None = None
        self._event = threading.Event()
        self._callbacks: list[Callable[[Outcome], None]] = []

    @property
    def done(self) -> bool:
        return self._outcome is not None

    @property
    def outcome(self) -> Outcome | None:
        return self._outcome

    def add_done_callback(self,
                          fn: Callable[[Outcome], None]) -> None:
        if self._outcome is not None:
            fn(self._outcome)
            return
        self._callbacks.append(fn)

    def resolve(self, outcome: Outcome) -> None:
        if self._outcome is not None:
            return
        self._outcome = outcome
        self._event.set()
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(outcome)

    def wait(self, timeout: float | None = None) -> Outcome:
        """Block until resolved (wire clients) — the local client
        resolves during :meth:`LocalClient.drain` instead, so there
        waiting without draining raises rather than deadlocks."""
        if not self._event.wait(timeout):
            raise TimeoutError("submission did not complete in time")
        return self._outcome

    def result(self, timeout: float | None = None) -> Any:
        return self.wait(timeout).unwrap()


@runtime_checkable
class Client(Protocol):
    """The submission surface both paths implement."""

    def connect(self) -> "Client": ...

    def submit(self, reactor: str, proc: str, *args: Any,
               read_only: bool | None = None,
               on_done: Callable[[Outcome], None] | None = None
               ) -> Submission: ...

    def submit_many(self, specs: Iterable[Spec],
                    read_only: bool | None = None
                    ) -> list[Submission]: ...

    def close(self) -> None: ...


def as_client(target: Any) -> Any:
    """Normalize: a bare database becomes a LocalClient; clients (or
    anything already exposing ``submit``/``close``/``database``) pass
    through unchanged."""
    from repro.client.local import LocalClient
    from repro.core.database import ReactorDatabase

    if isinstance(target, ReactorDatabase):
        return LocalClient(target)
    return target


__all__ = ["Client", "Outcome", "Spec", "Submission", "as_client"]
