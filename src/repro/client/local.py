"""The embedded path: a Client wrapping ``db.submit`` directly.

Zero overhead by construction — :meth:`LocalClient.submit` is one
attribute hop in front of :meth:`ReactorDatabase.submit`, and the
closed-loop bench workers keep their historical behavior (and seeded
histories) when handed one.  The database's scheduler, costs, and
inspection surfaces stay reachable through the client, so harness code
written against a client works identically for embedded runs.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.client.base import Outcome, Spec, Submission
from repro.core.database import ReactorDatabase


class LocalClient:
    """In-process client: the zero-overhead embedded path."""

    __slots__ = ("database",)

    def __init__(self, database: ReactorDatabase) -> None:
        self.database = database

    # -- Client protocol ------------------------------------------------

    def connect(self) -> "LocalClient":
        """No wire to open; returns self for parity with TcpClient."""
        return self

    def submit(self, reactor: str, proc: str, *args: Any,
               read_only: bool | None = None,
               on_done: Callable[[Outcome], None] | None = None,
               **kwargs: Any) -> Submission:
        """Submit one root transaction; resolves when the scheduler
        drives it to completion (:meth:`drain`, or any ``run()``)."""
        submission = Submission()

        def _done(root: Any, committed: bool, reason: str | None,
                  result: Any) -> None:
            submission.resolve(Outcome(committed, reason=reason,
                                       result=result))

        if on_done is not None:
            submission.add_done_callback(on_done)
        self.database.submit(reactor, proc, *args,
                             read_only=read_only, on_done=_done,
                             **kwargs)
        return submission

    def submit_many(self, specs: Iterable[Spec],
                    read_only: bool | None = None
                    ) -> list[Submission]:
        return [self.submit(reactor, proc, *args, read_only=read_only)
                for reactor, proc, args in specs]

    def close(self) -> None:
        """The client borrows the database; closing the client does
        not close the database (embedded callers own its lifecycle)."""

    # -- embedded conveniences ------------------------------------------

    def call(self, reactor: str, proc: str, *args: Any,
             **kwargs: Any) -> Any:
        """Synchronous one-shot: submit, drive to completion, unwrap
        (exactly :meth:`ReactorDatabase.run`)."""
        return self.database.run(reactor, proc, *args, **kwargs)

    def drain(self) -> None:
        """Drive the scheduler until every submission resolves."""
        self.database.scheduler.run()

    # The scheduler/cost surfaces harness code reads through a client.

    @property
    def scheduler(self) -> Any:
        return self.database.scheduler

    @property
    def costs(self) -> Any:
        return self.database.costs


__all__ = ["LocalClient"]
