"""The wire path: a synchronous Client speaking the serving protocol.

A :class:`TcpClient` owns a background event-loop thread holding one
TCP connection.  ``connect()`` performs the JSON hello exchange and
switches to the negotiated codec; ``submit()`` is callable from any
thread, returns immediately with a :class:`Submission`, and the reader
task resolves submissions as responses arrive — in whatever order the
server completes them, matched by ``(session, request id)``.

Sessions are logical: :meth:`TcpClient.session` mints a new session id
multiplexed over the same connection; a session's requests carry its
id and nothing else distinguishes them on the wire.  A server shed
resolves the submission with an ``overloaded`` outcome whose
``retry_after_us`` carries the server's backoff hint —
``Submission.result()`` raises the typed
:class:`~repro.serving.protocol.Overloaded` for it.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Callable, Iterable

from repro.client.base import Outcome, Spec, Submission
from repro.serving import protocol


class TcpClient:
    """Client for a served database (see module docstring)."""

    def __init__(self, host: str, port: int,
                 codecs: tuple[str, ...] | None = None,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._offered = codecs or protocol.available_codecs()
        #: Negotiated after connect().
        self.codec: str | None = None
        self.protocol_version: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._ready = threading.Event()
        self._connect_error: BaseException | None = None
        self._lock = threading.Lock()
        self._next_request = 0
        self._next_session = 1
        self._pending: dict[tuple[int, int], Submission] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Client protocol
    # ------------------------------------------------------------------

    def connect(self) -> "TcpClient":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-tcp-client", daemon=True)
        self._thread.start()
        if not self._ready.wait(self.timeout):
            raise ConnectionError(
                f"connect to {self.host}:{self.port} timed out")
        if self._connect_error is not None:
            raise self._connect_error
        return self

    def submit(self, reactor: str, proc: str, *args: Any,
               read_only: bool | None = None,
               on_done: Callable[[Outcome], None] | None = None,
               session: int = 0) -> Submission:
        if self._writer is None:
            raise ConnectionError("client is not connected")
        submission = Submission()
        if on_done is not None:
            submission.add_done_callback(on_done)
        with self._lock:
            if self._closed:
                raise ConnectionError("client is closed")
            self._next_request += 1
            request_id = self._next_request
            self._pending[(session, request_id)] = submission
        frame = protocol.encode_frame(
            protocol.request(request_id, session, reactor, proc,
                             tuple(args), read_only=read_only),
            self.codec)
        self._loop.call_soon_threadsafe(self._write, frame)
        return submission

    def submit_many(self, specs: Iterable[Spec],
                    read_only: bool | None = None,
                    session: int = 0) -> list[Submission]:
        return [self.submit(reactor, proc, *args,
                            read_only=read_only, session=session)
                for reactor, proc, args in specs]

    def call(self, reactor: str, proc: str, *args: Any,
             read_only: bool | None = None, session: int = 0) -> Any:
        """Synchronous round trip: submit, wait, unwrap."""
        return self.submit(reactor, proc, *args, read_only=read_only,
                           session=session).result(self.timeout)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        loop, thread = self._loop, self._thread
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._shutdown)
        if thread is not None:
            thread.join(timeout=self.timeout)

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    def session(self) -> "ClientSession":
        """A new logical session multiplexed over this connection."""
        with self._lock:
            session_id = self._next_session
            self._next_session += 1
        return ClientSession(self, session_id)

    # ------------------------------------------------------------------
    # Event-loop internals
    # ------------------------------------------------------------------

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            reader, writer = await asyncio.open_connection(
                self.host, self.port)
            self._writer = writer
            writer.write(protocol.encode_frame(
                protocol.hello(codecs=self._offered), "json"))
            await writer.drain()
            decoder = protocol.FrameDecoder("json")
            opener = None
            while opener is None:
                data = await reader.read(65536)
                if not data:
                    raise ConnectionError(
                        "server closed during handshake")
                messages = decoder.feed(data)
                if messages:
                    opener = messages[0]
            if opener.get("type") == "hello_error":
                raise protocol.WireProtocolError(
                    f"negotiation failed: {opener.get('detail')}")
            if opener.get("type") != "hello_ok":
                raise protocol.WireProtocolError(
                    f"expected hello_ok, got {opener.get('type')!r}")
            self.codec = opener["codec"]
            self.protocol_version = opener["version"]
        except BaseException as error:  # noqa: BLE001
            self._connect_error = error
            self._ready.set()
            return
        self._ready.set()
        # Any bytes behind the server's hello_ok already belong to the
        # negotiated stream.
        stream_decoder = protocol.FrameDecoder(self.codec)
        leftover = bytes(decoder._buffer)
        try:
            if leftover:
                for message in stream_decoder.feed(leftover):
                    self._dispatch(message)
            while True:
                data = await reader.read(65536)
                if not data:
                    stream_decoder.check_eof()
                    break
                for message in stream_decoder.feed(data):
                    self._dispatch(message)
        except (ConnectionError, protocol.WireProtocolError) as error:
            self._fail_pending(str(error))
        else:
            self._fail_pending("connection closed by server")
        finally:
            writer.close()

    def _write(self, frame: bytes) -> None:
        writer = self._writer
        if writer is not None and not writer.is_closing():
            writer.write(frame)

    def _shutdown(self) -> None:
        writer = self._writer
        if writer is not None and not writer.is_closing():
            try:
                writer.write(protocol.encode_frame(
                    protocol.goodbye(), self.codec or "json"))
            except protocol.WireProtocolError:  # pragma: no cover
                pass
            writer.close()

    def _dispatch(self, message: Any) -> None:
        if not isinstance(message, dict):
            return
        mtype = message.get("type")
        if mtype == "response":
            outcome = Outcome(
                bool(message.get("committed")),
                reason=message.get("reason"),
                result=message.get("result"))
        elif mtype == "error":
            outcome = Outcome(
                False,
                reason=message.get("detail"),
                error_code=message.get("code"),
                retry_after_us=float(
                    message.get("retry_after_us") or 0.0))
        else:
            return
        key = (message.get("session"), message.get("id"))
        with self._lock:
            submission = self._pending.pop(key, None)
        if submission is not None:
            submission.resolve(outcome)

    def _fail_pending(self, reason: str) -> None:
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for submission in pending:
            submission.resolve(Outcome(False, reason=reason,
                                       error_code="connection"))


class ClientSession:
    """One logical session: the same client, a fixed session id."""

    __slots__ = ("client", "session_id")

    def __init__(self, client: TcpClient, session_id: int) -> None:
        self.client = client
        self.session_id = session_id

    def submit(self, reactor: str, proc: str, *args: Any,
               read_only: bool | None = None,
               on_done: Callable[[Outcome], None] | None = None
               ) -> Submission:
        return self.client.submit(reactor, proc, *args,
                                  read_only=read_only, on_done=on_done,
                                  session=self.session_id)

    def submit_many(self, specs: Iterable[Spec],
                    read_only: bool | None = None) -> list[Submission]:
        return self.client.submit_many(specs, read_only=read_only,
                                       session=self.session_id)

    def call(self, reactor: str, proc: str, *args: Any,
             read_only: bool | None = None) -> Any:
        return self.client.call(reactor, proc, *args,
                                read_only=read_only,
                                session=self.session_id)


__all__ = ["ClientSession", "TcpClient"]
