"""Concurrency control: pluggable schemes, epochs/TIDs, and 2PC.

The scheme a database runs under is a deployment-time choice
(``DeploymentConfig.cc_scheme``): Silo-style OCC
(:mod:`repro.concurrency.occ`), multi-version OCC with snapshot-
isolated read-only roots (:mod:`repro.concurrency.mvcc`), two-phase
locking with NO_WAIT or WAIT_DIE conflict resolution
(:mod:`repro.concurrency.locking`), or the explicit no-CC passthrough
(:class:`~repro.concurrency.base.PassthroughCC`).  All schemes
implement the :class:`~repro.concurrency.base.ConcurrencyControl`
protocol; transactions that span containers commit through
:class:`~repro.concurrency.coordinator.TwoPhaseCommit` regardless of
scheme.  Correctness rests on Theorem 2.7 of the paper: a serializable
scheduler for the classic transactional model implements one for the
reactor model (see :mod:`repro.formal` for the executable
formalization).

Public exports: the scheme protocol (:class:`ConcurrencyControl`,
:class:`CCSession`, :class:`CCStats`, :class:`WriteIntent`,
:class:`ScanResult`), the registry (``register_cc_scheme`` /
``create_cc_scheme`` / ``cc_scheme_names`` /
:data:`BUILTIN_CC_SCHEMES`), the explicit no-CC
:class:`PassthroughCC`, and the cross-container coordinator
(:class:`TwoPhaseCommit`, :class:`CommitOutcome`).
"""

from repro.concurrency.base import (
    BUILTIN_CC_SCHEMES,
    CCSession,
    CCStats,
    ConcurrencyControl,
    PassthroughCC,
    ScanResult,
    WriteIntent,
    cc_scheme_names,
    create_cc_scheme,
    register_cc_scheme,
)
from repro.concurrency.coordinator import CommitOutcome, TwoPhaseCommit
from repro.concurrency.locking import (
    LockingCC,
    LockingSession,
    LockManager,
)
from repro.concurrency.mvcc import MVConcurrencyManager, SnapshotSession
from repro.concurrency.occ import ConcurrencyManager, OCCSession
from repro.concurrency.tid import (
    EPOCH_PERIOD_US,
    EpochManager,
    TidGenerator,
    make_tid,
    tid_epoch,
    tid_seq,
)

__all__ = [
    "BUILTIN_CC_SCHEMES",
    "CCSession",
    "CCStats",
    "ConcurrencyControl",
    "ConcurrencyManager",
    "MVConcurrencyManager",
    "OCCSession",
    "SnapshotSession",
    "PassthroughCC",
    "LockingCC",
    "LockingSession",
    "LockManager",
    "ScanResult",
    "WriteIntent",
    "TwoPhaseCommit",
    "CommitOutcome",
    "EpochManager",
    "TidGenerator",
    "cc_scheme_names",
    "create_cc_scheme",
    "register_cc_scheme",
    "make_tid",
    "tid_epoch",
    "tid_seq",
    "EPOCH_PERIOD_US",
]
