"""Concurrency control: Silo-style OCC, epochs/TIDs, and 2PC.

Single-container transactions validate with the container's
:class:`~repro.concurrency.occ.ConcurrencyManager`; transactions that
span containers commit through
:class:`~repro.concurrency.coordinator.TwoPhaseCommit`.  Correctness
rests on Theorem 2.7 of the paper: a serializable scheduler for the
classic transactional model implements one for the reactor model (see
:mod:`repro.formal` for the executable formalization).
"""

from repro.concurrency.coordinator import CommitOutcome, TwoPhaseCommit
from repro.concurrency.occ import (
    ConcurrencyManager,
    OCCSession,
    ScanResult,
    WriteIntent,
)
from repro.concurrency.tid import (
    EPOCH_PERIOD_US,
    EpochManager,
    TidGenerator,
    make_tid,
    tid_epoch,
    tid_seq,
)

__all__ = [
    "ConcurrencyManager",
    "OCCSession",
    "ScanResult",
    "WriteIntent",
    "TwoPhaseCommit",
    "CommitOutcome",
    "EpochManager",
    "TidGenerator",
    "make_tid",
    "tid_epoch",
    "tid_seq",
    "EPOCH_PERIOD_US",
]
