"""The pluggable concurrency-control (CC) abstraction.

Database architecture is a deployment-time choice (the paper's central
claim) — and so is the concurrency scheme.  This module defines the
protocol every scheme implements, the machinery they share, and the
registry that maps a ``cc_scheme`` deployment string to a per-container
manager:

* :class:`CCSession` — the transactional record manager for one (root
  transaction, container) pair.  It owns the read-your-writes overlay:
  reads/scans/inserts/updates/deletes of reactor procedures flow
  through it, writes are buffered as :class:`WriteIntent`\\ s until
  commit.  Schemes customize behaviour through three hooks:
  :meth:`CCSession._begin_op` (runs before every data operation),
  :meth:`CCSession._register_read` / :meth:`CCSession._register_node`
  (a committed record / index-or-table structure joined the read
  footprint) and :meth:`CCSession._set_intent` (a write joined the
  write set) — OCC records versions to validate later, 2PL acquires
  locks eagerly, passthrough does neither.

* :class:`ConcurrencyControl` — the per-container manager: owns the
  TID generator, the shared :class:`CCStats` counters and the optional
  redo log, and drives ``validate`` / ``install`` / ``abort``.  The
  write-installation phase is scheme-independent and lives here.

* :func:`register_cc_scheme` / :func:`create_cc_scheme` — the scheme
  registry.  Built-in schemes: ``"occ"`` (Silo-style optimistic,
  :mod:`repro.concurrency.occ`), ``"mvocc"`` (multi-version OCC:
  Silo-OCC writers plus abort-free snapshot-isolated read-only roots,
  :mod:`repro.concurrency.mvcc`), ``"2pl_nowait"`` and
  ``"2pl_waitdie"`` (two-phase locking,
  :mod:`repro.concurrency.locking`), and ``"none"``
  (:class:`PassthroughCC`, the explicit no-concurrency-control scheme
  that replaced the old ``cc_enabled`` bool).

Every data operation returns the number of records *examined* along
with its result, so the execution runtime can charge simulated CPU
proportional to real work done.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Callable, Iterable, Mapping

from repro.errors import (
    DeploymentError,
    DuplicateKeyError,
    QueryError,
    ReactorError,
    ReadOnlyViolation,
    RecordNotFound,
)
from repro.concurrency.tid import EpochManager, TidGenerator
from repro.relational.index import HashIndex, OrderedIndex
from repro.relational.predicate import ALWAYS, Predicate
from repro.relational.table import Table
from repro.storage.record import VersionedRecord

Row = dict[str, Any]

INSERT = "insert"
UPDATE = "update"
DELETE = "delete"

#: Lazily-cached :class:`repro.durability.wal.RedoEntry` (the import is
#: deferred — durability imports this module — but resolved once, not
#: once per installed write).
_RedoEntry: type | None = None


def make_redo_entry(intent: "WriteIntent", commit_tid: int) -> Any:
    """The redo-log record for one installed write intent.

    Shared by the per-session install path below and the epoch-batched
    engine in :mod:`repro.concurrency.batch` so both emit byte-identical
    log entries.  ``commit_tid`` is unused today (the log keys entries
    by TID at append time) but keeps the call shape stable.
    """
    global _RedoEntry
    entry_cls = _RedoEntry
    if entry_cls is None:
        from repro.durability.wal import RedoEntry
        entry_cls = _RedoEntry = RedoEntry
    new_value = intent.new_value
    return entry_cls(
        reactor=intent.table.owner or "",
        table=intent.table.name,
        kind=intent.kind,
        pk=intent.pk,
        row=dict(new_value) if new_value is not None else None,
    )


def _intent_order_key(intent: "WriteIntent") -> tuple[str, str]:
    """Deterministic global lock order for write intents.

    ``repr(pk)`` (not the raw tuple) keeps heterogeneous key types
    comparable *and* is what every committed history was produced
    under — changing it would reorder lock acquisition and break
    byte-identical replay.
    """
    return (intent.table.name, repr(intent.pk))


def require_hash_equality(index_name: str, low: tuple | None,
                          high: tuple | None) -> None:
    """The shared hash-index scan contract: equality only.

    One definition for every session kind (validated and snapshot), so
    a procedure's scans behave identically whichever session serves
    them.
    """
    if low is None or low != high:
        raise QueryError(
            f"hash index {index_name!r} supports equality only; "
            "pass low == high"
        )


class WriteIntent:
    """A buffered write: what to do to one primary key at commit."""

    __slots__ = ("kind", "table", "pk", "record", "new_value")

    def __init__(self, kind: str, table: Table, pk: tuple,
                 record: VersionedRecord | None,
                 new_value: Row | None) -> None:
        self.kind = kind
        self.table = table
        self.pk = pk
        self.record = record
        self.new_value = new_value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WriteIntent({self.kind}, {self.table.name}, {self.pk!r})"


class ScanResult:
    """Rows returned by a scan plus the number of records examined."""

    __slots__ = ("rows", "examined")

    def __init__(self, rows: list[Row], examined: int) -> None:
        self.rows = rows
        self.examined = examined

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


#: Sentinel ``out_order``: the scan's candidate walk already visits
#: records in result order (see :meth:`CCSession._collect_candidates`).
_CANDIDATE_ORDER = object()


@dataclass(slots=True)
class CCStats:
    """Shared per-container counters, one set per scheme instance.

    Counters record *events at the container where they occur*: a
    multi-container transaction that fails validation in one container
    counts one validation failure there and nothing in its siblings; a
    user abort spanning three containers counts once per container.
    """

    #: commit-time validations attempted (every scheme counts these).
    validations: int = 0
    #: OCC: stale read / locked read / phantom detected at validation.
    validation_failures: int = 0
    #: 2PL NO_WAIT: lock requests refused because of a conflict.
    lock_conflicts: int = 0
    #: 2PL WAIT_DIE: younger requesters that died instead of waiting.
    deadlock_avoidance: int = 0
    #: 2PL WAIT_DIE: younger holders wounded by an older requester.
    wounds: int = 0
    #: application-initiated aborts observed by this container.
    user_aborts: int = 0
    #: dynamic intra-transaction safety violations (Section 2.2.4).
    dangerous_structure_aborts: int = 0

    def merge(self, other: "CCStats") -> None:
        for spec in fields(self):
            setattr(self, spec.name,
                    getattr(self, spec.name) + getattr(other, spec.name))

    def abort_reasons(self) -> dict[str, int]:
        """Abort events keyed by reason (the per-reason breakdown)."""
        return {
            "validation_failure": self.validation_failures,
            "lock_conflict": self.lock_conflicts,
            "deadlock_avoidance": self.deadlock_avoidance,
            "wound": self.wounds,
            "user": self.user_aborts,
            "dangerous_structure": self.dangerous_structure_aborts,
        }


class CCSession:
    """Read/write sets of one root transaction within one container.

    The base class is a complete record manager (overlay semantics,
    scan paths, intent merging); concrete schemes subclass it and
    override the footprint hooks.  One session exists per (root
    transaction, container); its manager drives validation,
    installation and abort.
    """

    __slots__ = ("txn_id", "container_id", "owner", "_reads",
                 "_writes", "_node_checks", "_locked", "_placeholders",
                 "finished", "_sorted_intents")

    def __init__(self, txn_id: int, container_id: int) -> None:
        self.txn_id = txn_id
        self.container_id = container_id
        #: The owning RootTransaction when driven by the runtime
        #: (``None`` for manually driven sessions).  Schemes use it
        #: for transaction-wide state shared across that root's
        #: per-container sessions — e.g. 2PL wound propagation.
        self.owner: Any = None
        # record -> tid seen at first read (records hash by identity,
        # so this is the id(record)-keyed map without the id() calls)
        self._reads: dict[VersionedRecord, int] = {}
        # (id(table), pk) -> WriteIntent
        self._writes: dict[tuple[int, tuple], WriteIntent] = {}
        # (object with .structure_version, version seen) — phantom guard
        self._node_checks: dict[int, tuple[Any, int]] = {}
        self._locked: list[VersionedRecord] = []
        #: insert placeholders this session materialized in tables;
        #: reclaimed on abort unless revived by a committed insert.
        self._placeholders: list[tuple[Table, VersionedRecord]] = []
        self.finished = False
        #: Memoized :meth:`sorted_intents` result; validation and
        #: installation both walk the ordered write set, and the sort
        #: only has to happen once per commit.  Invalidated whenever
        #: the write set changes.
        self._sorted_intents: list[WriteIntent] | None = None

    # ------------------------------------------------------------------
    # Scheme hooks
    # ------------------------------------------------------------------

    def _begin_op(self) -> None:
        """Runs before every public data operation (2PL: wound check)."""

    def _check_writable(self) -> None:
        """Refuse writes of read-only root transactions.

        A root marked read-only may have been routed to a read replica
        (see :mod:`repro.replication`) or be running on a multi-version
        snapshot; its writes must abort rather than mutate state the
        reader was promised not to touch — and for symmetry the same
        contract holds when it ran on the primary.  Every mutation path
        (insert, update, delete) raises the same typed
        :class:`~repro.errors.ReadOnlyViolation`.
        """
        if self.owner is not None and \
                getattr(self.owner, "read_only", False):
            raise ReadOnlyViolation(
                f"read-only transaction {self.txn_id} attempted a "
                "write"
            )

    def _register_read(self, record: VersionedRecord) -> None:
        """A committed record joined the read footprint."""
        if record not in self._reads:
            self._reads[record] = record.tid

    def _register_node(self, node: Any) -> None:
        """A table/index structure joined the read footprint (scan or
        read-miss: guards against phantoms)."""
        key = id(node)
        if key not in self._node_checks:
            self._node_checks[key] = (node, node.structure_version)

    def _set_intent(self, intent: WriteIntent) -> None:
        """A write joined (or replaced an entry of) the write set."""
        self._writes[(id(intent.table), intent.pk)] = intent
        self._sorted_intents = None

    # ------------------------------------------------------------------
    # Bookkeeping helpers
    # ------------------------------------------------------------------

    @property
    def read_count(self) -> int:
        return len(self._reads)

    @property
    def validation_read_count(self) -> int:
        """Reads commit-time validation must walk.

        Equals :attr:`read_count` for validated sessions; snapshot
        sessions override it to 0 — their reads pin a version, nothing
        is re-checked at commit, so the commit path charges nothing
        per read.
        """
        return len(self._reads)

    @property
    def write_count(self) -> int:
        return len(self._writes)

    def _intent_for(self, table: Table, pk: tuple) -> WriteIntent | None:
        return self._writes.get((id(table), pk))

    def _drop_intent(self, table: Table, pk: tuple) -> None:
        self._writes.pop((id(table), pk), None)
        self._sorted_intents = None

    # ------------------------------------------------------------------
    # Transactional data operations (the record manager interface)
    # ------------------------------------------------------------------

    def read(self, table: Table, pk: tuple) -> tuple[Row | None, int]:
        """Point read by primary key; returns (row or None, examined)."""
        self._begin_op()
        intent = self._writes.get((id(table), pk))
        if intent is not None:
            if intent.kind == DELETE:
                return None, 1
            assert intent.new_value is not None
            return dict(intent.new_value), 1
        record = table.store.get(pk)
        if record is None:
            # A miss is also a predicate read: guard against a phantom
            # insert of this key by validating the table structure.
            self._register_node(table)
            return None, 1
        self._register_read(record)
        return dict(record.value), 1

    def multi_read(self, table: Table,
                   pks: Iterable[tuple]) -> tuple[list[Row | None], int]:
        """Vectorized point reads: one overlay/version walk per batch.

        Semantically identical to ``[read(table, pk) for pk in pks]``
        — same footprint registration (scheme hooks included), same
        overlay visibility, same examined count — but with method
        lookups hoisted out of the loop and results preallocated.
        Returns ``(rows aligned with pks, examined)``; missing keys
        yield ``None`` in place.
        """
        self._begin_op()
        pks = list(pks)
        out: list[Row | None] = [None] * len(pks)
        writes = self._writes
        table_id = id(table)
        recmap = table.store.record_map()
        get_record = table.store.get if recmap is None else recmap.get
        register_read = self._register_read
        # Footprint registration inlined when the scheme uses the base
        # implementation (OCC/MVCC); locking schemes hook per-read lock
        # acquisition into _register_read and keep the dispatch.
        reads = self._reads \
            if type(self)._register_read is CCSession._register_read \
            else None
        if writes:
            for i, pk in enumerate(pks):
                intent = writes.get((table_id, pk))
                if intent is not None:
                    if intent.kind != DELETE:
                        out[i] = dict(intent.new_value or {})
                    continue
                record = get_record(pk)
                if record is None or record.deleted:
                    self._register_node(table)
                elif reads is not None:
                    if record not in reads:
                        reads[record] = record.tid
                    out[i] = dict(record.value)
                else:
                    register_read(record)
                    out[i] = dict(record.value)
        else:
            for i, pk in enumerate(pks):
                record = get_record(pk)
                if record is None or record.deleted:
                    self._register_node(table)
                elif reads is not None:
                    if record not in reads:
                        reads[record] = record.tid
                    out[i] = dict(record.value)
                else:
                    register_read(record)
                    out[i] = dict(record.value)
        return out, len(pks)

    def insert(self, table: Table, row: Mapping[str, Any]) -> int:
        """Buffer an insert; duplicate keys visible to this transaction
        raise immediately (concurrent duplicates surface at commit)."""
        self._begin_op()
        self._check_writable()
        validated = table.schema.validate_row(row)
        pk = table.schema.primary_key_of(validated)
        intent = self._intent_for(table, pk)
        if intent is not None:
            if intent.kind == DELETE:
                # delete + insert collapses to an update of the record.
                self._set_intent(WriteIntent(
                    UPDATE, table, pk, intent.record, validated))
                return 1
            raise DuplicateKeyError(
                f"duplicate key {pk!r} in {table.name!r} (own write)"
            )
        if table.get_record(pk) is not None:
            raise DuplicateKeyError(
                f"duplicate key {pk!r} in {table.name!r}"
            )
        self._set_intent(WriteIntent(INSERT, table, pk, None, validated))
        return 1

    def update(self, table: Table, pk: tuple,
               assignments: Mapping[str, Any]) -> tuple[Row, int]:
        """Read-modify-write one row; returns (new image, examined).

        The read is inlined (copy-free intent merging): the overlay or
        committed image is copied exactly once into the new intent
        instead of read() copying it and the merge copying it again.
        The footprint registered is identical to read-then-write.
        """
        self._begin_op()
        self._check_writable()
        table.schema.validate_assignments(assignments)
        intent = self._writes.get((id(table), pk))
        if intent is not None:
            if intent.kind == DELETE:
                raise RecordNotFound(
                    f"update of missing key {pk!r} in {table.name!r}"
                )
            # Merge into the existing insert/update intent.
            assert intent.new_value is not None
            new_value = dict(intent.new_value)
            new_value.update(assignments)
            self._set_intent(WriteIntent(
                intent.kind, table, pk, intent.record, new_value))
            return new_value, 1
        record = table.get_record(pk)
        if record is None:
            # Same phantom guard a read miss registers.
            self._register_node(table)
            raise RecordNotFound(
                f"update of missing key {pk!r} in {table.name!r}"
            )
        self._register_read(record)
        new_value = dict(record.value)
        new_value.update(assignments)
        self._set_intent(WriteIntent(
            UPDATE, table, pk, record, new_value))
        return new_value, 1

    def delete(self, table: Table, pk: tuple) -> int:
        """Buffer a delete; returns records examined."""
        self._begin_op()
        self._check_writable()
        intent = self._intent_for(table, pk)
        if intent is not None:
            if intent.kind == INSERT:
                self._drop_intent(table, pk)
                return 1
            if intent.kind == DELETE:
                raise RecordNotFound(
                    f"delete of missing key {pk!r} in {table.name!r}"
                )
            self._set_intent(WriteIntent(
                DELETE, table, pk, intent.record, None))
            return 1
        record = table.get_record(pk)
        if record is None:
            self._register_node(table)
            raise RecordNotFound(
                f"delete of missing key {pk!r} in {table.name!r}"
            )
        self._register_read(record)
        self._set_intent(WriteIntent(DELETE, table, pk, record, None))
        return 1

    def scan(self, table: Table, predicate: Predicate = ALWAYS,
             index: str | None = None, low: tuple | None = None,
             high: tuple | None = None, reverse: bool = False,
             limit: int | None = None) -> ScanResult:
        """Predicate/range scan with write-set overlay.

        Every candidate examined joins the read footprint (conservative
        predicate-read protection); the index or table structure is
        guarded against phantom inserts/deletes (version check for OCC,
        structure lock for 2PL).
        """
        self._begin_op()
        candidates, sort_keys, examined, out_order = \
            self._collect_candidates(table, predicate, index, low, high)
        writes = self._writes
        register_read = self._register_read
        matches = predicate.matches
        # Footprint registration inlined when the scheme uses the base
        # implementation (OCC/MVCC); locking schemes hook per-read lock
        # acquisition into _register_read and keep the dispatch.
        reads = self._reads \
            if type(self)._register_read is CCSession._register_read \
            else None
        if not writes and out_order is not None:
            # The result order is already known without computing a
            # per-row sort key: committed images agree with their
            # index entries, so an ordered-index range's (key, pk)
            # entry order IS the sort order, and a full scan's
            # pk-sorted candidates are theirs.  Candidate order — and
            # with it the read footprint's registration order — is
            # untouched.
            if out_order is _CANDIDATE_ORDER:
                out = []
                append = out.append
                for record in candidates:
                    if reads is not None:
                        if record not in reads:
                            reads[record] = record.tid
                    else:
                        register_read(record)
                    image = dict(record.value)
                    if matches(image):
                        append(image)
            else:
                images: dict[tuple, Row] = {}
                for record in candidates:
                    if reads is not None:
                        if record not in reads:
                            reads[record] = record.tid
                    else:
                        register_read(record)
                    image = dict(record.value)
                    if matches(image):
                        images[record.key] = image
                out = [images[pk] for pk in out_order if pk in images]
            if reverse:
                out.reverse()
            if limit is not None:
                out = out[:limit]
            return ScanResult(out, examined)
        rows: list[tuple[Any, Row]] = []
        table_id = id(table)
        if writes:
            for record in candidates:
                intent = writes.get((table_id, record.key))
                if intent is not None:
                    if intent.kind == DELETE:
                        continue
                    image: Row | None = dict(intent.new_value or {})
                else:
                    register_read(record)
                    image = dict(record.value)
                if image is not None and matches(image):
                    rows.append((sort_keys(image, record.key), image))
            # Own inserts join the result set.
            for intent in list(writes.values()):
                if intent.table is table and intent.kind == INSERT:
                    image = dict(intent.new_value or {})
                    if matches(image) and self._in_range(
                            table, index, image, low, high):
                        rows.append((sort_keys(image, intent.pk), image))
                        examined += 1
        else:
            for record in candidates:
                register_read(record)
                image = dict(record.value)
                if matches(image):
                    rows.append((sort_keys(image, record.key), image))
        rows.sort(key=lambda pair: pair[0], reverse=reverse)
        out = [row for __, row in rows]
        if limit is not None:
            out = out[:limit]
        return ScanResult(out, examined)

    def _collect_candidates(self, table: Table, predicate: Predicate,
                            index: str | None, low: tuple | None,
                            high: tuple | None):
        """Pick an access path; returns ``(records, sort_key_fn,
        examined, out_order)``.

        ``out_order`` is the precomputed result order for the
        no-writes fast path: :data:`_CANDIDATE_ORDER` when the
        candidates already arrive in result order (full scans are
        pk-sorted), a pk list in result order (ordered-index ranges:
        the (key, pk)-sorted entry walk), or ``None`` when only the
        per-row sort keys can decide (hash buckets are unordered)."""
        if index is not None:
            idx = table.index(index)
            self._register_node(idx)
            if isinstance(idx, OrderedIndex):
                pks = list(idx.range(low, high))
                out_order = pks
            else:
                require_hash_equality(index, low, high)
                # Exact-key candidates share one index key, so the
                # pk-sorted record walk is already the result order.
                pks = list(idx.lookup(low))
                out_order = _CANDIDATE_ORDER
            records = table.records_for_pks(pks)
            columns = idx.spec.columns

            def sort_key(image: Row, pk: tuple):
                return (tuple(image.get(c) for c in columns), pk)

            return records, sort_key, len(records), out_order

        bindings = predicate.equality_bindings()
        for idx in table.indexes.values():
            if isinstance(idx, HashIndex) and all(
                    c in bindings for c in idx.spec.columns):
                self._register_node(idx)
                key = tuple(bindings[c] for c in idx.spec.columns)
                records = table.records_for_pks(idx.lookup(key))
                return records, (lambda image, pk: pk), len(records), \
                    _CANDIDATE_ORDER

        self._register_node(table)
        records = list(table.iter_records())
        return records, (lambda image, pk: pk), len(records), \
            _CANDIDATE_ORDER

    @staticmethod
    def _in_range(table: Table, index: str | None, image: Row,
                  low: tuple | None, high: tuple | None) -> bool:
        """Does an own-insert fall inside an explicit index range?"""
        if index is None:
            return True
        idx = table.index(index)
        key = idx.key_of(image)
        if low is not None and key[: len(low)] < low:
            return False
        if high is not None and key[: len(high)] > high:
            return False
        return True

    # ------------------------------------------------------------------
    # Validation / installation hooks (driven by the manager)
    # ------------------------------------------------------------------

    def sorted_intents(self) -> list[WriteIntent]:
        """Write intents in deterministic global lock order.

        Memoized: validation locks and installation both walk this
        list, and commit runs them back-to-back on an unchanged write
        set.  Any write-set mutation invalidates the cache.
        """
        cached = self._sorted_intents
        if cached is None:
            cached = self._sorted_intents = sorted(
                self._writes.values(), key=_intent_order_key)
        return cached

    def read_entries(self) -> Iterable[tuple[VersionedRecord, int]]:
        return self._reads.items()

    def node_entries(self) -> Iterable[tuple[Any, int]]:
        return self._node_checks.values()

    def remember_lock(self, record: VersionedRecord) -> None:
        self._locked.append(record)

    def remember_placeholder(self, table: Table,
                             record: VersionedRecord) -> None:
        self._placeholders.append((table, record))

    def reclaim_placeholders(self) -> None:
        """Remove placeholders this session created that were never
        revived by a committed insert, so aborted (or cancelled)
        inserts don't permanently grow ``Table._records``.  A
        placeholder another transaction still holds a lock on is left
        in place — that transaction's install will revive it."""
        for table, record in self._placeholders:
            if not self._placeholder_in_use(record):
                table.discard_placeholder(record)
        self._placeholders.clear()

    def _placeholder_in_use(self, record: VersionedRecord) -> bool:
        """Does any *other* transaction still reference this
        placeholder?  (Called after this session released its locks.)"""
        return record.locked_by is not None

    def release_locks(self) -> None:
        for record in self._locked:
            record.unlock(self.txn_id)
        self._locked.clear()

    def max_observed_tid(self) -> int:
        best = max(self._reads.values(), default=0)
        for intent in self._writes.values():
            record = intent.record
            if record is not None and record.tid > best:
                best = record.tid
        return best


class ConcurrencyControl:
    """Per-container CC engine: validation, installation, TIDs.

    Subclasses implement :meth:`begin_session` and :meth:`validate`;
    installation and abort are scheme-independent (buffered intents are
    applied with the commit TID, redo-logged when durability is on, and
    the session's locks — whatever the scheme means by locks — are
    released through :meth:`CCSession.release_locks`).
    """

    #: Registry name of the scheme (set by subclasses).
    scheme = "abstract"

    __slots__ = ("container_id", "tids", "stats", "redo_log", "failed")

    def __init__(self, container_id: int, epochs: EpochManager) -> None:
        self.container_id = container_id
        self.tids = TidGenerator(epochs)
        self.stats = CCStats()
        #: Optional redo log (see repro.durability): when set, every
        #: installed write is logged with its commit TID.
        self.redo_log: Any = None
        #: Set when this manager's container failed (replication
        #: failover): sessions created here must abort at commit —
        #: their writes would land in dead storage.
        self.failed = False

    # -- legacy counter aliases (pre-refactor API) ----------------------

    @property
    def validations(self) -> int:
        return self.stats.validations

    @property
    def validation_failures(self) -> int:
        return self.stats.validation_failures

    # -- protocol -------------------------------------------------------

    @staticmethod
    def is_snapshot_session(session: CCSession) -> bool:
        """Snapshot sessions validate nothing: every scheme's
        ``validate`` short-circuits them *before* counting a
        validation, so CC stats reflect only validated sessions."""
        return getattr(session, "snapshot_tid", None) is not None

    def begin_session(self, txn_id: int) -> CCSession:
        raise NotImplementedError

    def begin_snapshot_session(self, txn_id: int, snapshot_tid: int,
                               storage: Any = None) -> CCSession:
        """A snapshot-isolated read-only session pinned at
        ``snapshot_tid``.

        Available under every scheme — whether snapshot reads are
        *used* is the deployment's choice (``cc_scheme="mvocc"`` or
        the ``snapshot_reads`` toggle); the session takes no locks,
        validates nothing, and can never abort, so it composes with
        any writer protocol this manager runs.
        """
        from repro.concurrency.mvcc import SnapshotSession

        return SnapshotSession(txn_id, self.container_id, snapshot_tid,
                               storage=storage)

    def validate(self, session: CCSession) -> int:
        """Phase-1 validation; returns the TID floor for the commit TID.

        Raises a :class:`~repro.errors.CCAbort` subclass on conflict
        (after releasing any commit-time locks it took itself).
        """
        raise NotImplementedError

    def commit_cost(self, costs: Any, reads: int, writes: int) -> float:
        """Simulated CPU charged by the executor for the commit phase."""
        return (costs.occ_commit_base
                + costs.occ_validate_per_read * reads
                + costs.occ_install_per_write * writes)

    def install(self, session: CCSession, commit_tid: int) -> int:
        """Phase-2 write installation; returns number of writes."""
        count = 0
        install_intent = self._install_intent
        redo_log = self.redo_log
        if redo_log is None:
            for intent in session.sorted_intents():
                if install_intent(intent, commit_tid):
                    count += 1
        else:
            log_entries = []
            for intent in session.sorted_intents():
                if not install_intent(intent, commit_tid):
                    continue
                count += 1
                log_entries.append(make_redo_entry(intent, commit_tid))
            if log_entries:
                redo_log.append(commit_tid, log_entries)
        session.release_locks()
        # Installed inserts revived their placeholders; any left over
        # belong to cancelled insert+delete pairs.
        session.reclaim_placeholders()
        session.finished = True
        self.tids.advance_to(commit_tid)
        return count

    def _install_intent(self, intent: WriteIntent,
                        commit_tid: int) -> bool:
        """Apply one buffered write; returns whether it was applied.

        Under a real scheme this can only succeed — validation/locking
        guarantees exclusivity — so failures propagate as bugs.
        """
        if intent.kind == INSERT:
            assert intent.new_value is not None
            intent.table.install_insert(intent.new_value, commit_tid)
        elif intent.kind == UPDATE:
            assert intent.record is not None
            assert intent.new_value is not None
            intent.table.install_update(
                intent.record, intent.new_value, commit_tid)
        else:
            assert intent.record is not None
            intent.table.install_delete(intent.record, commit_tid)
        return True

    def abort(self, session: CCSession,
              reason: str | None = "user") -> None:
        """Drop all buffered writes and release any held locks.

        ``reason`` attributes the abort in the stats: ``"user"`` and
        ``"dangerous_structure"`` are counted here; CC-initiated aborts
        (validation failures, lock conflicts, wounds) were already
        counted at their raise site and pass ``None``.
        """
        if reason == "user":
            self.stats.user_aborts += 1
        elif reason == "dangerous_structure":
            self.stats.dangerous_structure_aborts += 1
        session.release_locks()
        session.reclaim_placeholders()
        session.finished = True


class PassthroughCC(ConcurrencyControl):
    """The explicit no-concurrency-control scheme (``"none"``).

    Sessions still buffer writes (read-your-writes semantics and the
    abort path need the overlay) but nothing is validated and no locks
    are taken: concurrent conflicting transactions can produce
    non-serializable results (lost updates, broken invariants).
    Useful as the ablation baseline — contended runs violate
    application invariants, and overlapped interleavings fail the
    :mod:`repro.formal` audit.  (The audit records writes at buffering
    time, so without CC a sequentially-buffered lost update can still
    *record* as a serial history; state invariants are the reliable
    detector here, the audit a best-effort one.)
    """

    scheme = "none"

    __slots__ = ()

    def begin_session(self, txn_id: int) -> CCSession:
        return CCSession(txn_id, self.container_id)

    def validate(self, session: CCSession) -> int:
        if self.is_snapshot_session(session):
            return 0
        self.stats.validations += 1
        return 0

    def _install_intent(self, intent: WriteIntent,
                        commit_tid: int) -> bool:
        """Best-effort installation: with no validation or locks, two
        transactions can race to install conflicting writes (e.g. the
        same insert key); the loser's write is dropped rather than
        crashing the run — exactly the kind of anomaly the ablation
        exists to expose."""
        try:
            return super()._install_intent(intent, commit_tid)
        except ReactorError:
            return False


# ----------------------------------------------------------------------
# Scheme registry
# ----------------------------------------------------------------------

#: The deployment-selectable scheme names shipped with the system.
BUILTIN_CC_SCHEMES = ("occ", "mvocc", "2pl_nowait", "2pl_waitdie",
                      "none")

_SCHEME_FACTORIES: dict[
    str, Callable[[int, EpochManager], ConcurrencyControl]] = {}


def register_cc_scheme(name: str):
    """Class/function decorator adding a scheme factory under ``name``.

    The factory is called as ``factory(container_id, epochs)`` once per
    container at database build time.
    """
    def decorate(factory):
        _SCHEME_FACTORIES[name] = factory
        return factory
    return decorate


def _ensure_builtin_schemes() -> None:
    # Deferred: occ/locking/mvcc import this module for the base
    # classes.
    import repro.concurrency.locking  # noqa: F401
    import repro.concurrency.mvcc  # noqa: F401
    import repro.concurrency.occ  # noqa: F401


def cc_scheme_names() -> tuple[str, ...]:
    """All registered scheme names (built-ins plus extensions)."""
    _ensure_builtin_schemes()
    return tuple(sorted(_SCHEME_FACTORIES))


def create_cc_scheme(name: str, container_id: int,
                     epochs: EpochManager) -> ConcurrencyControl:
    """Instantiate the scheme ``name`` for one container."""
    _ensure_builtin_schemes()
    try:
        factory = _SCHEME_FACTORIES[name]
    except KeyError:
        raise DeploymentError(
            f"unknown cc_scheme {name!r}; registered schemes: "
            f"{', '.join(sorted(_SCHEME_FACTORIES))}"
        ) from None
    return factory(container_id, epochs)


register_cc_scheme("none")(
    lambda container_id, epochs: PassthroughCC(container_id, epochs))
