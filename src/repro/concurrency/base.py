"""The pluggable concurrency-control (CC) abstraction.

Database architecture is a deployment-time choice (the paper's central
claim) — and so is the concurrency scheme.  This module defines the
protocol every scheme implements, the machinery they share, and the
registry that maps a ``cc_scheme`` deployment string to a per-container
manager:

* :class:`CCSession` — the transactional record manager for one (root
  transaction, container) pair.  It owns the read-your-writes overlay:
  reads/scans/inserts/updates/deletes of reactor procedures flow
  through it, writes are buffered as :class:`WriteIntent`\\ s until
  commit.  Schemes customize behaviour through three hooks:
  :meth:`CCSession._begin_op` (runs before every data operation),
  :meth:`CCSession._register_read` / :meth:`CCSession._register_node`
  (a committed record / index-or-table structure joined the read
  footprint) and :meth:`CCSession._set_intent` (a write joined the
  write set) — OCC records versions to validate later, 2PL acquires
  locks eagerly, passthrough does neither.

* :class:`ConcurrencyControl` — the per-container manager: owns the
  TID generator, the shared :class:`CCStats` counters and the optional
  redo log, and drives ``validate`` / ``install`` / ``abort``.  The
  write-installation phase is scheme-independent and lives here.

* :func:`register_cc_scheme` / :func:`create_cc_scheme` — the scheme
  registry.  Built-in schemes: ``"occ"`` (Silo-style optimistic,
  :mod:`repro.concurrency.occ`), ``"mvocc"`` (multi-version OCC:
  Silo-OCC writers plus abort-free snapshot-isolated read-only roots,
  :mod:`repro.concurrency.mvcc`), ``"2pl_nowait"`` and
  ``"2pl_waitdie"`` (two-phase locking,
  :mod:`repro.concurrency.locking`), and ``"none"``
  (:class:`PassthroughCC`, the explicit no-concurrency-control scheme
  that replaced the old ``cc_enabled`` bool).

Every data operation returns the number of records *examined* along
with its result, so the execution runtime can charge simulated CPU
proportional to real work done.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Callable, Iterable, Mapping

from repro.errors import (
    DeploymentError,
    DuplicateKeyError,
    QueryError,
    ReadOnlyViolation,
    RecordNotFound,
)
from repro.concurrency.tid import EpochManager, TidGenerator
from repro.relational.index import HashIndex, OrderedIndex
from repro.relational.predicate import ALWAYS, Predicate
from repro.relational.table import Table
from repro.storage.record import VersionedRecord

Row = dict[str, Any]

INSERT = "insert"
UPDATE = "update"
DELETE = "delete"


def require_hash_equality(index_name: str, low: tuple | None,
                          high: tuple | None) -> None:
    """The shared hash-index scan contract: equality only.

    One definition for every session kind (validated and snapshot), so
    a procedure's scans behave identically whichever session serves
    them.
    """
    if low is None or low != high:
        raise QueryError(
            f"hash index {index_name!r} supports equality only; "
            "pass low == high"
        )


class WriteIntent:
    """A buffered write: what to do to one primary key at commit."""

    __slots__ = ("kind", "table", "pk", "record", "new_value")

    def __init__(self, kind: str, table: Table, pk: tuple,
                 record: VersionedRecord | None,
                 new_value: Row | None) -> None:
        self.kind = kind
        self.table = table
        self.pk = pk
        self.record = record
        self.new_value = new_value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WriteIntent({self.kind}, {self.table.name}, {self.pk!r})"


class ScanResult:
    """Rows returned by a scan plus the number of records examined."""

    __slots__ = ("rows", "examined")

    def __init__(self, rows: list[Row], examined: int) -> None:
        self.rows = rows
        self.examined = examined

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class CCStats:
    """Shared per-container counters, one set per scheme instance.

    Counters record *events at the container where they occur*: a
    multi-container transaction that fails validation in one container
    counts one validation failure there and nothing in its siblings; a
    user abort spanning three containers counts once per container.
    """

    #: commit-time validations attempted (every scheme counts these).
    validations: int = 0
    #: OCC: stale read / locked read / phantom detected at validation.
    validation_failures: int = 0
    #: 2PL NO_WAIT: lock requests refused because of a conflict.
    lock_conflicts: int = 0
    #: 2PL WAIT_DIE: younger requesters that died instead of waiting.
    deadlock_avoidance: int = 0
    #: 2PL WAIT_DIE: younger holders wounded by an older requester.
    wounds: int = 0
    #: application-initiated aborts observed by this container.
    user_aborts: int = 0
    #: dynamic intra-transaction safety violations (Section 2.2.4).
    dangerous_structure_aborts: int = 0

    def merge(self, other: "CCStats") -> None:
        for spec in fields(self):
            setattr(self, spec.name,
                    getattr(self, spec.name) + getattr(other, spec.name))

    def abort_reasons(self) -> dict[str, int]:
        """Abort events keyed by reason (the per-reason breakdown)."""
        return {
            "validation_failure": self.validation_failures,
            "lock_conflict": self.lock_conflicts,
            "deadlock_avoidance": self.deadlock_avoidance,
            "wound": self.wounds,
            "user": self.user_aborts,
            "dangerous_structure": self.dangerous_structure_aborts,
        }


class CCSession:
    """Read/write sets of one root transaction within one container.

    The base class is a complete record manager (overlay semantics,
    scan paths, intent merging); concrete schemes subclass it and
    override the footprint hooks.  One session exists per (root
    transaction, container); its manager drives validation,
    installation and abort.
    """

    def __init__(self, txn_id: int, container_id: int) -> None:
        self.txn_id = txn_id
        self.container_id = container_id
        #: The owning RootTransaction when driven by the runtime
        #: (``None`` for manually driven sessions).  Schemes use it
        #: for transaction-wide state shared across that root's
        #: per-container sessions — e.g. 2PL wound propagation.
        self.owner: Any = None
        # id(record) -> (record, tid seen at first read)
        self._reads: dict[int, tuple[VersionedRecord, int]] = {}
        # (id(table), pk) -> WriteIntent
        self._writes: dict[tuple[int, tuple], WriteIntent] = {}
        # (object with .structure_version, version seen) — phantom guard
        self._node_checks: dict[int, tuple[Any, int]] = {}
        self._locked: list[VersionedRecord] = []
        #: insert placeholders this session materialized in tables;
        #: reclaimed on abort unless revived by a committed insert.
        self._placeholders: list[tuple[Table, VersionedRecord]] = []
        self.finished = False

    # ------------------------------------------------------------------
    # Scheme hooks
    # ------------------------------------------------------------------

    def _begin_op(self) -> None:
        """Runs before every public data operation (2PL: wound check)."""

    def _check_writable(self) -> None:
        """Refuse writes of read-only root transactions.

        A root marked read-only may have been routed to a read replica
        (see :mod:`repro.replication`) or be running on a multi-version
        snapshot; its writes must abort rather than mutate state the
        reader was promised not to touch — and for symmetry the same
        contract holds when it ran on the primary.  Every mutation path
        (insert, update, delete) raises the same typed
        :class:`~repro.errors.ReadOnlyViolation`.
        """
        if self.owner is not None and \
                getattr(self.owner, "read_only", False):
            raise ReadOnlyViolation(
                f"read-only transaction {self.txn_id} attempted a "
                "write"
            )

    def _register_read(self, record: VersionedRecord) -> None:
        """A committed record joined the read footprint."""
        key = id(record)
        if key not in self._reads:
            self._reads[key] = (record, record.tid)

    def _register_node(self, node: Any) -> None:
        """A table/index structure joined the read footprint (scan or
        read-miss: guards against phantoms)."""
        key = id(node)
        if key not in self._node_checks:
            self._node_checks[key] = (node, node.structure_version)

    def _set_intent(self, intent: WriteIntent) -> None:
        """A write joined (or replaced an entry of) the write set."""
        self._writes[(id(intent.table), intent.pk)] = intent

    # ------------------------------------------------------------------
    # Bookkeeping helpers
    # ------------------------------------------------------------------

    @property
    def read_count(self) -> int:
        return len(self._reads)

    @property
    def validation_read_count(self) -> int:
        """Reads commit-time validation must walk.

        Equals :attr:`read_count` for validated sessions; snapshot
        sessions override it to 0 — their reads pin a version, nothing
        is re-checked at commit, so the commit path charges nothing
        per read.
        """
        return len(self._reads)

    @property
    def write_count(self) -> int:
        return len(self._writes)

    def _intent_for(self, table: Table, pk: tuple) -> WriteIntent | None:
        return self._writes.get((id(table), pk))

    def _drop_intent(self, table: Table, pk: tuple) -> None:
        self._writes.pop((id(table), pk), None)

    # ------------------------------------------------------------------
    # Transactional data operations (the record manager interface)
    # ------------------------------------------------------------------

    def read(self, table: Table, pk: tuple) -> tuple[Row | None, int]:
        """Point read by primary key; returns (row or None, examined)."""
        self._begin_op()
        intent = self._intent_for(table, pk)
        if intent is not None:
            if intent.kind == DELETE:
                return None, 1
            assert intent.new_value is not None
            return dict(intent.new_value), 1
        record = table.get_record(pk)
        if record is None:
            # A miss is also a predicate read: guard against a phantom
            # insert of this key by validating the table structure.
            self._register_node(table)
            return None, 1
        self._register_read(record)
        return record.snapshot(), 1

    def insert(self, table: Table, row: Mapping[str, Any]) -> int:
        """Buffer an insert; duplicate keys visible to this transaction
        raise immediately (concurrent duplicates surface at commit)."""
        self._begin_op()
        self._check_writable()
        validated = table.schema.validate_row(row)
        pk = table.schema.primary_key_of(validated)
        intent = self._intent_for(table, pk)
        if intent is not None:
            if intent.kind == DELETE:
                # delete + insert collapses to an update of the record.
                self._set_intent(WriteIntent(
                    UPDATE, table, pk, intent.record, validated))
                return 1
            raise DuplicateKeyError(
                f"duplicate key {pk!r} in {table.name!r} (own write)"
            )
        if table.get_record(pk) is not None:
            raise DuplicateKeyError(
                f"duplicate key {pk!r} in {table.name!r}"
            )
        self._set_intent(WriteIntent(INSERT, table, pk, None, validated))
        return 1

    def update(self, table: Table, pk: tuple,
               assignments: Mapping[str, Any]) -> tuple[Row, int]:
        """Read-modify-write one row; returns (new image, examined)."""
        self._begin_op()
        self._check_writable()
        table.schema.validate_assignments(assignments)
        current, examined = self.read(table, pk)
        if current is None:
            raise RecordNotFound(
                f"update of missing key {pk!r} in {table.name!r}"
            )
        new_value = dict(current)
        new_value.update(assignments)
        intent = self._intent_for(table, pk)
        if intent is not None:
            # Merge into the existing insert/update intent.
            self._set_intent(WriteIntent(
                intent.kind, table, pk, intent.record, new_value))
        else:
            record = table.get_record(pk)
            assert record is not None  # read() above registered it
            self._set_intent(WriteIntent(
                UPDATE, table, pk, record, new_value))
        return new_value, examined

    def delete(self, table: Table, pk: tuple) -> int:
        """Buffer a delete; returns records examined."""
        self._begin_op()
        self._check_writable()
        intent = self._intent_for(table, pk)
        if intent is not None:
            if intent.kind == INSERT:
                self._drop_intent(table, pk)
                return 1
            if intent.kind == DELETE:
                raise RecordNotFound(
                    f"delete of missing key {pk!r} in {table.name!r}"
                )
            self._set_intent(WriteIntent(
                DELETE, table, pk, intent.record, None))
            return 1
        record = table.get_record(pk)
        if record is None:
            self._register_node(table)
            raise RecordNotFound(
                f"delete of missing key {pk!r} in {table.name!r}"
            )
        self._register_read(record)
        self._set_intent(WriteIntent(DELETE, table, pk, record, None))
        return 1

    def scan(self, table: Table, predicate: Predicate = ALWAYS,
             index: str | None = None, low: tuple | None = None,
             high: tuple | None = None, reverse: bool = False,
             limit: int | None = None) -> ScanResult:
        """Predicate/range scan with write-set overlay.

        Every candidate examined joins the read footprint (conservative
        predicate-read protection); the index or table structure is
        guarded against phantom inserts/deletes (version check for OCC,
        structure lock for 2PL).
        """
        self._begin_op()
        candidates, sort_keys, examined = self._collect_candidates(
            table, predicate, index, low, high)
        rows: list[tuple[Any, Row]] = []
        for record in candidates:
            intent = self._intent_for(table, record.key)
            if intent is not None:
                if intent.kind == DELETE:
                    continue
                image: Row | None = dict(intent.new_value or {})
            else:
                self._register_read(record)
                image = record.snapshot()
            if image is not None and predicate.matches(image):
                rows.append((sort_keys(image, record.key), image))
        # Own inserts join the result set.
        for intent in list(self._writes.values()):
            if intent.table is table and intent.kind == INSERT:
                image = dict(intent.new_value or {})
                if predicate.matches(image) and self._in_range(
                        table, index, image, low, high):
                    rows.append((sort_keys(image, intent.pk), image))
                    examined += 1
        rows.sort(key=lambda pair: pair[0], reverse=reverse)
        out = [row for __, row in rows]
        if limit is not None:
            out = out[:limit]
        return ScanResult(out, examined)

    def _collect_candidates(self, table: Table, predicate: Predicate,
                            index: str | None, low: tuple | None,
                            high: tuple | None):
        """Pick an access path; returns (records, sort_key_fn, examined)."""
        if index is not None:
            idx = table.index(index)
            self._register_node(idx)
            if isinstance(idx, OrderedIndex):
                pks = list(idx.range(low, high))
            else:
                require_hash_equality(index, low, high)
                pks = list(idx.lookup(low))
            records = list(table.records_for_pks(pks))
            columns = idx.spec.columns

            def sort_key(image: Row, pk: tuple):
                return (tuple(image.get(c) for c in columns), pk)

            return records, sort_key, len(records)

        bindings = predicate.equality_bindings()
        for idx in table.indexes.values():
            if isinstance(idx, HashIndex) and all(
                    c in bindings for c in idx.spec.columns):
                self._register_node(idx)
                key = tuple(bindings[c] for c in idx.spec.columns)
                records = list(table.records_for_pks(idx.lookup(key)))
                return records, (lambda image, pk: pk), len(records)

        self._register_node(table)
        records = list(table.iter_records())
        return records, (lambda image, pk: pk), len(records)

    @staticmethod
    def _in_range(table: Table, index: str | None, image: Row,
                  low: tuple | None, high: tuple | None) -> bool:
        """Does an own-insert fall inside an explicit index range?"""
        if index is None:
            return True
        idx = table.index(index)
        key = idx.key_of(image)
        if low is not None and key[: len(low)] < low:
            return False
        if high is not None and key[: len(high)] > high:
            return False
        return True

    # ------------------------------------------------------------------
    # Validation / installation hooks (driven by the manager)
    # ------------------------------------------------------------------

    def sorted_intents(self) -> list[WriteIntent]:
        """Write intents in deterministic global lock order."""
        return sorted(
            self._writes.values(),
            key=lambda w: (w.table.name, repr(w.pk)),
        )

    def read_entries(self) -> Iterable[tuple[VersionedRecord, int]]:
        return self._reads.values()

    def node_entries(self) -> Iterable[tuple[Any, int]]:
        return self._node_checks.values()

    def remember_lock(self, record: VersionedRecord) -> None:
        self._locked.append(record)

    def remember_placeholder(self, table: Table,
                             record: VersionedRecord) -> None:
        self._placeholders.append((table, record))

    def reclaim_placeholders(self) -> None:
        """Remove placeholders this session created that were never
        revived by a committed insert, so aborted (or cancelled)
        inserts don't permanently grow ``Table._records``.  A
        placeholder another transaction still holds a lock on is left
        in place — that transaction's install will revive it."""
        for table, record in self._placeholders:
            if not self._placeholder_in_use(record):
                table.discard_placeholder(record)
        self._placeholders.clear()

    def _placeholder_in_use(self, record: VersionedRecord) -> bool:
        """Does any *other* transaction still reference this
        placeholder?  (Called after this session released its locks.)"""
        return record.locked_by is not None

    def release_locks(self) -> None:
        for record in self._locked:
            record.unlock(self.txn_id)
        self._locked.clear()

    def max_observed_tid(self) -> int:
        tids = [tid for __, tid in self._reads.values()]
        for intent in self._writes.values():
            if intent.record is not None:
                tids.append(intent.record.tid)
        return max(tids, default=0)


class ConcurrencyControl:
    """Per-container CC engine: validation, installation, TIDs.

    Subclasses implement :meth:`begin_session` and :meth:`validate`;
    installation and abort are scheme-independent (buffered intents are
    applied with the commit TID, redo-logged when durability is on, and
    the session's locks — whatever the scheme means by locks — are
    released through :meth:`CCSession.release_locks`).
    """

    #: Registry name of the scheme (set by subclasses).
    scheme = "abstract"

    def __init__(self, container_id: int, epochs: EpochManager) -> None:
        self.container_id = container_id
        self.tids = TidGenerator(epochs)
        self.stats = CCStats()
        #: Optional redo log (see repro.durability): when set, every
        #: installed write is logged with its commit TID.
        self.redo_log: Any = None
        #: Set when this manager's container failed (replication
        #: failover): sessions created here must abort at commit —
        #: their writes would land in dead storage.
        self.failed = False

    # -- legacy counter aliases (pre-refactor API) ----------------------

    @property
    def validations(self) -> int:
        return self.stats.validations

    @property
    def validation_failures(self) -> int:
        return self.stats.validation_failures

    # -- protocol -------------------------------------------------------

    @staticmethod
    def is_snapshot_session(session: CCSession) -> bool:
        """Snapshot sessions validate nothing: every scheme's
        ``validate`` short-circuits them *before* counting a
        validation, so CC stats reflect only validated sessions."""
        return getattr(session, "snapshot_tid", None) is not None

    def begin_session(self, txn_id: int) -> CCSession:
        raise NotImplementedError

    def begin_snapshot_session(self, txn_id: int, snapshot_tid: int,
                               storage: Any = None) -> CCSession:
        """A snapshot-isolated read-only session pinned at
        ``snapshot_tid``.

        Available under every scheme — whether snapshot reads are
        *used* is the deployment's choice (``cc_scheme="mvocc"`` or
        the ``snapshot_reads`` toggle); the session takes no locks,
        validates nothing, and can never abort, so it composes with
        any writer protocol this manager runs.
        """
        from repro.concurrency.mvcc import SnapshotSession

        return SnapshotSession(txn_id, self.container_id, snapshot_tid,
                               storage=storage)

    def validate(self, session: CCSession) -> int:
        """Phase-1 validation; returns the TID floor for the commit TID.

        Raises a :class:`~repro.errors.CCAbort` subclass on conflict
        (after releasing any commit-time locks it took itself).
        """
        raise NotImplementedError

    def commit_cost(self, costs: Any, reads: int, writes: int) -> float:
        """Simulated CPU charged by the executor for the commit phase."""
        return (costs.occ_commit_base
                + costs.occ_validate_per_read * reads
                + costs.occ_install_per_write * writes)

    def install(self, session: CCSession, commit_tid: int) -> int:
        """Phase-2 write installation; returns number of writes."""
        count = 0
        log_entries = []
        for intent in session.sorted_intents():
            if not self._install_intent(intent, commit_tid):
                continue
            count += 1
            if self.redo_log is not None:
                from repro.durability.wal import RedoEntry

                log_entries.append(RedoEntry(
                    reactor=intent.table.owner or "",
                    table=intent.table.name,
                    kind=intent.kind,
                    pk=intent.pk,
                    row=dict(intent.new_value)
                    if intent.new_value is not None else None,
                ))
        if self.redo_log is not None and log_entries:
            self.redo_log.append(commit_tid, log_entries)
        session.release_locks()
        # Installed inserts revived their placeholders; any left over
        # belong to cancelled insert+delete pairs.
        session.reclaim_placeholders()
        session.finished = True
        self.tids.advance_to(commit_tid)
        return count

    def _install_intent(self, intent: WriteIntent,
                        commit_tid: int) -> bool:
        """Apply one buffered write; returns whether it was applied.

        Under a real scheme this can only succeed — validation/locking
        guarantees exclusivity — so failures propagate as bugs.
        """
        if intent.kind == INSERT:
            assert intent.new_value is not None
            intent.table.install_insert(intent.new_value, commit_tid)
        elif intent.kind == UPDATE:
            assert intent.record is not None
            assert intent.new_value is not None
            intent.table.install_update(
                intent.record, intent.new_value, commit_tid)
        else:
            assert intent.record is not None
            intent.table.install_delete(intent.record, commit_tid)
        return True

    def abort(self, session: CCSession,
              reason: str | None = "user") -> None:
        """Drop all buffered writes and release any held locks.

        ``reason`` attributes the abort in the stats: ``"user"`` and
        ``"dangerous_structure"`` are counted here; CC-initiated aborts
        (validation failures, lock conflicts, wounds) were already
        counted at their raise site and pass ``None``.
        """
        if reason == "user":
            self.stats.user_aborts += 1
        elif reason == "dangerous_structure":
            self.stats.dangerous_structure_aborts += 1
        session.release_locks()
        session.reclaim_placeholders()
        session.finished = True


class PassthroughCC(ConcurrencyControl):
    """The explicit no-concurrency-control scheme (``"none"``).

    Sessions still buffer writes (read-your-writes semantics and the
    abort path need the overlay) but nothing is validated and no locks
    are taken: concurrent conflicting transactions can produce
    non-serializable results (lost updates, broken invariants).
    Useful as the ablation baseline — contended runs violate
    application invariants, and overlapped interleavings fail the
    :mod:`repro.formal` audit.  (The audit records writes at buffering
    time, so without CC a sequentially-buffered lost update can still
    *record* as a serial history; state invariants are the reliable
    detector here, the audit a best-effort one.)
    """

    scheme = "none"

    def begin_session(self, txn_id: int) -> CCSession:
        return CCSession(txn_id, self.container_id)

    def validate(self, session: CCSession) -> int:
        if self.is_snapshot_session(session):
            return 0
        self.stats.validations += 1
        return 0

    def _install_intent(self, intent: WriteIntent,
                        commit_tid: int) -> bool:
        """Best-effort installation: with no validation or locks, two
        transactions can race to install conflicting writes (e.g. the
        same insert key); the loser's write is dropped rather than
        crashing the run — exactly the kind of anomaly the ablation
        exists to expose."""
        from repro.errors import ReactorError

        try:
            return super()._install_intent(intent, commit_tid)
        except ReactorError:
            return False


# ----------------------------------------------------------------------
# Scheme registry
# ----------------------------------------------------------------------

#: The deployment-selectable scheme names shipped with the system.
BUILTIN_CC_SCHEMES = ("occ", "mvocc", "2pl_nowait", "2pl_waitdie",
                      "none")

_SCHEME_FACTORIES: dict[
    str, Callable[[int, EpochManager], ConcurrencyControl]] = {}


def register_cc_scheme(name: str):
    """Class/function decorator adding a scheme factory under ``name``.

    The factory is called as ``factory(container_id, epochs)`` once per
    container at database build time.
    """
    def decorate(factory):
        _SCHEME_FACTORIES[name] = factory
        return factory
    return decorate


def _ensure_builtin_schemes() -> None:
    # Deferred: occ/locking/mvcc import this module for the base
    # classes.
    import repro.concurrency.locking  # noqa: F401
    import repro.concurrency.mvcc  # noqa: F401
    import repro.concurrency.occ  # noqa: F401


def cc_scheme_names() -> tuple[str, ...]:
    """All registered scheme names (built-ins plus extensions)."""
    _ensure_builtin_schemes()
    return tuple(sorted(_SCHEME_FACTORIES))


def create_cc_scheme(name: str, container_id: int,
                     epochs: EpochManager) -> ConcurrencyControl:
    """Instantiate the scheme ``name`` for one container."""
    _ensure_builtin_schemes()
    try:
        factory = _SCHEME_FACTORIES[name]
    except KeyError:
        raise DeploymentError(
            f"unknown cc_scheme {name!r}; registered schemes: "
            f"{', '.join(sorted(_SCHEME_FACTORIES))}"
        ) from None
    return factory(container_id, epochs)


register_cc_scheme("none")(
    lambda container_id, epochs: PassthroughCC(container_id, epochs))
