"""Epoch-batched commit engine: validate/install one closed epoch flat.

When a root transaction reaches its commit point, the set of
per-container sessions it closes is final — nothing can join it, and
nothing inside it changes between validation and installation.  That
closed set is a *commit epoch*, the direct analogue of the group-commit
:class:`~repro.durability.group_commit.FlushEpoch` on the durability
side: a sealed batch that one engine walks in flattened loops, instead
of each participant re-resolving its own method chain, re-sorting its
own intents, and re-deciding redo-batching per write.

:class:`CommitEpoch` replaces the per-participant churn of the
reference coordinator path with:

* a **single-participant fast path** (the overwhelmingly common case)
  that skips participant sorting, membership bookkeeping, and the
  generator-based commit-TID max;
* one flattened validate loop over the ordered participants, with the
  per-scheme ``validate`` hook untouched (OCC locks and checks, 2PL
  re-checks wounds, passthrough counts) so every scheme's semantics
  and stats are byte-identical;
* one flattened install loop that walks each session's *cached*
  :meth:`~repro.concurrency.base.CCSession.sorted_intents` (validation
  already sorted them), applies intents via the scheme's
  ``_install_intent`` hook, and batches redo-log entries through the
  shared :func:`~repro.concurrency.base.make_redo_entry` — managers
  that override ``install`` itself (custom schemes) fall back to their
  override.

Equivalence is the contract: for any fixed seed, the batched engine
produces the same validation order, the same aborts, the same commit
TIDs, the same redo log, and the same certified histories as the
reference path.  ``tests/test_hotpath_equivalence.py`` asserts this
under every registered scheme; the reference path stays available via
:func:`set_batched` or ``REPRO_HOTPATH=reference`` for those tests and
for bisecting any future divergence.
"""

from __future__ import annotations

import os

from repro.concurrency.base import CCSession, ConcurrencyControl
from repro.errors import CCAbort

Participant = tuple[ConcurrencyControl, CCSession]

#: The scheme-independent install, for detecting overrides: only
#: managers using the generic phase-2 take the flattened loop.
_GENERIC_INSTALL = ConcurrencyControl.install

_BATCHED = os.environ.get("REPRO_HOTPATH", "batched") != "reference"


def batched_enabled() -> bool:
    """Is the epoch-batched commit path active?"""
    return _BATCHED


def set_batched(flag: bool) -> None:
    """Toggle the batched engine (``False`` = reference path).

    The reference path exists for equivalence testing and bisection;
    both paths must produce identical histories for identical seeds.
    """
    global _BATCHED
    _BATCHED = bool(flag)


class CommitEpoch:
    """One root transaction's closed set of commit participants.

    ``participants`` must already be ordered by container id — the
    deterministic global validation order that avoids distributed
    deadlock (``RootTransaction.participants()`` guarantees it; manual
    callers sort first).
    """

    __slots__ = ("participants",)

    def __init__(self, participants: list[Participant]) -> None:
        self.participants = participants

    def run(self, now_us: float) -> tuple[int, int]:
        """Validate and install the whole epoch; returns
        ``(commit_tid, writes_installed)``.

        On a validation conflict every participant is rolled back (in
        participant order, matching the reference path) and the
        :class:`~repro.errors.CCAbort` propagates to the caller.
        """
        participants = self.participants
        if len(participants) == 1:
            manager, session = participants[0]
            try:
                floor = manager.validate(session)
            except CCAbort:
                # validate() released its own locks and counted the
                # abort; roll back without re-attributing a reason.
                manager.abort(session, reason=None)
                raise
            commit_tid = manager.tids.next_tid(now_us, at_least=floor)
            return commit_tid, self._install_all(commit_tid)

        floor = 0
        try:
            for manager, session in participants:
                tid_floor = manager.validate(session)
                if tid_floor > floor:
                    floor = tid_floor
        except CCAbort:
            # The already-validated prefix, the failing participant,
            # and the unvalidated rest roll back in participant order
            # — the same total order as the reference path's two
            # cleanup loops.
            for manager, session in participants:
                manager.abort(session, reason=None)
            raise
        commit_tid = 0
        for manager, __ in participants:
            tid = manager.tids.next_tid(now_us, at_least=floor)
            if tid > commit_tid:
                commit_tid = tid
        return commit_tid, self._install_all(commit_tid)

    def _install_all(self, commit_tid: int) -> int:
        """Phase 2, flattened: one loop over every intent of the epoch.

        Sessions were sorted by :meth:`CCSession.sorted_intents` during
        validation (OCC) or are sorted here once (2PL/passthrough); the
        memoized list is walked directly with the per-intent and redo
        machinery hoisted out of the loop.  A manager whose class
        overrides ``install`` keeps its override (the flattening only
        assumes the generic phase-2 semantics).
        """
        from repro.concurrency.base import make_redo_entry

        writes = 0
        for manager, session in self.participants:
            if type(manager).install is not _GENERIC_INSTALL:
                writes += manager.install(session, commit_tid)
                continue
            install_intent = manager._install_intent
            redo_log = manager.redo_log
            if redo_log is None:
                for intent in session.sorted_intents():
                    if install_intent(intent, commit_tid):
                        writes += 1
            else:
                entries = []
                for intent in session.sorted_intents():
                    if not install_intent(intent, commit_tid):
                        continue
                    writes += 1
                    entries.append(make_redo_entry(intent, commit_tid))
                if entries:
                    redo_log.append(commit_tid, entries)
            session.release_locks()
            session.reclaim_placeholders()
            session.finished = True
            manager.tids.advance_to(commit_tid)
        return writes
