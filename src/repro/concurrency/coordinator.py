"""Two-phase commit across database containers.

A root transaction that touched reactors in more than one container
commits through :class:`TwoPhaseCommit` (paper Section 3.2.2): phase
one runs the container scheme's validation on every involved container
(OCC locks the write set and checks the read set; 2PL re-checks the
wound flag — its locks are already held; passthrough does nothing),
phase two installs the writes with a globally maximal commit TID or
aborts everywhere.  The coordinator is scheme-agnostic: participants
are ``(manager, session)`` pairs of whatever
:class:`~repro.concurrency.base.ConcurrencyControl` the deployment
selected, so cross-container commits work identically under every
scheme.

The coordinator is pure logic — the transaction executor drives it and
charges the simulated per-container communication costs around each
phase, so that commit latency grows with the number of containers
spanned exactly as in the paper's cost breakdowns.
"""

from __future__ import annotations

from repro.concurrency import batch
from repro.concurrency.base import CCSession, ConcurrencyControl
from repro.errors import CCAbort

Participant = tuple[ConcurrencyControl, CCSession]


def _by_container(pair: Participant) -> int:
    return pair[0].container_id


class CommitOutcome:
    """Result of a commit attempt."""

    __slots__ = ("committed", "commit_tid", "containers", "writes",
                 "reason")

    def __init__(self, committed: bool, commit_tid: int, containers: int,
                 writes: int, reason: str | None = None) -> None:
        self.committed = committed
        self.commit_tid = commit_tid
        self.containers = containers
        self.writes = writes
        self.reason = reason

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "committed" if self.committed else f"aborted({self.reason})"
        return (f"CommitOutcome({state}, tid={self.commit_tid}, "
                f"containers={self.containers}, writes={self.writes})")


class TwoPhaseCommit:
    """Commitment protocol over the containers a transaction touched."""

    __slots__ = ("participants",)

    def __init__(self, participants: list[Participant]) -> None:
        if not participants:
            raise ValueError("a commit needs at least one participant")
        self.participants = participants

    @property
    def container_count(self) -> int:
        return len(self.participants)

    def commit(self, now_us: float) -> CommitOutcome:
        """Run both phases; single-container commits skip coordination.

        The validation order over containers is deterministic
        (container id), which both avoids distributed deadlock on write
        locks and keeps simulations reproducible.

        By default both phases run through the epoch-batched engine
        (:mod:`repro.concurrency.batch`); the unbatched reference path
        below is kept verbatim for equivalence testing
        (``REPRO_HOTPATH=reference`` / :func:`batch.set_batched`).
        Both paths produce identical histories for identical seeds.
        """
        if batch.batched_enabled():
            participants = self.participants
            if len(participants) > 1:
                participants = sorted(participants, key=_by_container)
            try:
                commit_tid, writes = batch.CommitEpoch(
                    participants).run(now_us)
            except CCAbort as abort:
                return CommitOutcome(False, 0, len(participants), 0,
                                     reason=str(abort))
            return CommitOutcome(True, commit_tid, len(participants),
                                 writes)

        ordered = sorted(self.participants, key=_by_container)
        validated: list[Participant] = []
        floor = 0
        try:
            for manager, session in ordered:
                floor = max(floor, manager.validate(session))
                validated.append((manager, session))
        except CCAbort as abort:
            # validate() released its own locks and counted the abort;
            # roll back the rest without re-attributing a reason.
            for manager, session in validated:
                manager.abort(session, reason=None)
            for manager, session in ordered:
                if (manager, session) not in validated:
                    manager.abort(session, reason=None)
            return CommitOutcome(False, 0, len(ordered), 0,
                                 reason=str(abort))
        commit_tid = max(
            manager.tids.next_tid(now_us, at_least=floor)
            for manager, __ in ordered
        )
        writes = 0
        for manager, session in ordered:
            writes += manager.install(session, commit_tid)
        return CommitOutcome(True, commit_tid, len(ordered), writes)

    def abort(self, reason: str | None = "user") -> CommitOutcome:
        """Abort everywhere (user aborts, safety violations, or — with
        ``reason=None`` — cleanup after a CC-initiated abort that was
        already counted at its raise site)."""
        for manager, session in self.participants:
            manager.abort(session, reason=reason)
        return CommitOutcome(False, 0, len(self.participants), 0,
                             reason=reason or "concurrency abort")
