"""Two-phase locking (the ``"2pl_nowait"`` / ``"2pl_waitdie"`` schemes).

Strict two-phase locking with per-record reader/writer locks:

* every committed record a transaction reads is shared-locked at the
  read; every record it writes is exclusive-locked when the write
  intent is buffered (growing phase);
* phantom protection is by *structure locks*: scans and read-misses
  shared-lock the table or index node they consulted, inserts and
  deletes exclusive-lock the table node plus every index node their
  installation will restructure (updates only the indexes whose key
  actually changes);
* all locks are held to commit/abort (shrinking phase happens entirely
  inside :meth:`~repro.concurrency.base.ConcurrencyControl.install` /
  ``abort``), which makes every committed history conflict-serializable
  in lock-acquisition order.

Because the simulated runtime is cooperative and data operations are
synchronous (they cannot suspend a task mid-operation), a conflicting
request can never *block* — it must be resolved immediately.  Two
deadlock-free policies are provided:

* **NO_WAIT** — the requester aborts on any conflict
  (:class:`~repro.errors.LockConflictAbort`);
* **WAIT_DIE** — the classic age-based policy adapted to a
  non-blocking runtime: a requester *younger* than any conflicting
  holder dies (:class:`~repro.errors.DeadlockAvoidanceAbort`), exactly
  as in wait-die; a requester *older* than every holder — which
  wait-die would allow to wait — instead *wounds* the younger holders
  (they are marked doomed, their locks are released, and they abort at
  their next data operation or at validation with
  :class:`~repro.errors.WoundAbort`).  The age order still guarantees
  deadlock freedom and no transaction is ever starved by a younger
  one; wound and die events are counted separately in the shared
  :class:`~repro.concurrency.base.CCStats`.

A wounded transaction never commits: its session is flagged, every
subsequent data operation raises, and commit-time validation re-checks
the flag (covering victims that finish without touching data again).
Releasing a victim's locks early is safe precisely because it is
doomed — no write it buffered is ever installed.
"""

from __future__ import annotations

from typing import Any

from repro.errors import (
    DeadlockAvoidanceAbort,
    LockConflictAbort,
    SimulationError,
    WoundAbort,
)
from repro.concurrency.base import (
    CCSession,
    CCStats,
    ConcurrencyControl,
    DELETE,
    INSERT,
    WriteIntent,
    register_cc_scheme,
)
from repro.concurrency.tid import EpochManager
from repro.relational.table import Table
from repro.storage.record import VersionedRecord

NO_WAIT = "no_wait"
WAIT_DIE = "wait_die"


class _LockEntry:
    """Lock state of one lockable object (record or structure node)."""

    __slots__ = ("obj", "shared", "exclusive")

    def __init__(self, obj: Any) -> None:
        self.obj = obj
        #: sessions holding the lock in shared mode
        self.shared: dict[int, "LockingSession"] = {}
        self.exclusive: "LockingSession | None" = None

    def holders(self) -> list["LockingSession"]:
        out = list(self.shared.values())
        if self.exclusive is not None and \
                self.exclusive.txn_id not in self.shared:
            out.append(self.exclusive)
        return out

    def empty(self) -> bool:
        return not self.shared and self.exclusive is None


class LockManager:
    """Per-container lock table over records and structure nodes.

    Keys are object identities: a lock protects one
    :class:`~repro.storage.record.VersionedRecord` (row locks) or one
    table/index object (structure locks).  Entries are created on first
    acquisition and dropped when the last holder releases.
    """

    __slots__ = ("policy", "stats", "_entries")

    def __init__(self, policy: str, stats: CCStats) -> None:
        if policy not in (NO_WAIT, WAIT_DIE):
            raise SimulationError(f"unknown 2PL policy {policy!r}")
        self.policy = policy
        self.stats = stats
        self._entries: dict[int, _LockEntry] = {}

    # ------------------------------------------------------------------

    def acquire(self, session: "LockingSession", obj: Any,
                exclusive: bool) -> None:
        """Grant ``session`` a lock on ``obj`` or raise a CC abort."""
        entry = self._entries.get(id(obj))
        if entry is None:
            entry = _LockEntry(obj)
            self._entries[id(obj)] = entry

        if exclusive:
            conflicting = [s for s in entry.holders() if s is not session]
        elif entry.exclusive is not None and \
                entry.exclusive is not session:
            conflicting = [entry.exclusive]
        else:
            conflicting = []

        if conflicting:
            self._resolve_conflict(session, conflicting)
            # Conflict resolved by wounding every holder: their locks
            # were force-released, which may have emptied and dropped
            # this entry from the table — re-anchor before granting,
            # or the grant lands on a detached entry and a later
            # requester would see the object as unlocked.
            entry = self._entries.get(id(obj))
            if entry is None:
                entry = _LockEntry(obj)
                self._entries[id(obj)] = entry

        if exclusive:
            entry.shared.pop(session.txn_id, None)  # S -> X upgrade
            entry.exclusive = session
        elif entry.exclusive is not session:
            entry.shared[session.txn_id] = session
        session._held.add(id(obj))

    def _resolve_conflict(self, session: "LockingSession",
                          conflicting: list["LockingSession"]) -> None:
        if self.policy == NO_WAIT:
            self.stats.lock_conflicts += 1
            raise LockConflictAbort(
                f"txn {session.txn_id} lock conflict with "
                f"{sorted(s.txn_id for s in conflicting)} (NO_WAIT)"
            )
        # WAIT_DIE: younger requesters die; an older requester (which
        # classic wait-die would let wait) wounds the younger holders
        # instead, since this runtime cannot block a data operation.
        older = [s for s in conflicting if s.txn_id < session.txn_id]
        if older:
            self.stats.deadlock_avoidance += 1
            raise DeadlockAvoidanceAbort(
                f"txn {session.txn_id} dies: conflicting lock held by "
                f"older txn {sorted(s.txn_id for s in older)} (WAIT_DIE)"
            )
        for victim in conflicting:
            self.wound(victim)

    def wound(self, victim: "LockingSession") -> None:
        """Doom a younger lock holder and free everything it holds.

        The doom is transaction-wide: a multi-container victim's
        sessions in *other* containers observe it through the shared
        root, so a doomed transaction stops acquiring (and wounding)
        everywhere, not just where it was wounded.
        """
        if victim.finished:
            return
        if not victim.is_doomed():
            victim.wounded = True
            if victim.owner is not None:
                victim.owner.doomed = True
            self.stats.wounds += 1
        # Free whatever the victim still holds *here* even when it was
        # already doomed elsewhere: a multi-container victim's locks in
        # this container are only released by a wound in this container
        # or by its final abort, and granting over a stale entry would
        # leave a dead holder that spuriously conflicts later.
        self.release_all(victim)

    def is_locked(self, obj: Any) -> bool:
        """Is any session currently holding a lock on ``obj``?"""
        return id(obj) in self._entries

    def release_all(self, session: "LockingSession") -> None:
        for key in session._held:
            entry = self._entries.get(key)
            if entry is None:
                continue
            entry.shared.pop(session.txn_id, None)
            if entry.exclusive is session:
                entry.exclusive = None
            if entry.empty():
                del self._entries[key]
        session._held.clear()

    def held_count(self) -> int:
        """Number of live lock entries (diagnostics/tests)."""
        return len(self._entries)


class LockingSession(CCSession):
    """2PL session: the footprint hooks acquire locks eagerly."""

    __slots__ = ("_locks", "_held", "wounded")

    def __init__(self, txn_id: int, container_id: int,
                 locks: LockManager) -> None:
        super().__init__(txn_id, container_id)
        self._locks = locks
        #: id(obj) of every entry this session holds a lock on.
        self._held: set[int] = set()
        #: Set when an older WAIT_DIE requester preempted this session.
        self.wounded = False

    def is_doomed(self) -> bool:
        """Wounded here, or anywhere else in the same root transaction."""
        return self.wounded or (
            self.owner is not None
            and getattr(self.owner, "doomed", False))

    # -- scheme hooks ---------------------------------------------------

    def _begin_op(self) -> None:
        if self.is_doomed():
            raise WoundAbort(
                f"txn {self.txn_id} was wounded by an older transaction"
            )

    def _register_read(self, record: VersionedRecord) -> None:
        self._locks.acquire(self, record, exclusive=False)
        super()._register_read(record)

    def _register_node(self, node: Any) -> None:
        self._locks.acquire(self, node, exclusive=False)
        super()._register_node(node)

    def _set_intent(self, intent: WriteIntent) -> None:
        self._lock_for_intent(intent)
        super()._set_intent(intent)

    # -- growing-phase lock acquisition ---------------------------------

    def _lock_for_intent(self, intent: WriteIntent) -> None:
        table = intent.table
        if intent.kind == INSERT:
            # Exclusive structure locks on the table and every index
            # (installation restructures them all), plus the insert
            # placeholder so concurrent inserters of the same key
            # conflict here instead of at install time.
            self._lock_structures(table, table.indexes.values())
            placeholder = table.ensure_placeholder(intent.pk)
            self.remember_placeholder(table, placeholder)
            self._locks.acquire(self, placeholder, exclusive=True)
            intent.record = placeholder
        elif intent.kind == DELETE:
            assert intent.record is not None
            self._locks.acquire(self, intent.record, exclusive=True)
            self._lock_structures(table, table.indexes.values())
        else:  # UPDATE (of a committed record or of an own insert)
            if intent.record is not None:
                self._locks.acquire(self, intent.record, exclusive=True)
                assert intent.new_value is not None
                self._lock_structures(table, [
                    idx for idx in table.indexes.values()
                    if idx.key_of(intent.record.value)
                    != idx.key_of(intent.new_value)
                ], include_table=False)
            # Updating an own (uncommitted) insert needs no new locks:
            # the placeholder and all structures are exclusively held
            # since the insert was buffered.

    def _lock_structures(self, table: Table, indexes,
                         include_table: bool = True) -> None:
        if include_table:
            self._locks.acquire(self, table, exclusive=True)
        for idx in indexes:
            self._locks.acquire(self, idx, exclusive=True)

    # -- shrinking phase ------------------------------------------------

    def release_locks(self) -> None:
        self._locks.release_all(self)
        super().release_locks()

    def _placeholder_in_use(self, record: VersionedRecord) -> bool:
        # Called after release_all: any surviving lock entry means a
        # concurrent inserter of the same key still references the
        # placeholder and may yet revive it.
        return self._locks.is_locked(record)


class LockingCC(ConcurrencyControl):
    """Per-container 2PL engine parameterized by conflict policy."""

    #: ``scheme`` is an *instance* slot here (shadowing the base class
    #: attribute): one class serves both registry names.
    __slots__ = ("policy", "scheme", "locks")

    def __init__(self, container_id: int, epochs: EpochManager,
                 policy: str = NO_WAIT,
                 scheme: str | None = None) -> None:
        super().__init__(container_id, epochs)
        self.policy = policy
        #: Registry name when created through the scheme registry.
        self.scheme = scheme if scheme is not None else f"2pl_{policy}"
        self.locks = LockManager(policy, self.stats)

    def begin_session(self, txn_id: int) -> LockingSession:
        return LockingSession(txn_id, self.container_id, self.locks)

    def validate(self, session: CCSession) -> int:
        """Commit-time check: locks were acquired during execution, so
        validation only re-checks the doom flag (a victim that never
        touched data again after being wounded is caught here).
        Snapshot sessions (the ``snapshot_reads`` toggle) hold no
        locks and cannot be wounded — nothing to check, and nothing
        counted."""
        if self.is_snapshot_session(session):
            return 0
        self.stats.validations += 1
        assert isinstance(session, LockingSession)
        if session.is_doomed():
            raise WoundAbort(
                f"txn {session.txn_id} was wounded before commit"
            )
        return session.max_observed_tid()

    # Commit-phase pricing deliberately inherits the base (OCC-shaped)
    # formula: the simulator charges no per-lock fee during execution,
    # so 2PL's shrinking-phase walk over the read/write footprint is
    # priced like OCC's validation walk.  Pricing it cheaper would
    # hand 2PL a free-locking artifact in scheme ablations; this way
    # benchmark differences come from aborts and conflicts, not from
    # the cost model.


def _make(policy: str, scheme: str):
    def factory(container_id: int, epochs: EpochManager) -> LockingCC:
        return LockingCC(container_id, epochs, policy=policy,
                         scheme=scheme)
    return factory


for _scheme, _policy in (("2pl_nowait", NO_WAIT),
                         ("2pl_waitdie", WAIT_DIE)):
    register_cc_scheme(_scheme)(_make(_policy, _scheme))


__all__ = [
    "LockManager",
    "LockingCC",
    "LockingSession",
    "NO_WAIT",
    "WAIT_DIE",
]
