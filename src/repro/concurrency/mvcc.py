"""Multi-version concurrency: snapshot sessions and the ``"mvocc"``
scheme.

The multi-version storage engine (:mod:`repro.storage`) retains
superseded record versions while snapshot readers are in flight.  This
module adds the read side:

* :class:`SnapshotSession` — the record manager of one *read-only*
  root transaction within one container, pinned at a begin snapshot
  TID.  Reads resolve through the version chains
  (:meth:`~repro.storage.record.VersionedRecord.version_at`), take no
  locks, register no read/node footprint, and therefore validate
  nothing and can never abort; any mutation raises the typed
  :class:`~repro.errors.ReadOnlyViolation`.  Scans iterate the full
  record map (including tombstones — a key deleted after the snapshot
  is still visible to it) and apply index-range semantics over the
  visible images, so they need no versioned index structures.

* :class:`MVConcurrencyManager` — the ``"mvocc"`` scheme: writers run
  the unmodified Silo-OCC protocol (they install new versions instead
  of overwriting, courtesy of the storage engine), while read-only
  roots always get snapshot sessions.  The same snapshot machinery is
  available under *any* scheme through the deployment's
  ``snapshot_reads`` toggle — 2PL writers with snapshot readers is a
  perfectly sound combination because readers touch no locks.

Snapshot sessions participate in the generic commit path (2PC calls
``validate``/``install`` on them like on any session) but their empty
footprint makes both a no-op; the executor additionally prices their
commit with a zero validation walk
(:attr:`SnapshotSession.validation_read_count`).
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.concurrency.base import (
    CCSession,
    ScanResult,
    register_cc_scheme,
    require_hash_equality,
)
from repro.concurrency.occ import ConcurrencyManager
from repro.concurrency.tid import EpochManager
from repro.errors import ReadOnlyViolation
from repro.relational.index import OrderedIndex
from repro.relational.predicate import ALWAYS, Predicate
from repro.relational.table import Table

__all__ = ["MVConcurrencyManager", "SnapshotSession"]


class SnapshotSession(CCSession):
    """Read-only record manager pinned at a begin-TID snapshot."""

    __slots__ = ("snapshot_tid", "storage", "snapshot_read_count")

    def __init__(self, txn_id: int, container_id: int,
                 snapshot_tid: int, storage: Any = None) -> None:
        super().__init__(txn_id, container_id)
        #: Every read resolves to the newest version with
        #: ``tid <= snapshot_tid``.
        self.snapshot_tid = snapshot_tid
        #: The database's StorageCoordinator (counters + audit log);
        #: ``None`` for manually driven sessions.
        self.storage = storage
        #: Reads served from this snapshot (stats only).
        self.snapshot_read_count = 0

    # -- commit-path integration ----------------------------------------

    @property
    def read_count(self) -> int:
        return self.snapshot_read_count

    @property
    def validation_read_count(self) -> int:
        # Nothing is re-checked at commit: snapshot reads are final
        # the moment they resolve.
        return 0

    # -- bookkeeping ----------------------------------------------------

    def _note(self, table: Table, pk: tuple, image: Any,
              observed_tid: int) -> None:
        self.snapshot_read_count += 1
        if self.storage is not None:
            self.storage.note_snapshot_read(
                self.txn_id, self.snapshot_tid, table.owner or "",
                table.name, pk, observed_tid, image is None)

    # -- the read-only record manager surface ---------------------------

    def read(self, table: Table, pk: tuple):
        """Point read at the pinned snapshot; never locks, never
        registers a footprint.  Visibility is the storage layer's one
        rule (:meth:`repro.relational.table.Table.version_at`)."""
        self._begin_op()
        image, observed_tid = table.version_at(pk, self.snapshot_tid)
        self._note(table, pk, image, observed_tid)
        return image, 1

    def multi_read(self, table: Table, pks):
        """Vectorized snapshot point reads: one chain walk per key,
        method lookups hoisted, results preallocated.  Equivalent to
        ``[read(table, pk) for pk in pks]`` — including one
        :meth:`_note` audit event per key, in key order."""
        self._begin_op()
        pks = list(pks)
        out: list[Any] = [None] * len(pks)
        snapshot_tid = self.snapshot_tid
        note = self._note
        recmap = table.store.record_map()
        if recmap is not None:
            get = recmap.get
            for i, pk in enumerate(pks):
                record = get(pk)
                if record is None:
                    image, observed_tid = None, 0
                else:
                    image, observed_tid = record.version_at(snapshot_tid)
                note(table, pk, image, observed_tid)
                out[i] = image
        else:
            version_at = table.store.version_at
            for i, pk in enumerate(pks):
                image, observed_tid = version_at(pk, snapshot_tid)
                note(table, pk, image, observed_tid)
                out[i] = image
        return out, len(pks)

    def scan(self, table: Table, predicate: Predicate = ALWAYS,
             index: str | None = None, low: tuple | None = None,
             high: tuple | None = None, reverse: bool = False,
             limit: int | None = None) -> ScanResult:
        """Predicate/range scan over the snapshot's visible images.

        Indexed scans examine the index's *current* candidates plus
        the records still retaining chain versions — the only ones
        whose snapshot-visible image can differ from their live head
        (deleted or re-keyed after the snapshot) — so the work stays
        proportional to the match set plus the GC-bounded history, not
        the table.  Bounds and predicate apply to the *visible* image,
        and hash indexes keep the validated sessions' contract —
        equality only (``low == high``) — so a procedure behaves
        identically whichever session serves it.  Full scans iterate
        everything, tombstones included.
        """
        self._begin_op()
        idx = table.index(index) if index is not None else None
        hash_equality = idx is not None and not isinstance(
            idx, OrderedIndex)
        if hash_equality:
            require_hash_equality(index, low, high)
        if idx is not None:
            pks = idx.lookup(low) if hash_equality \
                else idx.range(low, high)
            candidates = self._with_chained(table, pks)
        else:
            pks = self._equality_probe(table, predicate)
            candidates = table.all_records() if pks is None \
                else self._with_chained(table, pks)
        rows: list[tuple[Any, dict]] = []
        examined = 0
        snapshot_tid = self.snapshot_tid
        matches = predicate.matches
        note = self._note
        key_of = idx.key_of if idx is not None else None
        for record in candidates:
            examined += 1
            image, observed_tid = record.version_at(snapshot_tid)
            if image is None or not matches(image):
                continue
            if key_of is not None:
                key = key_of(image)
                if hash_equality:
                    # Exact-key match, like the validated path's
                    # idx.lookup(low).
                    if key != low:
                        continue
                else:
                    # The validated path's range rule (_in_range),
                    # checked inline on the key already computed —
                    # _in_range would re-resolve the index per row.
                    if low is not None and key[:len(low)] < low:
                        continue
                    if high is not None and key[:len(high)] > high:
                        continue
                sort_key: Any = (key, record.key)
            else:
                sort_key = record.key
            note(table, record.key, image, observed_tid)
            rows.append((sort_key, image))
        rows.sort(key=lambda pair: pair[0], reverse=reverse)
        out = [row for __, row in rows]
        if limit is not None:
            out = out[:limit]
        return ScanResult(out, examined)

    @staticmethod
    def _with_chained(table: Table, pks):
        """Scan candidates: the given current-index matches plus every
        record still retaining chain versions (the only ones whose
        snapshot image can differ from — or outlive — its head)."""
        picked: dict[tuple, Any] = {}
        peek = table.store.peek
        for pk in pks:
            record = peek(pk)
            if record is not None:
                picked[pk] = record
        for record in table.store.iter_chained():
            picked.setdefault(record.key, record)
        return picked.values()

    @staticmethod
    def _equality_probe(table: Table, predicate: Predicate):
        """The validated path's equality-bindings fast path (see
        :meth:`CCSession._collect_candidates`): candidate pks from a
        hash index fully bound by the predicate, or ``None`` when no
        index applies (full scan)."""
        bindings = predicate.equality_bindings()
        for idx in table.indexes.values():
            if not isinstance(idx, OrderedIndex) and all(
                    column in bindings for column in idx.spec.columns):
                key = tuple(bindings[column]
                            for column in idx.spec.columns)
                return idx.lookup(key)
        return None

    # -- mutations: uniformly refused -----------------------------------

    def _refuse_write(self, op: str, table: Table) -> None:
        raise ReadOnlyViolation(
            f"snapshot transaction {self.txn_id} attempted {op} on "
            f"{table.name!r}"
        )

    def insert(self, table: Table, row: Mapping[str, Any]) -> int:
        self._refuse_write("insert", table)
        raise AssertionError("unreachable")

    def update(self, table: Table, pk: tuple,
               assignments: Mapping[str, Any]):
        self._refuse_write("update", table)
        raise AssertionError("unreachable")

    def delete(self, table: Table, pk: tuple) -> int:
        self._refuse_write("delete", table)
        raise AssertionError("unreachable")


@register_cc_scheme("mvocc")
class MVConcurrencyManager(ConcurrencyManager):
    """The ``"mvocc"`` scheme: Silo-OCC writers, snapshot readers.

    Write transactions validate and install exactly as under ``"occ"``
    — the storage engine makes their installs version-preserving when
    snapshot readers are pinned.  Read-only roots are always served
    from snapshots (the deployment layer treats ``mvocc`` as implying
    ``snapshot_reads``), so they never validate, never lock, and never
    abort.
    """

    scheme = "mvocc"

    __slots__ = ()

    def __init__(self, container_id: int, epochs: EpochManager) -> None:
        super().__init__(container_id, epochs, enabled=True)
