"""Silo-style optimistic concurrency control (the ``"occ"`` scheme).

ReactDB reuses Silo's OCC scheme (paper Section 3.2): transactions read
committed record versions without locking, buffer writes locally, and
validate at commit.  Validation locks the write set, re-checks every
read-set TID, and conservatively re-checks index structure versions for
scans (phantom protection).  On success, writes are installed with a
commit TID greater than every TID observed.

The buffered record-manager machinery (read-your-writes overlay, scan
paths, write intents) lives in :class:`repro.concurrency.base.CCSession`
and is shared with the other schemes; :class:`OCCSession` layers the
optimistic read/node-version footprint on top and
:class:`ConcurrencyManager` owns validation and installation.

``ConcurrencyManager(..., enabled=False)`` is the legacy spelling of
the explicit :class:`~repro.concurrency.base.PassthroughCC` scheme and
is kept for backward compatibility.
"""

from __future__ import annotations

from repro.errors import ValidationAbort
from repro.concurrency.base import (
    CCSession,
    ConcurrencyControl,
    INSERT,
    Row,
    ScanResult,
    WriteIntent,
    register_cc_scheme,
)
from repro.concurrency.tid import EpochManager

__all__ = [
    "ConcurrencyManager",
    "OCCSession",
    "Row",
    "ScanResult",
    "WriteIntent",
]


class OCCSession(CCSession):
    """Read/write sets of one root transaction within one container.

    The base class already records the optimistic footprint (record
    TIDs at first read, structure versions at scan / read-miss); OCC
    needs no per-operation work beyond that, so the session is the base
    behaviour unchanged — validation interprets the footprint.
    """

    __slots__ = ()


@register_cc_scheme("occ")
class ConcurrencyManager(ConcurrencyControl):
    """Per-container OCC engine: validation, installation, TIDs."""

    scheme = "occ"

    __slots__ = ("enabled",)

    def __init__(self, container_id: int, epochs: EpochManager,
                 enabled: bool = True) -> None:
        super().__init__(container_id, epochs)
        self.enabled = enabled

    def begin_session(self, txn_id: int) -> OCCSession:
        return OCCSession(txn_id, self.container_id)

    def validate(self, session: CCSession) -> int:
        """Phase-1 validation; locks the write set.

        Returns the TID floor for the commit TID.  Raises
        :class:`ValidationAbort` (after releasing locks) on conflict.
        """
        if self.is_snapshot_session(session):
            return 0
        self.stats.validations += 1
        if not self.enabled:
            return 0
        try:
            for intent in session.sorted_intents():
                self._lock_intent(session, intent)
            txn_id = session.txn_id
            for record, tid_seen in session.read_entries():
                if record.tid != tid_seen:
                    raise ValidationAbort(
                        f"stale read of {record.key!r} in txn "
                        f"{session.txn_id}"
                    )
                locker = record.locked_by
                if locker is not None and locker != txn_id:
                    raise ValidationAbort(
                        f"read of {record.key!r} locked by concurrent "
                        f"committer"
                    )
            for node, version_seen in session.node_entries():
                if node.structure_version != version_seen:
                    raise ValidationAbort(
                        "phantom: index/table structure changed under a "
                        f"scan of txn {session.txn_id}"
                    )
        except ValidationAbort:
            self.stats.validation_failures += 1
            session.release_locks()
            raise
        return session.max_observed_tid()

    def _lock_intent(self, session: CCSession,
                     intent: WriteIntent) -> None:
        if intent.kind == INSERT:
            live = intent.table.get_record(intent.pk)
            if live is not None:
                raise ValidationAbort(
                    f"concurrent insert won for key {intent.pk!r} in "
                    f"{intent.table.name!r}"
                )
            placeholder = intent.table.ensure_placeholder(intent.pk)
            session.remember_placeholder(intent.table, placeholder)
            if not placeholder.lock(session.txn_id):
                raise ValidationAbort(
                    f"insert placeholder {intent.pk!r} locked by "
                    "concurrent committer"
                )
            session.remember_lock(placeholder)
            intent.record = placeholder
        else:
            record = intent.record
            assert record is not None
            if not record.lock(session.txn_id):
                raise ValidationAbort(
                    f"write lock on {record.key!r} held by concurrent "
                    "committer"
                )
            session.remember_lock(record)
