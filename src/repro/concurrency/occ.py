"""Silo-style optimistic concurrency control.

ReactDB reuses Silo's OCC scheme (paper Section 3.2): transactions read
committed record versions without locking, buffer writes locally, and
validate at commit.  Validation locks the write set, re-checks every
read-set TID, and conservatively re-checks index structure versions for
scans (phantom protection).  On success, writes are installed with a
commit TID greater than every TID observed.

One :class:`OCCSession` exists per (root transaction, container); the
:class:`ConcurrencyManager` is per container and owns validation,
installation and TID generation.  The session also serves as the
transactional record manager: all reads/scans/writes of reactor
procedures flow through it, giving read-your-writes semantics over the
committed tables.

Every data operation returns the number of records *examined* along
with its result, so the execution runtime can charge simulated CPU
proportional to real work done.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.errors import (
    DuplicateKeyError,
    QueryError,
    RecordNotFound,
    ValidationAbort,
)
from repro.concurrency.tid import EpochManager, TidGenerator
from repro.relational.index import HashIndex, OrderedIndex
from repro.relational.predicate import ALWAYS, Predicate
from repro.relational.table import Table
from repro.storage.record import VersionedRecord

Row = dict[str, Any]

_INSERT = "insert"
_UPDATE = "update"
_DELETE = "delete"


class WriteIntent:
    """A buffered write: what to do to one primary key at commit."""

    __slots__ = ("kind", "table", "pk", "record", "new_value")

    def __init__(self, kind: str, table: Table, pk: tuple,
                 record: VersionedRecord | None,
                 new_value: Row | None) -> None:
        self.kind = kind
        self.table = table
        self.pk = pk
        self.record = record
        self.new_value = new_value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WriteIntent({self.kind}, {self.table.name}, {self.pk!r})"


class ScanResult:
    """Rows returned by a scan plus the number of records examined."""

    __slots__ = ("rows", "examined")

    def __init__(self, rows: list[Row], examined: int) -> None:
        self.rows = rows
        self.examined = examined

    def __iter__(self):
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


class OCCSession:
    """Read/write sets of one root transaction within one container."""

    def __init__(self, txn_id: int, container_id: int) -> None:
        self.txn_id = txn_id
        self.container_id = container_id
        # id(record) -> (record, tid seen at first read)
        self._reads: dict[int, tuple[VersionedRecord, int]] = {}
        # (id(table), pk) -> WriteIntent
        self._writes: dict[tuple[int, tuple], WriteIntent] = {}
        # (object with .structure_version, version seen) — phantom guard
        self._node_checks: dict[int, tuple[Any, int]] = {}
        self._locked: list[VersionedRecord] = []
        self.finished = False

    # ------------------------------------------------------------------
    # Bookkeeping helpers
    # ------------------------------------------------------------------

    @property
    def read_count(self) -> int:
        return len(self._reads)

    @property
    def write_count(self) -> int:
        return len(self._writes)

    def _register_read(self, record: VersionedRecord) -> None:
        key = id(record)
        if key not in self._reads:
            self._reads[key] = (record, record.tid)

    def _register_node(self, node: Any) -> None:
        key = id(node)
        if key not in self._node_checks:
            self._node_checks[key] = (node, node.structure_version)

    def _intent_for(self, table: Table, pk: tuple) -> WriteIntent | None:
        return self._writes.get((id(table), pk))

    def _set_intent(self, intent: WriteIntent) -> None:
        self._writes[(id(intent.table), intent.pk)] = intent

    def _drop_intent(self, table: Table, pk: tuple) -> None:
        self._writes.pop((id(table), pk), None)

    # ------------------------------------------------------------------
    # Transactional data operations (the record manager interface)
    # ------------------------------------------------------------------

    def read(self, table: Table, pk: tuple) -> tuple[Row | None, int]:
        """Point read by primary key; returns (row or None, examined)."""
        intent = self._intent_for(table, pk)
        if intent is not None:
            if intent.kind == _DELETE:
                return None, 1
            assert intent.new_value is not None
            return dict(intent.new_value), 1
        record = table.get_record(pk)
        if record is None:
            # A miss is also a predicate read: guard against a phantom
            # insert of this key by validating the table structure.
            self._register_node(table)
            return None, 1
        self._register_read(record)
        return record.snapshot(), 1

    def insert(self, table: Table, row: Mapping[str, Any]) -> int:
        """Buffer an insert; duplicate keys visible to this transaction
        raise immediately (concurrent duplicates surface at commit)."""
        validated = table.schema.validate_row(row)
        pk = table.schema.primary_key_of(validated)
        intent = self._intent_for(table, pk)
        if intent is not None:
            if intent.kind == _DELETE:
                # delete + insert collapses to an update of the record.
                self._set_intent(WriteIntent(
                    _UPDATE, table, pk, intent.record, validated))
                return 1
            raise DuplicateKeyError(
                f"duplicate key {pk!r} in {table.name!r} (own write)"
            )
        if table.get_record(pk) is not None:
            raise DuplicateKeyError(
                f"duplicate key {pk!r} in {table.name!r}"
            )
        self._set_intent(WriteIntent(_INSERT, table, pk, None, validated))
        return 1

    def update(self, table: Table, pk: tuple,
               assignments: Mapping[str, Any]) -> tuple[Row, int]:
        """Read-modify-write one row; returns (new image, examined)."""
        table.schema.validate_assignments(assignments)
        current, examined = self.read(table, pk)
        if current is None:
            raise RecordNotFound(
                f"update of missing key {pk!r} in {table.name!r}"
            )
        new_value = dict(current)
        new_value.update(assignments)
        intent = self._intent_for(table, pk)
        if intent is not None:
            # Merge into the existing insert/update intent.
            self._set_intent(WriteIntent(
                intent.kind, table, pk, intent.record, new_value))
        else:
            record = table.get_record(pk)
            assert record is not None  # read() above registered it
            self._set_intent(WriteIntent(
                _UPDATE, table, pk, record, new_value))
        return new_value, examined

    def delete(self, table: Table, pk: tuple) -> int:
        """Buffer a delete; returns records examined."""
        intent = self._intent_for(table, pk)
        if intent is not None:
            if intent.kind == _INSERT:
                self._drop_intent(table, pk)
                return 1
            if intent.kind == _DELETE:
                raise RecordNotFound(
                    f"delete of missing key {pk!r} in {table.name!r}"
                )
            self._set_intent(WriteIntent(
                _DELETE, table, pk, intent.record, None))
            return 1
        record = table.get_record(pk)
        if record is None:
            self._register_node(table)
            raise RecordNotFound(
                f"delete of missing key {pk!r} in {table.name!r}"
            )
        self._register_read(record)
        self._set_intent(WriteIntent(_DELETE, table, pk, record, None))
        return 1

    def scan(self, table: Table, predicate: Predicate = ALWAYS,
             index: str | None = None, low: tuple | None = None,
             high: tuple | None = None, reverse: bool = False,
             limit: int | None = None) -> ScanResult:
        """Predicate/range scan with write-set overlay.

        Every candidate examined joins the read set (conservative
        predicate-read validation); the index or table structure version
        is checked at commit for phantom inserts/deletes.
        """
        candidates, sort_keys, examined = self._collect_candidates(
            table, predicate, index, low, high)
        rows: list[tuple[Any, Row]] = []
        for record in candidates:
            intent = self._intent_for(table, record.key)
            if intent is not None:
                if intent.kind == _DELETE:
                    continue
                image: Row | None = dict(intent.new_value or {})
            else:
                self._register_read(record)
                image = record.snapshot()
            if image is not None and predicate.matches(image):
                rows.append((sort_keys(image, record.key), image))
        # Own inserts join the result set.
        for intent in list(self._writes.values()):
            if intent.table is table and intent.kind == _INSERT:
                image = dict(intent.new_value or {})
                if predicate.matches(image) and self._in_range(
                        table, index, image, low, high):
                    rows.append((sort_keys(image, intent.pk), image))
                    examined += 1
        rows.sort(key=lambda pair: pair[0], reverse=reverse)
        out = [row for __, row in rows]
        if limit is not None:
            out = out[:limit]
        return ScanResult(out, examined)

    def _collect_candidates(self, table: Table, predicate: Predicate,
                            index: str | None, low: tuple | None,
                            high: tuple | None):
        """Pick an access path; returns (records, sort_key_fn, examined)."""
        if index is not None:
            idx = table.index(index)
            self._register_node(idx)
            if isinstance(idx, OrderedIndex):
                pks = list(idx.range(low, high))
            else:
                if low is None or low != high:
                    raise QueryError(
                        f"hash index {index!r} supports equality only; "
                        "pass low == high"
                    )
                pks = list(idx.lookup(low))
            records = list(table.records_for_pks(pks))
            columns = idx.spec.columns

            def sort_key(image: Row, pk: tuple):
                return (tuple(image.get(c) for c in columns), pk)

            return records, sort_key, len(records)

        bindings = predicate.equality_bindings()
        for idx in table.indexes.values():
            if isinstance(idx, HashIndex) and all(
                    c in bindings for c in idx.spec.columns):
                self._register_node(idx)
                key = tuple(bindings[c] for c in idx.spec.columns)
                records = list(table.records_for_pks(idx.lookup(key)))
                return records, (lambda image, pk: pk), len(records)

        self._register_node(table)
        records = list(table.iter_records())
        return records, (lambda image, pk: pk), len(records)

    @staticmethod
    def _in_range(table: Table, index: str | None, image: Row,
                  low: tuple | None, high: tuple | None) -> bool:
        """Does an own-insert fall inside an explicit index range?"""
        if index is None:
            return True
        idx = table.index(index)
        key = idx.key_of(image)
        if low is not None and key[: len(low)] < low:
            return False
        if high is not None and key[: len(high)] > high:
            return False
        return True

    # ------------------------------------------------------------------
    # Validation / installation hooks (driven by ConcurrencyManager)
    # ------------------------------------------------------------------

    def sorted_intents(self) -> list[WriteIntent]:
        """Write intents in deterministic global lock order."""
        return sorted(
            self._writes.values(),
            key=lambda w: (w.table.name, repr(w.pk)),
        )

    def read_entries(self) -> Iterable[tuple[VersionedRecord, int]]:
        return self._reads.values()

    def node_entries(self) -> Iterable[tuple[Any, int]]:
        return self._node_checks.values()

    def remember_lock(self, record: VersionedRecord) -> None:
        self._locked.append(record)

    def release_locks(self) -> None:
        for record in self._locked:
            record.unlock(self.txn_id)
        self._locked.clear()

    def max_observed_tid(self) -> int:
        tids = [tid for __, tid in self._reads.values()]
        for intent in self._writes.values():
            if intent.record is not None:
                tids.append(intent.record.tid)
        return max(tids, default=0)


class ConcurrencyManager:
    """Per-container OCC engine: validation, installation, TIDs."""

    def __init__(self, container_id: int, epochs: EpochManager,
                 enabled: bool = True) -> None:
        self.container_id = container_id
        self.enabled = enabled
        self.tids = TidGenerator(epochs)
        self.validations = 0
        self.validation_failures = 0
        #: Optional redo log (see repro.durability): when set, every
        #: installed write is logged with its commit TID.
        self.redo_log: Any = None

    def begin_session(self, txn_id: int) -> OCCSession:
        return OCCSession(txn_id, self.container_id)

    def validate(self, session: OCCSession) -> int:
        """Phase-1 validation; locks the write set.

        Returns the TID floor for the commit TID.  Raises
        :class:`ValidationAbort` (after releasing locks) on conflict.
        """
        self.validations += 1
        if not self.enabled:
            return 0
        try:
            for intent in session.sorted_intents():
                self._lock_intent(session, intent)
            for record, tid_seen in session.read_entries():
                if record.tid != tid_seen:
                    raise ValidationAbort(
                        f"stale read of {record.key!r} in txn "
                        f"{session.txn_id}"
                    )
                if record.is_locked_by_other(session.txn_id):
                    raise ValidationAbort(
                        f"read of {record.key!r} locked by concurrent "
                        f"committer"
                    )
            for node, version_seen in session.node_entries():
                if node.structure_version != version_seen:
                    raise ValidationAbort(
                        "phantom: index/table structure changed under a "
                        f"scan of txn {session.txn_id}"
                    )
        except ValidationAbort:
            self.validation_failures += 1
            session.release_locks()
            raise
        return session.max_observed_tid()

    def _lock_intent(self, session: OCCSession, intent: WriteIntent) -> None:
        if intent.kind == _INSERT:
            live = intent.table.get_record(intent.pk)
            if live is not None:
                raise ValidationAbort(
                    f"concurrent insert won for key {intent.pk!r} in "
                    f"{intent.table.name!r}"
                )
            placeholder = intent.table.ensure_placeholder(intent.pk)
            if not placeholder.lock(session.txn_id):
                raise ValidationAbort(
                    f"insert placeholder {intent.pk!r} locked by "
                    "concurrent committer"
                )
            session.remember_lock(placeholder)
            intent.record = placeholder
        else:
            record = intent.record
            assert record is not None
            if not record.lock(session.txn_id):
                raise ValidationAbort(
                    f"write lock on {record.key!r} held by concurrent "
                    "committer"
                )
            session.remember_lock(record)

    def install(self, session: OCCSession, commit_tid: int) -> int:
        """Phase-2 write installation; returns number of writes."""
        count = 0
        log_entries = []
        if self.enabled or session.write_count:
            for intent in session.sorted_intents():
                if intent.kind == _INSERT:
                    assert intent.new_value is not None
                    intent.table.install_insert(intent.new_value, commit_tid)
                elif intent.kind == _UPDATE:
                    assert intent.record is not None
                    assert intent.new_value is not None
                    intent.table.install_update(
                        intent.record, intent.new_value, commit_tid)
                else:
                    assert intent.record is not None
                    intent.table.install_delete(intent.record, commit_tid)
                count += 1
                if self.redo_log is not None:
                    from repro.durability.wal import RedoEntry

                    log_entries.append(RedoEntry(
                        reactor=intent.table.owner or "",
                        table=intent.table.name,
                        kind=intent.kind,
                        pk=intent.pk,
                        row=dict(intent.new_value)
                        if intent.new_value is not None else None,
                    ))
        if self.redo_log is not None and log_entries:
            self.redo_log.append(commit_tid, log_entries)
        session.release_locks()
        session.finished = True
        self.tids.advance_to(commit_tid)
        return count

    def abort(self, session: OCCSession) -> None:
        """Drop all buffered writes and release any held locks."""
        session.release_locks()
        session.finished = True
