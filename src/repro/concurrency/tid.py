"""Transaction identifiers and epochs (Silo-style).

Silo assigns each committed transaction a TID composed of an epoch
number and a per-worker sequence, such that TIDs order transactions
consistently with their serial order within an epoch.  Our simulated
reproduction keeps the same structure — ``(epoch << SEQ_BITS) | seq`` —
with a per-container sequence counter.  Epochs advance on virtual-time
boundaries; they matter for TID comparison semantics and are exercised
by tests, though we do not implement durability (the paper's prototype
does not either).
"""

from __future__ import annotations

SEQ_BITS = 32
SEQ_MASK = (1 << SEQ_BITS) - 1

#: Virtual microseconds per epoch (Silo uses 40 ms wall-clock epochs).
EPOCH_PERIOD_US = 40_000.0


def make_tid(epoch: int, seq: int) -> int:
    """Pack an epoch and sequence number into a TID."""
    if seq > SEQ_MASK:
        raise OverflowError("sequence number overflow within epoch")
    return (epoch << SEQ_BITS) | seq


def tid_epoch(tid: int) -> int:
    return tid >> SEQ_BITS


def tid_seq(tid: int) -> int:
    return tid & SEQ_MASK


class EpochManager:
    """Advances the global epoch with virtual time."""

    __slots__ = ("period_us", "_epoch")

    def __init__(self, period_us: float = EPOCH_PERIOD_US) -> None:
        if period_us <= 0:
            raise ValueError("epoch period must be positive")
        self.period_us = period_us
        self._epoch = 1

    @property
    def epoch(self) -> int:
        return self._epoch

    def observe_time(self, now_us: float) -> int:
        """Advance the epoch to cover the given virtual time."""
        target = 1 + int(now_us / self.period_us)
        if target > self._epoch:
            self._epoch = target
        return self._epoch


class TidGenerator:
    """Per-container monotonic TID source.

    The commit TID of a transaction must exceed every TID in its read
    and write sets (Silo's rule); callers pass that floor via
    ``at_least``.
    """

    __slots__ = ("_epochs", "_last")

    def __init__(self, epochs: EpochManager) -> None:
        self._epochs = epochs
        self._last = make_tid(epochs.epoch, 0)

    @property
    def last(self) -> int:
        return self._last

    def next_tid(self, now_us: float, at_least: int = 0) -> int:
        epoch = self._epochs.observe_time(now_us)
        floor = max(self._last, at_least, make_tid(epoch, 0))
        tid = make_tid(max(tid_epoch(floor), epoch),
                       tid_seq(floor) + 1)
        self._last = tid
        return tid

    def advance_to(self, tid: int) -> None:
        """Raise the local counter (used after 2PC picks a global TID)."""
        if tid > self._last:
            self._last = tid
