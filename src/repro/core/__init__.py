"""The reactor programming model: types, contexts, deployments, ReactDB.

Public entry points:

* :class:`~repro.core.reactor.ReactorType` — declare schemas and
  procedures for a class of reactors;
* :class:`~repro.core.database.ReactorDatabase` — instantiate a reactor
  database on a simulated machine under a chosen deployment;
* deployment factories for the paper's three architectures.

Public exports: :class:`ReactorType` / :class:`Reactor`,
:class:`ReactorContext`, :class:`ReactorDatabase`,
:class:`DeploymentConfig` with :class:`ContainerSpec`, the placement
policies (:class:`Placement`, :class:`RangePlacement`,
:class:`ExplicitPlacement`), the routing constants
(:data:`ROUND_ROBIN`, :data:`AFFINITY`) and the S1/S2/S3 deployment
factories.  Live reconfiguration is reached through the database
handle: ``db.migrate(reactor, dst)`` / ``db.rebalance()`` (see
:mod:`repro.migration`).
"""

from repro.core.context import ReactorContext
from repro.core.database import ReactorDatabase
from repro.core.deployment import (
    AFFINITY,
    ROUND_ROBIN,
    ContainerSpec,
    DeploymentConfig,
    ExplicitPlacement,
    Placement,
    RangePlacement,
    shared_everything_with_affinity,
    shared_everything_without_affinity,
    shared_nothing,
)
from repro.core.reactor import Reactor, ReactorType

__all__ = [
    "ReactorType",
    "Reactor",
    "ReactorContext",
    "ReactorDatabase",
    "DeploymentConfig",
    "ContainerSpec",
    "Placement",
    "RangePlacement",
    "ExplicitPlacement",
    "shared_everything_without_affinity",
    "shared_everything_with_affinity",
    "shared_nothing",
    "ROUND_ROBIN",
    "AFFINITY",
]
