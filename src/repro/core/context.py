"""Execution contexts for reactor procedures.

A :class:`ReactorContext` is the first argument of every procedure.  It
provides:

* **declarative queries over the reactor's own relations** —
  :meth:`select`, :meth:`lookup`, :meth:`insert`, :meth:`update`,
  :meth:`delete`, :meth:`run_query` — executed under the root
  transaction's OCC session (read-your-writes, validated at commit);
* **asynchronous procedure calls to other reactors** — ``yield
  ctx.call(name, proc, *args)`` returns a future, ``yield
  ctx.get(future)`` waits on it (paper syntax: ``proc(args) on reactor
  name``);
* **simulated computation** — ``yield ctx.compute(micros)`` for CPU
  kernels such as ``sim_risk``;
* utilities: :meth:`my_name`, :attr:`now`, :attr:`rng`, :meth:`abort`.

Data operations do not need ``yield``: they execute immediately for
data purposes and accrue simulated CPU cost that the executor charges
at the next suspension point.  All cross-reactor state access *must*
go through :meth:`call` — the context physically cannot reach another
reactor's tables, enforcing state encapsulation by construction.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Mapping

from repro.errors import UserAbort
from repro.relational.predicate import ALWAYS, Predicate
from repro.relational.query import Query, Row
from repro.runtime.effects import CallEffect, ChargeEffect, GetEffect
from repro.runtime.futures import SimFuture


def _as_pk(pk: Any) -> tuple:
    """Normalize a primary key argument to a tuple."""
    if isinstance(pk, tuple):
        return pk
    return (pk,)


class ReactorContext:
    """Procedure-facing API bound to one reactor within one frame."""

    __slots__ = ("_reactor", "_root", "_task", "_costs", "_rng",
                 "_session_cache")

    def __init__(self, reactor: Any, root: Any, task: Any,
                 costs: Any) -> None:
        self._reactor = reactor
        self._root = root
        self._task = task
        self._costs = costs
        self._rng: random.Random | None = None
        self._session_cache: Any = None

    # ------------------------------------------------------------------
    # Identity and environment
    # ------------------------------------------------------------------

    def my_name(self) -> str:
        """The name of the reactor this procedure executes on."""
        return self._reactor.name

    @property
    def reactor_type(self) -> str:
        return self._reactor.rtype.name

    @property
    def now(self) -> float:
        """Current virtual time in microseconds."""
        return self._task.executor.scheduler.now

    @property
    def rng(self) -> random.Random:
        """Deterministic per-transaction random stream.

        Procedures may be nondeterministic (the paper allows it, citing
        MCDB-R); seeding from the root transaction id keeps whole
        simulation runs reproducible anyway.
        """
        if self._rng is None:
            self._rng = random.Random(
                f"txn-{self._root.txn_id}/{self._reactor.name}")
        return self._rng

    @property
    def costs(self) -> Any:
        return self._costs

    def abort(self, reason: str = "application abort") -> None:
        """Abort the root transaction (user-defined abort condition)."""
        raise UserAbort(reason)

    # ------------------------------------------------------------------
    # Cross-reactor asynchronous procedure calls
    # ------------------------------------------------------------------

    def call(self, reactor_name: str, proc_name: str, *args: Any,
             **kwargs: Any) -> CallEffect:
        """Asynchronous call: ``fut = yield ctx.call(...)``.

        The paper's ``proc(args) on reactor name`` syntax.  Yields a
        :class:`~repro.runtime.futures.SimFuture`; the call executes
        synchronously inline when the target reactor is served by the
        current transaction executor (self-calls and shared-everything
        deployments), asynchronously on the target executor otherwise.
        """
        return CallEffect(reactor_name, proc_name, args, kwargs)

    def get(self, future: SimFuture) -> GetEffect:
        """Wait for a future: ``value = yield ctx.get(fut)``."""
        return GetEffect(future)

    def compute(self, micros: float) -> ChargeEffect:
        """Consume ``micros`` of simulated CPU: ``yield ctx.compute(x)``."""
        return ChargeEffect(micros, "exec")

    def simulate_random_work(self, n_randoms: int) -> ChargeEffect:
        """CPU charge equivalent to generating ``n_randoms`` numbers.

        Models the ``sim_risk`` kernel and TPC-C stock-replenishment
        delays exactly as the paper's experiments do.
        """
        return ChargeEffect(n_randoms * self._costs.rand_cost, "exec")

    # ------------------------------------------------------------------
    # Declarative queries on the encapsulated relations
    # ------------------------------------------------------------------

    @property
    def _session(self) -> Any:
        # Cached for the context's lifetime (one frame): the session
        # is fixed per (root, container) and recorders attach between
        # runs, never mid-frame — resolving it once per data op was
        # pure interpreter overhead on the hottest path there is.
        session = self._session_cache
        if session is not None:
            return session
        session = self._root.session_for(self._reactor.container)
        recorder = self._reactor.container.database.history_recorder
        if recorder is not None:
            session = recorder.wrap(session, self._reactor, self._task)
        self._session_cache = session
        return session

    def _charge_ops(self, unit_cost: float, count: int = 1) -> None:
        factor = self._root.touched_reactors.get(
            self._reactor.name, 1.0)
        self._task.pending_charge += unit_cost * count * factor

    def lookup(self, table_name: str, pk: Any) -> Row | None:
        """Point read by primary key; ``None`` when absent."""
        table = self._reactor.table(table_name)
        row, examined = self._session.read(table, _as_pk(pk))
        self._charge_ops(self._costs.read_cost, max(examined, 1))
        return row

    def multi_lookup(self, table_name: str,
                     pks: Iterable[Any]) -> list[Row | None]:
        """Vectorized point reads by primary key on one relation.

        Returns images aligned with ``pks`` (``None`` for missing
        keys).  Equivalent to ``[lookup(table_name, pk) for pk in
        pks]`` — identical footprint, identical recorded history,
        identical total CPU charge — but served by the session's
        single-pass :meth:`~repro.concurrency.base.CCSession.multi_read`.
        """
        table = self._reactor.table(table_name)
        keys = [pk if isinstance(pk, tuple) else (pk,) for pk in pks]
        rows, examined = self._session.multi_read(table, keys)
        self._charge_ops(self._costs.read_cost, max(examined, 1))
        return rows

    def select(self, table_name: str, where: Predicate = ALWAYS,
               index: str | None = None, low: tuple | None = None,
               high: tuple | None = None, reverse: bool = False,
               limit: int | None = None) -> list[Row]:
        """Predicate/range scan over one relation of this reactor."""
        table = self._reactor.table(table_name)
        result = self._session.scan(
            table, where, index=index, low=low, high=high,
            reverse=reverse, limit=limit)
        self._charge_ops(self._costs.scan_row_cost,
                         max(result.examined, 1))
        return result.rows

    def select_one(self, table_name: str, where: Predicate = ALWAYS,
                   **scan_kwargs: Any) -> Row | None:
        """First matching row or ``None`` (SELECT ... INTO idiom)."""
        rows = self.select(table_name, where, limit=1, **scan_kwargs)
        return rows[0] if rows else None

    def run_query(self, table_name: str, query: Query,
                  where: Predicate = ALWAYS) -> list[Row]:
        """Run a :class:`~repro.relational.query.Query` pipeline
        (grouping, aggregates, ordering) over this reactor's rows."""
        rows = self.select(table_name, where)
        return query.run(rows)

    def insert(self, table_name: str, row: Mapping[str, Any]) -> None:
        table = self._reactor.table(table_name)
        examined = self._session.insert(table, row)
        self._charge_ops(self._costs.insert_cost, examined)

    def update(self, table_name: str, pk: Any,
               values: Mapping[str, Any]) -> Row:
        """Read-modify-write one row by primary key; returns the new
        image.  Raises :class:`~repro.errors.RecordNotFound` if absent."""
        table = self._reactor.table(table_name)
        new_row, examined = self._session.update(
            table, _as_pk(pk), values)
        self._charge_ops(self._costs.write_cost, max(examined, 1))
        return new_row

    def update_where(self, table_name: str, where: Predicate,
                     values: Mapping[str, Any]) -> int:
        """Update all rows matching a predicate; returns the count."""
        table = self._reactor.table(table_name)
        rows = self.select(table_name, where)
        for row in rows:
            pk = table.schema.primary_key_of(row)
            self._session.update(table, pk, values)
        self._charge_ops(self._costs.write_cost, len(rows))
        return len(rows)

    def delete(self, table_name: str, pk: Any) -> None:
        table = self._reactor.table(table_name)
        examined = self._session.delete(table, _as_pk(pk))
        self._charge_ops(self._costs.delete_cost, examined)

    def delete_where(self, table_name: str, where: Predicate) -> int:
        """Delete all rows matching a predicate; returns the count."""
        table = self._reactor.table(table_name)
        rows = self.select(table_name, where)
        for row in rows:
            pk = table.schema.primary_key_of(row)
            self._session.delete(table, pk)
        self._charge_ops(self._costs.delete_cost, len(rows))
        return len(rows)

    def sql(self, text: str, *params: Any) -> Any:
        """Execute a SQL statement against this reactor's relations.

        The stored-procedure surface of the paper's examples::

            rows = ctx.sql("SELECT SUM(value) AS exposure FROM orders "
                           "WHERE settled = 'N'")
            ctx.sql("INSERT INTO orders (wallet, value, settled) "
                    "VALUES (?, ?, 'N')", wallet, value)

        SELECT returns rows; UPDATE/DELETE return affected counts.
        """
        from repro.relational.sql import execute

        return execute(self, text, params)

    def table_names(self) -> Iterable[str]:
        return self._reactor.catalog.table_names()
