"""ReactDB: the reactor database facade.

:class:`ReactorDatabase` assembles everything: it takes the reactor
declarations (names and types — the purely logical application model)
and a :class:`~repro.core.deployment.DeploymentConfig` (the physical
architecture choice), builds containers, transaction executors and
reactor instances on the simulated machine, and exposes the client
driver interface:

* :meth:`submit` — asynchronous invocation with a completion callback
  (used by workload workers);
* :meth:`run` — synchronous convenience for applications/examples:
  drives the simulation until the transaction finishes and returns the
  procedure's result (raising on abort);
* :meth:`load` — non-transactional bulk loading for benchmark setup.

The same application (reactor types + procedures + declarations) runs
unchanged under any deployment — asserting that is one of the
integration test suites.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.concurrency.base import create_cc_scheme
from repro.concurrency.tid import EpochManager
from repro.core.deployment import ROUND_ROBIN, DeploymentConfig
from repro.core.reactor import Reactor, ReactorType
from repro.errors import (
    DeploymentError,
    TransactionAbort,
    UnknownReactorError,
)
from repro.runtime.backend import create_backend
from repro.runtime.container import Container
from repro.runtime.executor import Invocation, TransactionExecutor
from repro.runtime.transaction import RootTransaction, TxnStats
from repro.sim.scheduler import SimScheduler
from repro.storage.store import StorageCoordinator
from repro.telemetry import Telemetry
from repro.telemetry.facade import ABORT_REASONS


class ReactorDatabase:
    """An instantiated reactor database on a simulated machine."""

    def __init__(self, deployment: DeploymentConfig,
                 reactors: Sequence[tuple[str, ReactorType]],
                 scheduler: SimScheduler | None = None) -> None:
        self.deployment = deployment
        #: The execution backend (see :mod:`repro.runtime.backend`):
        #: ``deployment.backend`` selects it; passing an explicit
        #: ``scheduler`` (tests, shared-clock experiments) overrides.
        self.scheduler = scheduler or create_backend(deployment)
        self.backend_name = getattr(self.scheduler, "name", "sim")
        self.costs = deployment.machine.costs
        self.epochs = EpochManager()
        #: The multi-version storage engine state: pinned snapshots of
        #: in-flight read-only roots (the GC watermark source), version
        #: counters, and the optional snapshot-read audit log.  Shared
        #: by primary, replica, and migration-successor tables.
        self.storage = StorageCoordinator()
        #: Are read-only roots served from snapshots?  (``mvocc`` or
        #: the deployment's ``snapshot_reads`` toggle.)
        self.snapshot_reads_enabled = deployment.snapshot_reads_effective
        self.containers: list[Container] = []
        self.executors: list[TransactionExecutor] = []
        self._reactors: dict[str, Reactor] = {}
        self._txn_counter = 0
        self._root_route_counter = 0
        #: Optional operation-level history capture for
        #: serializability audits (see repro.formal.audit).
        self.history_recorder: Any = None
        #: Durability manager once enable_durability() ran (replication
        #: enables it implicitly).
        self.durability: Any = None
        #: Replication manager when the deployment asks for replicas.
        self.replication: Any = None
        #: Online-migration manager (always attached; see
        #: repro.migration).
        self.migration: Any = None
        #: The unified telemetry facade (metrics registry + span
        #: tracer + exporters).  Created before ``_build`` so every
        #: manager can register its collectors during construction.
        self.telemetry = Telemetry(self, deployment.telemetry)
        self._build(reactors)

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------

    def _build(self, reactors: Sequence[tuple[str, ReactorType]]) -> None:
        deployment = self.deployment
        if deployment.total_executors > \
                deployment.machine.hardware_threads:
            raise DeploymentError(
                f"deployment wants {deployment.total_executors} "
                f"executors but machine "
                f"{deployment.machine.name!r} has only "
                f"{deployment.machine.hardware_threads} hardware threads"
            )
        core_id = 0
        for cid, spec in enumerate(deployment.containers):
            concurrency = create_cc_scheme(
                deployment.cc_scheme, cid, self.epochs)
            container = Container(cid, self, concurrency)
            for __ in range(spec.executors):
                executor = container.add_executor(core_id, spec.mpl)
                self.executors.append(executor)
                core_id += 1
            self.containers.append(container)
        #: first core id available for client workers.
        self.first_worker_core = core_id

        n_containers = len(self.containers)
        for index, (name, rtype) in enumerate(reactors):
            if name in self._reactors:
                raise DeploymentError(f"duplicate reactor name {name!r}")
            reactor = Reactor(name, rtype)
            self.storage.adopt(reactor)
            cid = deployment.placement.container_for(
                name, index, n_containers)
            if not 0 <= cid < n_containers:
                raise DeploymentError(
                    f"placement put reactor {name!r} in container {cid}, "
                    f"but only {n_containers} exist"
                )
            container = self.containers[cid]
            reactor.container = container
            executor = container.executors[
                index % len(container.executors)]
            reactor.affinity_executor = executor
            if deployment.pin_reactors:
                reactor.pinned_executor = executor
            self._reactors[name] = reactor

        if deployment.durability.enabled:
            # Attach before replication so the configured
            # durability_mode wins: replication enables durability
            # implicitly (idempotently) with the legacy async default.
            from repro.durability.recovery import enable_durability

            enable_durability(self, mode=deployment.durability.mode)

        if deployment.replication.enabled:
            from repro.replication.manager import ReplicationManager

            self.replication = ReplicationManager(
                self, deployment.replication)

        # Deferred for the same reason as the replication manager: the
        # migration layer reaches back into core/runtime modules.
        from repro.migration.manager import MigrationManager

        self.migration = MigrationManager(self, deployment.migration)

        self.telemetry.attach_collectors()

        # Wall-clock backends spawn their per-container worker threads
        # only once the container count is known; the sim backend has
        # no attach hook.
        attach = getattr(self.scheduler, "attach", None)
        if attach is not None:
            attach(len(self.containers))

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------

    def reactor(self, name: str) -> Reactor:
        try:
            return self._reactors[name]
        except KeyError:
            raise UnknownReactorError(
                f"no reactor named {name!r} was declared"
            ) from None

    def reactor_names(self) -> list[str]:
        return sorted(self._reactors)

    def __contains__(self, name: str) -> bool:
        return name in self._reactors

    # ------------------------------------------------------------------
    # Client driver interface
    # ------------------------------------------------------------------

    def submit(self, reactor_name: str, proc_name: str, *args: Any,
               on_done: Callable[..., None] | None = None,
               read_only: bool | None = None,
               **kwargs: Any) -> RootTransaction:
        """Send a root transaction into the system (asynchronous).

        ``on_done(root, committed, reason, result)`` fires (in virtual
        time) when the transaction completes.

        ``read_only`` marks the root as read-only (writes abort); when
        omitted it is inferred from the procedure's declaration
        (``@rtype.procedure(read_only=True)``).  Under a deployment
        with ``read_from_replicas``, read-only roots are routed to a
        replica of their home container — bounded-staleness reads on
        separate simulated cores.
        """
        # Transaction-id assignment, routing counters, and telemetry
        # are shared bookkeeping: on a multi-threaded backend the
        # client enters under the state guard; the sim backend (lock
        # is None) keeps its pre-backend straight-line path.
        if self.scheduler.lock is None:
            return self._submit(reactor_name, proc_name, args, kwargs,
                                on_done, read_only)
        with self.scheduler.state_guard():
            return self._submit(reactor_name, proc_name, args, kwargs,
                                on_done, read_only)

    def _submit(self, reactor_name: str, proc_name: str,
                args: tuple, kwargs: dict[str, Any],
                on_done: Callable[..., None] | None,
                read_only: bool | None) -> RootTransaction:
        reactor = self.reactor(reactor_name)
        if self.migration is not None:
            self.migration.note_submit(reactor_name)
        if read_only is None:
            read_only = reactor.rtype.is_read_only(proc_name)
        if read_only and self.replication is not None:
            shadow = self.replication.route_read(reactor)
            if shadow is not None:
                reactor = shadow
        self._txn_counter += 1
        root = RootTransaction(
            txn_id=self._txn_counter,
            procedure=proc_name,
            reactor_name=reactor_name,
            start_time=self.scheduler.now,
        )
        root.read_only = bool(read_only)
        self.telemetry.trace_root(root, self.scheduler.now)
        invocation = Invocation(root, reactor, proc_name, args, kwargs,
                                subtxn_id=0, on_root_done=on_done)
        if reactor.migrating:
            # Mid-migration: the root parks in the migration queue and
            # replays at the destination after the routing flip.
            self.migration.park_root(reactor.name, invocation)
            return root
        if reactor.container.failed:
            # Failed primary with no promoted replacement yet: refuse
            # immediately rather than queueing on a dead executor.
            root.finished = True
            if self.replication is not None:
                self.replication.stats.failover_aborts += 1
            reason = (f"container {reactor.container.container_id} "
                      "failed")
            self.telemetry.note_root_done(root, False, reason,
                                          self.scheduler.now)
            if on_done is not None:
                self.scheduler.soon(on_done, root, False, reason, None)
            return root
        executor = self._route_root(reactor)
        if not self.scheduler.admit_root(executor):
            # Bounded intake (wall-clock backends): the target
            # executor's work queue is at its admission bound, so shed
            # the root at the door instead of growing the queue without
            # limit.  Sheds count as refused roots, never as aborts.
            root.finished = True
            reason = (f"container {reactor.container.container_id} "
                      "backpressure: admission queue full")
            self.telemetry.note_root_done(root, False, reason,
                                          self.scheduler.now)
            if on_done is not None:
                self.scheduler.soon(on_done, root, False, reason, None)
            return root
        executor.submit(invocation)
        return root

    def _route_root(self, reactor: Reactor) -> TransactionExecutor:
        container = reactor.container
        if self.deployment.routing == ROUND_ROBIN:
            executor = container.executors[
                self._root_route_counter % len(container.executors)]
            self._root_route_counter += 1
            return executor
        return reactor.affinity_executor

    # ------------------------------------------------------------------
    # Multi-version snapshot reads (repro.storage / repro.concurrency.
    # mvcc)
    # ------------------------------------------------------------------

    def tid_watermark(self) -> int:
        """The global commit-TID watermark: the highest TID any
        container has issued (every commit is fully installed at or
        below it — installs are single scheduler events)."""
        return max(c.concurrency.tids.last for c in self.containers)

    def begin_snapshot_session(self, root: RootTransaction,
                               container: Any):
        """A snapshot session for a read-only root in ``container``,
        or ``None`` when the deployment does not snapshot reads.

        The first session of a root pins its snapshot: on a primary,
        at the global TID watermark — every primary TID generator is
        then advanced to it, so every later commit anywhere exceeds
        the snapshot and the pinned state is a transaction-consistent
        prefix; on a replica, at the replica's applied watermark
        (bounded-staleness reads over its applied log prefix).  The
        pin also anchors version GC until the root completes.
        """
        if not self.snapshot_reads_enabled:
            return None
        if self.scheduler.lock is None:
            return self._begin_snapshot_session(root, container)
        # Pinning reads the global watermark and advances every
        # container's TID generator — cross-container state that a
        # wall-clock backend serializes under the state guard.
        with self.scheduler.state_guard():
            return self._begin_snapshot_session(root, container)

    def _begin_snapshot_session(self, root: RootTransaction,
                                container: Any):
        if root.snapshot_tid is None:
            if getattr(container, "role", None) == "replica":
                # Replica-scoped pin: retains history only on this
                # replica's shadows (the sole tables it can read).
                # The pin sits at the replica's *materialized*
                # position — its applied watermark, floored by any
                # migration seed watermark (re-homed shards are seeded
                # as-of the source watermark).
                snapshot_tid = max(container.applied_tid,
                                   getattr(container,
                                           "snapshot_floor", 0))
                self.storage.pin(root.txn_id, snapshot_tid,
                                 scope=container)
            else:
                snapshot_tid = self.tid_watermark()
                for other in self.containers:
                    other.concurrency.tids.advance_to(snapshot_tid)
                self.storage.pin(root.txn_id, snapshot_tid)
            root.snapshot_tid = snapshot_tid
        return container.concurrency.begin_snapshot_session(
            root.txn_id, root.snapshot_tid, storage=self.storage)

    def enable_snapshot_audit(self) -> list:
        """Record every snapshot read for black-box certification by
        :func:`repro.formal.audit.certify_snapshot_isolation`."""
        return self.storage.enable_audit()

    def gc_versions(self) -> int:
        """Explicit storage GC sweep: prune every version chain below
        the current watermark (everything, when no snapshot reader is
        in flight).  Install paths already prune incrementally; the
        sweep reclaims chains of records that are never written
        again.  Returns the number of versions dropped."""
        dropped = 0
        for table in self._all_tables():
            dropped += table.gc_versions(
                self.storage.keep_watermark(table.versioning_scope))
        return dropped

    def _all_tables(self):
        for reactor in self._reactors.values():
            yield from reactor.catalog
        if self.replication is not None:
            for group in self.replication.replicas.values():
                for replica in group:
                    for name in replica.shadow_names():
                        yield from replica.shadow(name).catalog

    def version_stats(self) -> dict[str, Any]:
        """Multi-version storage engine metrics.

        ``live_versions`` counts superseded versions currently
        retained on chains (primaries and replica shadows),
        ``gc_versions`` the versions pruned so far, and
        ``read_only_aborts`` the per-scheme abort count of read-only
        roots — 0 under ``mvocc`` by construction, the abort-free
        contract benchmarks assert.
        """
        registry = self.telemetry.registry
        return {
            "scheme": self.deployment.cc_scheme,
            "snapshot_reads_enabled": self.snapshot_reads_enabled,
            "live_versions": registry.value("storage_live_versions"),
            "versions_created":
                registry.value("storage_versions_created_total"),
            "gc_versions":
                registry.value("storage_versions_gced_total"),
            "snapshot_roots":
                registry.value("storage_snapshot_roots_total"),
            "snapshot_reads_served":
                registry.value("storage_snapshot_reads_total"),
            "pinned_snapshots":
                registry.value("storage_pinned_snapshots"),
            "read_only_aborts": dict(self.storage.stats
                                     .read_only_aborts),
        }

    def run(self, reactor_name: str, proc_name: str, *args: Any,
            **kwargs: Any) -> Any:
        """Execute one transaction to completion in virtual time.

        Returns the procedure's return value; raises
        :class:`~repro.errors.TransactionAbort` when the transaction
        aborts (user abort, dangerous structure, or validation
        failure).  Intended for applications and examples; benchmark
        workloads use :meth:`submit` with workers instead.
        """
        box: dict[str, Any] = {}

        def on_done(root: RootTransaction, committed: bool,
                    reason: str | None, result: Any) -> None:
            box["committed"] = committed
            box["reason"] = reason
            box["result"] = result

        self.submit(reactor_name, proc_name, *args,
                    on_done=on_done, **kwargs)
        self.scheduler.run()
        if "committed" not in box:
            raise TransactionAbort(
                "transaction did not complete; simulation stalled")
        if not box["committed"]:
            raise TransactionAbort(box["reason"] or "aborted")
        return box["result"]

    # ------------------------------------------------------------------
    # Bulk loading and inspection
    # ------------------------------------------------------------------

    def load(self, reactor_name: str, table_name: str,
             rows: Iterable[Mapping[str, Any]]) -> int:
        """Load rows without concurrency control (benchmark setup).

        Bulk loads bypass the redo log, so under replication they are
        mirrored to the reactor's replicas directly.
        """
        table = self.reactor(reactor_name).table(table_name)
        if self.replication is None and self.durability is None:
            count = 0
            for row in rows:
                table.load_row(row)
                count += 1
            return count
        if self.replication is not None:
            # The replica mirror keeps the rows, so it needs owned
            # copies; durability below only reads their keys.
            loaded: list = [dict(row) for row in rows]
            for row in loaded:
                table.load_row(row)
            if loaded:
                self.replication.on_bulk_load(reactor_name,
                                              table_name, loaded)
        else:
            loaded = []
            for row in rows:
                table.load_row(row)
                loaded.append(row)
        if loaded and self.durability is not None:
            # Loads bypass the redo log; the incremental-checkpoint
            # dirty tracker must still see their keys.
            self.durability.note_bulk_load(
                reactor_name, table_name,
                (table.schema.primary_key_of(row) for row in loaded))
        return len(loaded)

    def table_rows(self, reactor_name: str,
                   table_name: str) -> list[dict[str, Any]]:
        """Committed rows of one reactor's table (tests/inspection)."""
        return self.reactor(reactor_name).table(table_name).rows()

    def utilization_snapshot(self) -> dict[int, float]:
        """Cumulative busy time per executor core."""
        return {e.core_id: e.busy_time for e in self.executors}

    def abort_counts(self) -> dict[str, Any]:
        """Concurrency-control statistics across containers.

        Per-scheme, per-reason abort breakdown sourced from the CC
        stats counters: ``by_reason`` maps reason (validation failure,
        lock conflict, deadlock avoidance, wound, user abort, dangerous
        structure) to the number of abort events.  These are
        *events*, not aborted transactions: counters are per-container
        and summed, so a multi-container user abort contributes once
        per participant, and one doomed transaction can in principle
        appear under more than one reason.  For per-transaction abort
        rates use the benchmark summaries
        (:class:`repro.bench.metrics.RunSummary`).  The flat
        ``validations`` / ``validation_failures`` keys are the
        pre-refactor API and remain for compatibility.
        """
        registry = self.telemetry.registry
        by_reason = {reason: registry.value("cc_aborts_total",
                                            reason=reason)
                     for reason in ABORT_REASONS}
        out = {
            "scheme": self.deployment.cc_scheme,
            "validations": registry.value("cc_validations_total"),
            "validation_failures":
                registry.value("cc_validation_failures_total"),
            "by_reason": by_reason,
            "total_aborts": sum(by_reason.values()),
        }
        if self.replication is not None:
            out["replication"] = self.replication.stats_dict()
        return out

    def replication_stats(self) -> dict[str, Any]:
        """Replication lag / ack / failover metrics (empty when the
        deployment runs single-copy)."""
        if self.replication is None:
            return {"mode": "none", "replicas_per_container": 0}
        return self.replication.stats_dict()

    def durability_stats(self) -> dict[str, Any]:
        """Group-commit flush / checkpoint metrics (empty when the
        database runs without durability)."""
        if self.durability is None:
            return {"mode": "none"}
        return self.durability.stats_dict()

    # ------------------------------------------------------------------
    # Online migration and elastic rebalancing (repro.migration)
    # ------------------------------------------------------------------

    def migrate(self, reactor_name: str, dst_container: int,
                on_done: Callable[..., None] | None = None):
        """Move a reactor to another container while serving traffic.

        Returns a :class:`~repro.migration.manager.Migration` handle
        immediately; the drain/copy/flip/replay pipeline runs in
        virtual time (drive the scheduler).  New work submitted to the
        reactor during the migration queues at the destination and
        replays after the routing flip; replica shards are re-homed
        when the deployment replicates.
        """
        self._require_virtual("online migration")
        return self.migration.migrate(reactor_name, dst_container,
                                      on_done=on_done)

    def rebalance(self):
        """One elastic load check: migrate the hottest reactors off
        overloaded containers (see
        :class:`~repro.migration.config.MigrationConfig` for the
        imbalance threshold).  Returns the migrations started."""
        self._require_virtual("elastic rebalancing")
        return self.migration.rebalance()

    def migration_stats(self) -> dict[str, Any]:
        """Migration / rebalancing counters and per-event details."""
        return self.migration.stats_dict()

    def _require_virtual(self, feature: str) -> None:
        if not getattr(self.scheduler, "is_virtual", True):
            raise DeploymentError(
                f"{feature} requires the virtual-time 'sim' backend; "
                f"the {self.backend_name!r} backend does not support "
                "it yet (see docs/backends.md)"
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the execution backend's OS resources.

        A no-op on the sim backend (a discrete-event scheduler owns
        nothing); on the ``threads`` backend this stops and joins the
        per-container worker, client, and timer threads.  Idempotent.
        """
        shutdown = getattr(self.scheduler, "shutdown", None)
        if shutdown is not None:
            shutdown()


__all__ = ["ReactorDatabase", "RootTransaction", "TxnStats"]
