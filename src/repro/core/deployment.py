"""Deployment configuration: virtualization of database architecture.

The central systems claim of the paper is that database architecture —
where shared-everything and shared-nothing are just two points of a
spectrum — can be configured at deployment time *without changing
application code*.  A :class:`DeploymentConfig` captures one such
choice: how many containers, how many transaction executors per
container, how root transactions are routed, whether reactors are
pinned to a single executor, and which concurrency-control scheme the
containers run (``cc_scheme``: OCC, 2PL, or none — see
:mod:`repro.concurrency.base`).

The three strategies evaluated in the paper (Section 3.3) have factory
functions:

* :func:`shared_everything_without_affinity` (S1) — one container,
  round-robin routing, all sub-calls inline;
* :func:`shared_everything_with_affinity` (S2) — one container,
  affinity routing (a root transaction on a reactor always runs on the
  same executor), all sub-calls inline;
* :func:`shared_nothing` (S3) — one container *per* executor, reactors
  pinned, cross-container sub-calls migrate control.  ``-sync`` vs
  ``-async`` is a property of the application programs, not of the
  deployment.

Configs serialize to/from plain dicts (and therefore JSON files): an
infrastructure engineer edits a config file and bootstraps — no
application change.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.durability.config import NO_DURABILITY, DurabilityConfig
from repro.errors import DeploymentError
from repro.migration.config import DEFAULT_MIGRATION, MigrationConfig
from repro.replication.config import NO_REPLICATION, ReplicationConfig
from repro.telemetry.config import TelemetryConfig
from repro.sim.machine import (
    XEON_E3_1276,
    MachineProfile,
    get_profile,
)


class Placement:
    """Maps a reactor (by declaration index / name) to a container."""

    kind = "modulo"

    def container_for(self, name: str, index: int,
                      n_containers: int) -> int:
        return index % n_containers

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "Placement":
        kind = data.get("kind", "modulo")
        if kind == "modulo":
            return Placement()
        if kind == "range":
            return RangePlacement(int(data["block_size"]))
        if kind == "explicit":
            return ExplicitPlacement(dict(data["mapping"]))
        raise DeploymentError(f"unknown placement kind {kind!r}")


class RangePlacement(Placement):
    """Contiguous blocks: reactors [0..block) -> container 0, etc.

    This is the paper's Smallbank deployment ("each container holds a
    range of 1000 reactors") and the YCSB key-range deployment.
    """

    kind = "range"

    def __init__(self, block_size: int) -> None:
        if block_size < 1:
            raise DeploymentError("block_size must be positive")
        self.block_size = block_size

    def container_for(self, name: str, index: int,
                      n_containers: int) -> int:
        return min(index // self.block_size, n_containers - 1)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "block_size": self.block_size}


class ExplicitPlacement(Placement):
    """Direct reactor-name -> container-index mapping."""

    kind = "explicit"

    def __init__(self, mapping: dict[str, int]) -> None:
        self.mapping = mapping

    def container_for(self, name: str, index: int,
                      n_containers: int) -> int:
        try:
            return self.mapping[name]
        except KeyError:
            raise DeploymentError(
                f"no explicit placement for reactor {name!r}"
            ) from None

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "mapping": dict(self.mapping)}


ROUND_ROBIN = "round_robin"
AFFINITY = "affinity"

#: Execution backends a deployment may select (kept as a local tuple —
#: the backend registry lives in :mod:`repro.runtime.backend`, which
#: this module must not import at module scope).
BACKENDS = ("sim", "threads")


@dataclass
class ContainerSpec:
    """Compute resources of one container."""

    executors: int = 1
    mpl: int = 1

    def __post_init__(self) -> None:
        if self.executors < 1:
            raise DeploymentError("a container needs >= 1 executor")
        if self.mpl < 1:
            raise DeploymentError("MPL must be >= 1")


@dataclass
class DeploymentConfig:
    """A complete architecture choice for one reactor database.

    ``cc_scheme`` selects the concurrency-control protocol every
    container runs — ``"occ"`` (Silo-style optimistic, the default),
    ``"2pl_nowait"`` / ``"2pl_waitdie"`` (two-phase locking), or
    ``"none"`` (no concurrency control) — making isolation, like
    architecture, a config edit rather than an application change.

    ``replication`` extends the same claim to availability: a
    :class:`~repro.replication.config.ReplicationConfig` decides how
    many log-shipping replicas each container gets, whether commits
    wait for replica acks (``sync``) or apply in the background
    (``async``), and whether read-only root transactions are served
    from replicas — again a config edit only.

    ``migration`` removes the last start-time restriction: a
    :class:`~repro.migration.config.MigrationConfig` tunes how online
    reactor migrations (``db.migrate`` / ``db.rebalance``) drain and
    whether the elastic rebalancing policy runs automatically — so
    *placement over time* is a config edit too.

    ``durability`` extends the claim to persistence: a
    :class:`~repro.durability.config.DurabilityConfig` decides whether
    redo logging is on and when a commit may be acknowledged relative
    to its log flush (``durability_mode``: ``sync`` force-at-commit,
    ``group`` epoch-based group commit, or ``async`` background
    flushing) — again a config edit, never an application change.
    """

    name: str
    containers: list[ContainerSpec]
    routing: str = AFFINITY
    pin_reactors: bool = False
    machine: MachineProfile = field(default_factory=lambda: XEON_E3_1276)
    placement: Placement = field(default_factory=Placement)
    cc_scheme: str = "occ"
    #: Serve ``read_only`` root transactions from multi-version
    #: snapshots (no locks, no validation, no aborts) under *any*
    #: scheme.  ``cc_scheme="mvocc"`` implies it; see
    #: :attr:`snapshot_reads_effective`.
    snapshot_reads: bool = False
    replication: ReplicationConfig = NO_REPLICATION
    migration: MigrationConfig = DEFAULT_MIGRATION
    durability: DurabilityConfig = NO_DURABILITY
    #: Observability switches (metrics on/off, root-trace sampling);
    #: the default reads the ``REPRO_TELEMETRY``/``REPRO_TRACE``
    #: environment overrides.
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    #: Execution backend: ``"sim"`` (virtual-time discrete-event
    #: simulation, the certification oracle) or ``"threads"`` (one OS
    #: thread per container, wall-clock measurement on real hardware
    #: — see :mod:`repro.runtime.threads` and ``docs/backends.md``).
    backend: str = "sim"

    def __post_init__(self) -> None:
        if not self.containers:
            raise DeploymentError("at least one container is required")
        if self.routing not in (ROUND_ROBIN, AFFINITY):
            raise DeploymentError(
                f"unknown routing policy {self.routing!r}"
            )
        if self.routing == ROUND_ROBIN and len(self.containers) > 1:
            raise DeploymentError(
                "round-robin routing models a shared-everything "
                "deployment; use a single container"
            )
        from repro.concurrency.base import cc_scheme_names

        if self.cc_scheme not in cc_scheme_names():
            raise DeploymentError(
                f"unknown cc_scheme {self.cc_scheme!r}; expected one "
                f"of {', '.join(cc_scheme_names())}"
            )
        if self.backend not in BACKENDS:
            raise DeploymentError(
                f"unknown execution backend {self.backend!r}; "
                f"expected one of {', '.join(BACKENDS)}"
            )
        if self.backend == "threads" and self.replication.enabled:
            raise DeploymentError(
                "the threads backend does not support replication "
                "yet: failover injection and replica log shipping are "
                "simulation-only (run the deployment on backend "
                "'sim', or drop replication)"
            )
        if self.replication.read_from_replicas and \
                self.cc_scheme not in ("occ", "mvocc") and \
                not self.snapshot_reads:
            raise DeploymentError(
                "read_from_replicas requires cc_scheme 'occ'/'mvocc' "
                "or snapshot_reads: replica log applies install "
                "directly (no locks), and only OCC validation or a "
                "pinned snapshot protects a read that overlapped an "
                "apply — under plain 2PL or 'none' a replica read "
                "could commit a torn state"
            )

    @property
    def total_executors(self) -> int:
        return sum(spec.executors for spec in self.containers)

    @property
    def cc_enabled(self) -> bool:
        """Legacy view of the scheme choice: is any CC active?"""
        return self.cc_scheme != "none"

    @property
    def snapshot_reads_effective(self) -> bool:
        """Are read-only roots served from multi-version snapshots?
        ``mvocc`` always snapshots; other schemes opt in via
        ``snapshot_reads``."""
        return self.snapshot_reads or self.cc_scheme == "mvocc"

    # -- serialization --------------------------------------------------

    #: Every key ``from_dict`` understands; anything else is a typo an
    #: infrastructure engineer should hear about, not a silent no-op.
    KNOWN_KEYS = frozenset({
        "name", "machine", "containers", "routing", "pin_reactors",
        "placement", "cc_scheme", "cc_enabled", "snapshot_reads",
        "replication", "migration", "durability", "telemetry",
        "backend",
    })

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "machine": self.machine.name,
            "containers": [
                {"executors": s.executors, "mpl": s.mpl}
                for s in self.containers
            ],
            "routing": self.routing,
            "pin_reactors": self.pin_reactors,
            "placement": self.placement.to_dict(),
            "cc_scheme": self.cc_scheme,
            "snapshot_reads": self.snapshot_reads,
            "replication": self.replication.to_dict(),
            "migration": self.migration.to_dict(),
            "durability": self.durability.to_dict(),
            "telemetry": self.telemetry.to_dict(),
            "backend": self.backend,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "DeploymentConfig":
        for key in data:
            if key not in DeploymentConfig.KNOWN_KEYS:
                raise DeploymentError(
                    f"unknown deployment key {key!r}; expected one of "
                    f"{', '.join(sorted(DeploymentConfig.KNOWN_KEYS))}"
                )
        scheme = data.get("cc_scheme")
        if scheme is None:
            # Legacy configs carried a bool instead of a scheme name.
            scheme = "occ" if data.get("cc_enabled", True) else "none"
        return DeploymentConfig(
            name=data["name"],
            containers=[
                ContainerSpec(executors=int(c.get("executors", 1)),
                              mpl=int(c.get("mpl", 1)))
                for c in data["containers"]
            ],
            routing=data.get("routing", AFFINITY),
            pin_reactors=bool(data.get("pin_reactors", False)),
            machine=get_profile(data.get("machine", XEON_E3_1276.name)),
            placement=Placement.from_dict(
                data.get("placement", {"kind": "modulo"})),
            cc_scheme=scheme,
            snapshot_reads=bool(data.get("snapshot_reads", False)),
            replication=ReplicationConfig.from_dict(
                data.get("replication", {})),
            migration=MigrationConfig.from_dict(
                data.get("migration", {})),
            durability=DurabilityConfig.from_dict(
                data.get("durability", {})),
            telemetry=TelemetryConfig.from_dict(
                data.get("telemetry", {})),
            backend=str(data.get("backend", "sim")),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @staticmethod
    def from_json(text: str) -> "DeploymentConfig":
        return DeploymentConfig.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# The paper's three deployment strategies (Section 3.3)
# ----------------------------------------------------------------------

def _resolve_scheme(cc_scheme: str, cc_enabled: bool | None) -> str:
    """Factories accept the legacy ``cc_enabled`` bool as an alias."""
    if cc_enabled is None:
        return cc_scheme
    return cc_scheme if cc_enabled else "none"


def shared_everything_without_affinity(
        n_executors: int, machine: MachineProfile = XEON_E3_1276,
        placement: Placement | None = None,
        cc_scheme: str = "occ",
        cc_enabled: bool | None = None,
        snapshot_reads: bool = False,
        replication: ReplicationConfig | None = None,
        durability: DurabilityConfig | None = None,
        backend: str = "sim"
        ) -> DeploymentConfig:
    """S1: one container, round-robin load balancing, MPL 1."""
    return DeploymentConfig(
        name="shared-everything-without-affinity",
        containers=[ContainerSpec(executors=n_executors, mpl=1)],
        routing=ROUND_ROBIN,
        pin_reactors=False,
        machine=machine,
        placement=placement or Placement(),
        cc_scheme=_resolve_scheme(cc_scheme, cc_enabled),
        snapshot_reads=snapshot_reads,
        replication=replication or NO_REPLICATION,
        durability=durability or NO_DURABILITY,
        backend=backend,
    )


def shared_everything_with_affinity(
        n_executors: int, machine: MachineProfile = XEON_E3_1276,
        placement: Placement | None = None,
        cc_scheme: str = "occ",
        cc_enabled: bool | None = None,
        snapshot_reads: bool = False,
        replication: ReplicationConfig | None = None,
        durability: DurabilityConfig | None = None,
        backend: str = "sim"
        ) -> DeploymentConfig:
    """S2: one container, affinity routing, MPL 1 (Silo-like setup)."""
    return DeploymentConfig(
        name="shared-everything-with-affinity",
        containers=[ContainerSpec(executors=n_executors, mpl=1)],
        routing=AFFINITY,
        pin_reactors=False,
        machine=machine,
        placement=placement or Placement(),
        cc_scheme=_resolve_scheme(cc_scheme, cc_enabled),
        snapshot_reads=snapshot_reads,
        replication=replication or NO_REPLICATION,
        durability=durability or NO_DURABILITY,
        backend=backend,
    )


def shared_nothing(n_containers: int,
                   machine: MachineProfile = XEON_E3_1276,
                   mpl: int = 4, placement: Placement | None = None,
                   cc_scheme: str = "occ",
                   cc_enabled: bool | None = None,
                   snapshot_reads: bool = False,
                   replication: ReplicationConfig | None = None,
                   migration: MigrationConfig | None = None,
                   durability: DurabilityConfig | None = None,
                   backend: str = "sim"
                   ) -> DeploymentConfig:
    """S3: one executor per container, reactors pinned.

    The ``-sync`` / ``-async`` variants of the paper differ only in how
    application programs synchronize on futures, not in deployment.
    A higher MPL lets the executor overlap transactions cooperatively
    while some block on remote sub-transactions.
    """
    return DeploymentConfig(
        name="shared-nothing",
        containers=[ContainerSpec(executors=1, mpl=mpl)
                    for __ in range(n_containers)],
        routing=AFFINITY,
        pin_reactors=True,
        machine=machine,
        placement=placement or Placement(),
        cc_scheme=_resolve_scheme(cc_scheme, cc_enabled),
        snapshot_reads=snapshot_reads,
        replication=replication or NO_REPLICATION,
        migration=migration or DEFAULT_MIGRATION,
        durability=durability or NO_DURABILITY,
        backend=backend,
    )
