"""Reactor types and instances.

A *reactor* (relational actor, Section 2.2.1) is an application-defined
logical actor that encapsulates state abstracted as relations.  A
:class:`ReactorType` declares the relation schemas (via a schema
creation function) and the procedures invocable on reactors of that
type.  A :class:`Reactor` is a named instance holding a private
:class:`~repro.relational.catalog.Catalog`; reactors are purely logical
entities addressable by name for the lifetime of the application — the
developer cannot create or destroy them at runtime.

Procedures are registered with the :meth:`ReactorType.procedure`
decorator and are written as Python functions or generators taking a
context as first argument::

    account = ReactorType("Account", schema_fn=make_account_schema)

    @account.procedure
    def deposit(ctx, amount):
        ctx.update("checking", pk=(ctx.my_name(),),
                   set={"balance": ...})
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.errors import ReactorError, UnknownProcedureError
from repro.relational.catalog import Catalog
from repro.relational.schema import TableSchema

SchemaFn = Callable[[], Iterable[TableSchema]]
Procedure = Callable[..., Any]


class ReactorType:
    """A reactor type: schema creation function plus procedures."""

    def __init__(self, name: str, schema_fn: SchemaFn) -> None:
        self.name = name
        self.schema_fn = schema_fn
        self.procedures: dict[str, Procedure] = {}
        #: Procedures declared read-only: their root transactions are
        #: eligible for read-replica routing (repro.replication) and
        #: the runtime refuses their writes.
        self.read_only_procedures: set[str] = set()

    def procedure(self, fn: Procedure | None = None, *,
                  read_only: bool = False):
        """Register ``fn`` as a procedure of this reactor type.

        Usable bare (``@rtype.procedure``) or with options
        (``@rtype.procedure(read_only=True)``); the function keeps
        working as a plain Python callable for unit testing.
        """
        def register(func: Procedure) -> Procedure:
            if func.__name__ in self.procedures:
                raise ReactorError(
                    f"procedure {func.__name__!r} already registered "
                    f"on reactor type {self.name!r}"
                )
            self.procedures[func.__name__] = func
            if read_only:
                self.read_only_procedures.add(func.__name__)
            return func

        if fn is not None:
            return register(fn)
        return register

    def is_read_only(self, name: str) -> bool:
        return name in self.read_only_procedures

    def get_procedure(self, name: str) -> Procedure:
        try:
            return self.procedures[name]
        except KeyError:
            known = ", ".join(sorted(self.procedures)) or "<none>"
            raise UnknownProcedureError(
                f"reactor type {self.name!r} has no procedure {name!r}; "
                f"known: {known}"
            ) from None

    def build_catalog(self) -> Catalog:
        """Instantiate the private tables for one reactor instance."""
        return Catalog(self.schema_fn())

    def __repr__(self) -> str:
        return f"ReactorType({self.name!r})"


class Reactor:
    """A named reactor instance with private relational state.

    Placement attributes (``container``, ``pinned_executor``) are
    assigned by the deployment at bootstrap; ``last_core`` tracks which
    simulated core most recently touched this reactor's data, driving
    the cache-affinity cost model (DESIGN.md section 3).

    Online migration (:mod:`repro.migration`) moves a reactor between
    containers mid-run by building a *successor* instance at the
    destination and atomically flipping the routing entry.  The
    routing-epoch attributes track that lifecycle: ``epoch`` counts how
    many times the logical reactor has been re-homed, ``migrating``
    marks the serving instance while its migration drains, and a
    ``retired`` instance points at its successor through
    ``migrated_to`` so stragglers holding a stale reference can be
    forwarded.
    """

    __slots__ = ("name", "rtype", "catalog", "container",
                 "pinned_executor", "affinity_executor", "last_core",
                 "core_heat", "_active_subtxn", "epoch", "migrating",
                 "retired", "migrated_to", "inflight_roots")

    #: Cache-warmth retained per intervening transaction on another
    #: core: with round-robin over k executors a reactor returns to a
    #: core with warmth DECAY^(k-1), reproducing the *progressive*
    #: locality loss of Appendix F.2.
    HEAT_DECAY = 0.8

    def __init__(self, name: str, rtype: ReactorType) -> None:
        self.name = name
        self.rtype = rtype
        self.catalog = rtype.build_catalog()
        for table in self.catalog:
            table.owner = name
        self.container: Any = None
        self.pinned_executor: Any = None
        #: Preferred executor for *root* transactions under affinity
        #: routing (sub-calls in shared-everything stay inline).
        self.affinity_executor: Any = None
        self.last_core: int | None = None
        #: core id -> warmth in [0, 1]; decays as other cores touch
        #: this reactor's data.
        self.core_heat: dict[int, float] = {}
        # root txn id -> sub-transaction id currently active here;
        # enforces the dynamic safety condition of Section 2.2.4.
        self._active_subtxn: dict[int, int] = {}
        #: Routing epoch: 0 at bootstrap, +1 per completed migration of
        #: the logical reactor this instance continues.
        self.epoch = 0
        #: Set while an online migration of this instance drains.
        self.migrating = False
        #: Set once a migration flipped routing away from this
        #: instance; ``migrated_to`` is the successor at the new home.
        self.retired = False
        self.migrated_to: Any = None
        #: Root txn ids that touched this instance and have not yet
        #: completed — the drain barrier of online migration.
        self.inflight_roots: set[int] = set()

    def touch(self, core_id: int) -> float:
        """Record a transaction touching this reactor from ``core_id``.

        Returns the warmth of that core in [0, 1] *before* the touch:
        1.0 means the working set is fully cached there (no penalty),
        0.0 fully cold.  Other cores' warmth decays by
        :data:`HEAT_DECAY`; the touching core becomes fully warm.
        """
        warmth = self.core_heat.get(core_id, 0.0)
        if self.core_heat:
            for core in list(self.core_heat):
                self.core_heat[core] *= self.HEAT_DECAY
        self.core_heat[core_id] = 1.0
        self.last_core = core_id
        return warmth

    def mark_cold(self) -> None:
        """Forget all cache warmth (testing / cache-flush modeling)."""
        self.core_heat.clear()
        self.last_core = None

    # -- dynamic intra-transaction safety (Section 2.2.4) --------------

    def try_enter(self, root_id: int, subtxn_id: int) -> bool:
        """Register a sub-transaction as active on this reactor.

        Returns ``False`` when a *different* sub-transaction of the same
        root transaction is already active — the dangerous structure the
        runtime must abort.
        """
        current = self._active_subtxn.get(root_id)
        if current is not None and current != subtxn_id:
            return False
        self._active_subtxn[root_id] = subtxn_id
        return True

    def exit(self, root_id: int, subtxn_id: int) -> None:
        if self._active_subtxn.get(root_id) == subtxn_id:
            del self._active_subtxn[root_id]

    def active_count(self) -> int:
        return len(self._active_subtxn)

    def table(self, name: str):
        return self.catalog.table(name)

    def __repr__(self) -> str:
        return f"Reactor({self.name!r}, type={self.rtype.name!r})"
