"""The computational cost model of reactors (paper Section 2.4).

* :mod:`repro.costmodel.model` — the Figure 3 fork-join latency
  equation and its mapping onto observable breakdown buckets;
* :mod:`repro.costmodel.calibration` — parameter extraction from
  profiled runs (the paper's calibration workflow);
* :mod:`repro.costmodel.programs` — spec builders for multi-transfer,
  YCSB multi_update and TPC-C new-order.

Public exports: the fork-join model (:class:`ForkJoinSpec`,
:class:`Call`, ``predict_observable_breakdown``), calibration
(:class:`Calibration`, ``calibrate_from_summary``,
:class:`MeasuredCosts`, ``fit_measured_costs``) and the program
spec builders (``multi_transfer``, ``ycsb_multi_update``,
``tpcc_new_order``, ``destinations``).
"""

from repro.costmodel.calibration import (
    Calibration,
    MeasuredCosts,
    calibrate_from_summary,
    fit_measured_costs,
)
from repro.costmodel.model import (
    Call,
    ForkJoinSpec,
    predict_observable_breakdown,
)
from repro.costmodel.programs import (
    destinations,
    multi_transfer,
    tpcc_new_order,
    ycsb_multi_update,
)

__all__ = [
    "ForkJoinSpec",
    "Call",
    "predict_observable_breakdown",
    "Calibration",
    "MeasuredCosts",
    "fit_measured_costs",
    "calibrate_from_summary",
    "multi_transfer",
    "ycsb_multi_update",
    "tpcc_new_order",
    "destinations",
]
