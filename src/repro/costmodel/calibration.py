"""Cost-model parameter calibration from profiled runs.

The paper calibrates the Figure 3 parameters by profiling a minimal
configuration (e.g. a size-1 fully-sync multi-transfer, or a new-order
with one local and one remote item) and then predicts other sizes and
program formulations.  This module reproduces that workflow: it
extracts ``Cs``, ``Cr``, per-sub-transaction processing and commit
overheads from a :class:`~repro.bench.metrics.RunSummary` breakdown.

Calibration is intentionally *measurement-based* — it never peeks at
the simulator's true cost parameters, so prediction error reflects the
same estimation issues the paper discusses (Section 2.4 limitations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.bench.metrics import RunSummary


@dataclass(frozen=True)
class Calibration:
    """Calibrated cost-model parameters (all microseconds)."""

    #: Send cost per remote sub-transaction invocation.
    cs: float
    #: Receive cost per (blocking) remote result consumption.
    cr: float
    #: Execution time of one leaf sub-transaction (e.g. one
    #: transact_saving, one stock-update item, one YCSB update).
    leaf_exec: float
    #: Commit + input generation + client dispatch overhead measured
    #: at the calibration point (root transactions only; not part of
    #: the Figure 3 equation).
    commit_input_gen: float

    def commit_for_containers(self, containers: int,
                              calibrated_containers: int,
                              per_container: float | None = None
                              ) -> float:
        """Extrapolate commit overhead to a different container span.

        When ``per_container`` is unknown, the calibrated value is
        reused unchanged (the paper folds this into the observed vs
        predicted gap).
        """
        if per_container is None:
            return self.commit_input_gen
        extra = (containers - calibrated_containers) * per_container
        return self.commit_input_gen + max(0.0, extra)


def calibrate_from_summary(summary: RunSummary, n_remote_sync: int = 1,
                           leaf_per_sync: int = 2) -> Calibration:
    """Calibrate from a fully-synchronous single-leaf-chain profile.

    For a size-1 fully-sync multi-transfer: one remote synchronous
    credit plus one local debit; the ``sync_execution`` bucket then
    holds approximately two leaf executions (the remote credit's
    execution observed as synchronous wait, and the local debit), so
    ``leaf_exec = sync_execution / leaf_per_sync``.  ``cs``/``cr`` are
    read off their buckets directly (divided by the number of remote
    synchronous calls profiled).

    This mirrors the paper's procedure and inherits its imprecision:
    parameters are measured "within the 5 usec range" and the split of
    ``sync_execution`` between wait and processing is approximate.
    """
    if n_remote_sync < 1:
        raise ValueError("need at least one remote call to calibrate")
    breakdown = summary.breakdown
    if not breakdown:
        raise ValueError("summary has no committed transactions")
    cs = breakdown.get("cs", 0.0) / n_remote_sync
    cr = breakdown.get("cr", 0.0) / n_remote_sync
    sync_exec = breakdown.get("sync_execution", 0.0)
    leaf_exec = sync_exec / max(1, leaf_per_sync * n_remote_sync)
    return Calibration(
        cs=cs,
        cr=cr,
        leaf_exec=leaf_exec,
        commit_input_gen=breakdown.get("commit_input_gen", 0.0),
    )


# ----------------------------------------------------------------------
# Fitting the virtual cost model against real-hardware measurements
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MeasuredCosts:
    """Per-operation costs fitted from wall-clock measurements.

    Produced by :func:`fit_measured_costs` from runs on the
    ``threads`` execution backend: each sample pairs the operation
    counts a run performed with the CPU-busy microseconds it consumed,
    and the fit solves for the per-operation cost vector that best
    explains the measurements.  The result plugs straight into the
    certify-then-measure loop — certify a deployment on the sim
    backend, measure it on threads, then re-fit the sim's cost
    parameters so virtual predictions track the hardware.
    """

    #: Execution backend the measurements came from.
    backend: str
    #: Fitted microseconds per operation, keyed by operation name.
    costs: dict[str, float] = field(default_factory=dict)
    #: Root-mean-square residual of the fit (µs per sample).
    residual_us: float = 0.0
    #: Number of (counts, busy) samples the fit consumed.
    samples: int = 0

    def scale_vs(self, modeled: Mapping[str, float]
                 ) -> dict[str, float]:
        """Fitted/modeled cost ratio per operation (1.0 means the
        virtual cost model already matches the hardware; operations
        absent from either side are skipped)."""
        out = {}
        for op, fitted in self.costs.items():
            base = modeled.get(op)
            if base:
                out[op] = fitted / base
        return out


def _solve(matrix: list[list[float]], rhs: list[float]) -> list[float]:
    """Gaussian elimination with partial pivoting (tiny dense system)."""
    n = len(rhs)
    aug = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(aug[r][col]))
        if abs(aug[pivot][col]) < 1e-12:
            raise ValueError("singular normal equations; add more "
                             "(or more varied) samples")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        for row in range(n):
            if row == col:
                continue
            factor = aug[row][col] / aug[col][col]
            for k in range(col, n + 1):
                aug[row][k] -= factor * aug[col][k]
    return [aug[i][n] / aug[i][i] for i in range(n)]


def fit_measured_costs(
        samples: Sequence[tuple[Mapping[str, float], float]],
        backend: str = "threads",
        ridge: float = 1e-9) -> MeasuredCosts:
    """Least-squares fit of per-operation costs to measured busy time.

    ``samples`` is a sequence of ``(op_counts, busy_us)`` pairs: how
    many of each operation a measured run performed (e.g. commits,
    remote sub-calls, log appends — any counters the caller trusts)
    and the wall-clock CPU-busy microseconds the run consumed
    (``ThreadsBackend.container_busy_us`` totals, or a measurement
    window's ``core_busy`` sum on sim).  Solves the normal equations
    ``(AᵀA + ridge·I) c = Aᵀb`` for the cost vector ``c`` ≥ 0 is *not*
    enforced — a negative fitted cost is a signal the sample set does
    not separate that operation, not a value to clamp silently.

    Needs at least as many samples as distinct operations, with
    linearly independent count vectors (vary the workload mix or the
    container count between samples).
    """
    if not samples:
        raise ValueError("no samples to fit")
    ops = sorted({op for counts, __ in samples for op in counts})
    if len(samples) < len(ops):
        raise ValueError(
            f"{len(ops)} operations but only {len(samples)} samples; "
            "the fit is underdetermined")
    design = [[float(counts.get(op, 0.0)) for op in ops]
              for counts, __ in samples]
    busy = [float(b) for __, b in samples]
    n = len(ops)
    normal = [[sum(row[i] * row[j] for row in design)
               + (ridge if i == j else 0.0)
               for j in range(n)] for i in range(n)]
    rhs = [sum(row[i] * b for row, b in zip(design, busy))
           for i in range(n)]
    solution = _solve(normal, rhs)
    costs = dict(zip(ops, solution))
    sq_err = 0.0
    for row, b in zip(design, busy):
        predicted = sum(c * x for c, x in zip(solution, row))
        sq_err += (predicted - b) ** 2
    residual = (sq_err / len(samples)) ** 0.5
    return MeasuredCosts(backend=backend, costs=costs,
                         residual_us=residual, samples=len(samples))
