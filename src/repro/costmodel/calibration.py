"""Cost-model parameter calibration from profiled runs.

The paper calibrates the Figure 3 parameters by profiling a minimal
configuration (e.g. a size-1 fully-sync multi-transfer, or a new-order
with one local and one remote item) and then predicts other sizes and
program formulations.  This module reproduces that workflow: it
extracts ``Cs``, ``Cr``, per-sub-transaction processing and commit
overheads from a :class:`~repro.bench.metrics.RunSummary` breakdown.

Calibration is intentionally *measurement-based* — it never peeks at
the simulator's true cost parameters, so prediction error reflects the
same estimation issues the paper discusses (Section 2.4 limitations).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.metrics import RunSummary


@dataclass(frozen=True)
class Calibration:
    """Calibrated cost-model parameters (all microseconds)."""

    #: Send cost per remote sub-transaction invocation.
    cs: float
    #: Receive cost per (blocking) remote result consumption.
    cr: float
    #: Execution time of one leaf sub-transaction (e.g. one
    #: transact_saving, one stock-update item, one YCSB update).
    leaf_exec: float
    #: Commit + input generation + client dispatch overhead measured
    #: at the calibration point (root transactions only; not part of
    #: the Figure 3 equation).
    commit_input_gen: float

    def commit_for_containers(self, containers: int,
                              calibrated_containers: int,
                              per_container: float | None = None
                              ) -> float:
        """Extrapolate commit overhead to a different container span.

        When ``per_container`` is unknown, the calibrated value is
        reused unchanged (the paper folds this into the observed vs
        predicted gap).
        """
        if per_container is None:
            return self.commit_input_gen
        extra = (containers - calibrated_containers) * per_container
        return self.commit_input_gen + max(0.0, extra)


def calibrate_from_summary(summary: RunSummary, n_remote_sync: int = 1,
                           leaf_per_sync: int = 2) -> Calibration:
    """Calibrate from a fully-synchronous single-leaf-chain profile.

    For a size-1 fully-sync multi-transfer: one remote synchronous
    credit plus one local debit; the ``sync_execution`` bucket then
    holds approximately two leaf executions (the remote credit's
    execution observed as synchronous wait, and the local debit), so
    ``leaf_exec = sync_execution / leaf_per_sync``.  ``cs``/``cr`` are
    read off their buckets directly (divided by the number of remote
    synchronous calls profiled).

    This mirrors the paper's procedure and inherits its imprecision:
    parameters are measured "within the 5 usec range" and the split of
    ``sync_execution`` between wait and processing is approximate.
    """
    if n_remote_sync < 1:
        raise ValueError("need at least one remote call to calibrate")
    breakdown = summary.breakdown
    if not breakdown:
        raise ValueError("summary has no committed transactions")
    cs = breakdown.get("cs", 0.0) / n_remote_sync
    cr = breakdown.get("cr", 0.0) / n_remote_sync
    sync_exec = breakdown.get("sync_execution", 0.0)
    leaf_exec = sync_exec / max(1, leaf_per_sync * n_remote_sync)
    return Calibration(
        cs=cs,
        cr=cr,
        leaf_exec=leaf_exec,
        commit_input_gen=breakdown.get("commit_input_gen", 0.0),
    )
