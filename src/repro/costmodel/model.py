"""The fork-join latency cost model (Figure 3 of the paper).

A fork-join sub-transaction consists of sequential logic (possibly
with synchronous child calls), then a single program point where all
asynchronous children are dispatched, overlapped with optional
synchronous logic, and finally collection of all futures.  Its latency
is::

    L(ST) = Pseq + sum L(sync_seq children)
          + sum (Cs + Cr) over sync_seq destinations
          + max( max over async children i of
                     (L(i) + Cr(i) + sum Cs(j) for j <= i),
                 Povp + sum L(sync_ovp children)
                      + sum (Cs + Cr) over sync_ovp destinations )

where ``Cs``/``Cr`` are per-destination send/receive costs (zero for
children inlined on the same transaction executor).  The formula
applies recursively; a root transaction is the same minus commit
overheads, which the model deliberately excludes (Section 2.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Call:
    """One child sub-transaction call with its communication costs.

    ``cs``/``cr`` are zero when the destination reactor is served by
    the caller's own transaction executor (inline execution).
    """

    spec: "ForkJoinSpec"
    cs: float = 0.0
    cr: float = 0.0

    @property
    def remote(self) -> bool:
        return self.cs > 0.0 or self.cr > 0.0


@dataclass
class ForkJoinSpec:
    """A fork-join (sub-)transaction program shape."""

    #: Sequential processing logic (Pseq), microseconds.
    p_seq: float = 0.0
    #: Synchronous children executed within the sequential phase.
    sync_seq: list[Call] = field(default_factory=list)
    #: Asynchronous children, in dispatch order (prefix send costs).
    async_calls: list[Call] = field(default_factory=list)
    #: Processing logic overlapped with the asynchronous children.
    p_ovp: float = 0.0
    #: Synchronous children overlapped with the asynchronous children.
    sync_ovp: list[Call] = field(default_factory=list)

    def latency(self) -> float:
        """Evaluate the Figure 3 equation recursively."""
        total = self.p_seq
        for call in self.sync_seq:
            total += call.spec.latency() + call.cs + call.cr

        overlap_leg = self.p_ovp
        for call in self.sync_ovp:
            overlap_leg += call.spec.latency() + call.cs + call.cr

        async_leg = 0.0
        prefix_cs = 0.0
        for call in self.async_calls:
            prefix_cs += call.cs
            candidate = call.spec.latency() + call.cr + prefix_cs
            async_leg = max(async_leg, candidate)

        if self.async_calls or overlap_leg:
            total += max(async_leg, overlap_leg)
        return total

    # -- convenience builders -------------------------------------------

    @staticmethod
    def leaf(processing: float) -> "ForkJoinSpec":
        """A sub-transaction with pure local processing."""
        return ForkJoinSpec(p_seq=processing)


def _walk_root_paid(spec: ForkJoinSpec) -> tuple[float, float, float]:
    """Costs paid by the root task's own thread of control.

    Inline children (cs == cr == 0) execute in the caller's frames, so
    their communication is root-paid and recursion continues; a
    *remote* child's internal communication is paid by its executor
    and shows up only inside its latency (observed as wait time).

    Returns ``(cs, cr, sync_execution)``: send costs, receive costs
    (each frame's asynchronous join pays one blocking receive — the
    remaining futures have typically arrived), and processing plus
    synchronous waits.
    """
    cs_total = 0.0
    cr_total = 0.0
    sync_execution = spec.p_seq + spec.p_ovp
    for call in spec.sync_seq + spec.sync_ovp:
        cs_total += call.cs
        cr_total += call.cr
        if call.remote:
            sync_execution += call.spec.latency()
        else:
            sub_cs, sub_cr, sub_sync = _walk_root_paid(call.spec)
            cs_total += sub_cs
            cr_total += sub_cr
            sync_execution += sub_sync
    direct_async_cr: list[float] = []
    for call in spec.async_calls:
        cs_total += call.cs
        if call.remote:
            direct_async_cr.append(call.cr)
        else:
            sub_cs, sub_cr, sub_sync = _walk_root_paid(call.spec)
            cs_total += sub_cs
            cr_total += sub_cr
            sync_execution += sub_sync
    if direct_async_cr:
        cr_total += max(direct_async_cr)
    return cs_total, cr_total, sync_execution


def predict_observable_breakdown(spec: ForkJoinSpec,
                                 commit_input_gen: float = 0.0
                                 ) -> dict[str, float]:
    """Map the cost equation onto the observed breakdown buckets.

    The runtime attributes costs where they are *paid*: every remote
    dispatch charges ``cs`` at the caller, a blocking receive charges
    ``cr``, already-arrived results are (almost) free, and the time
    blocked on overlapped children lands in ``async_execution``.  This
    helper restates the equation's terms in those buckets so predicted
    bars are directly comparable with profiled ones (Figure 6).
    """
    cs_total, cr_total, sync_execution = _walk_root_paid(spec)
    # The equation idealizes overlap: it lets the caller's own
    # processing hide under the asynchronous leg even though a single
    # thread of control must serialize its sends and its processing.
    # The *observable* total is therefore bounded below by the charges
    # the root task itself pays.
    total = max(spec.latency(),
                sync_execution + cs_total + cr_total)
    async_execution = max(
        0.0, total - sync_execution - cs_total - cr_total)
    return {
        "sync_execution": sync_execution,
        "cs": cs_total,
        "cr": cr_total,
        "async_execution": async_execution,
        "commit_input_gen": commit_input_gen,
        "total": total + commit_input_gen,
    }
