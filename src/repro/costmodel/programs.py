"""Fork-join program specs for the paper's transaction programs.

Builders turn calibrated parameters plus program shape (sizes,
which destinations are remote) into
:class:`~repro.costmodel.model.ForkJoinSpec` trees matching each
program formulation, ready for latency prediction.

A destination is described by its communication cost pair: ``(0, 0)``
for a reactor served by the caller's executor (inline), ``(cs, cr)``
otherwise — this is how the Appendix B experiments express local vs.
remote placements in the model.
"""

from __future__ import annotations

from typing import Sequence

from repro.costmodel.calibration import Calibration
from repro.costmodel.model import Call, ForkJoinSpec

CommPair = tuple[float, float]


def destinations(calibration: Calibration, size: int,
                 remote_flags: Sequence[bool]) -> list[CommPair]:
    """Communication pairs for ``size`` destinations."""
    if len(remote_flags) != size:
        raise ValueError("one remote flag per destination required")
    return [(calibration.cs, calibration.cr) if remote else (0.0, 0.0)
            for remote in remote_flags]


def multi_transfer(variant: str, calibration: Calibration,
                   comm: Sequence[CommPair]) -> ForkJoinSpec:
    """The four multi-transfer formulations of Section 4.1.4.

    ``comm[i]`` is the (cs, cr) pair for destination ``i``; the source
    debit is always local (a self-call, inlined).
    """
    leaf = calibration.leaf_exec

    if variant == "fully-sync":
        transfers = [
            ForkJoinSpec(
                p_seq=leaf,  # the local debit
                sync_seq=[Call(ForkJoinSpec.leaf(leaf), cs, cr)],
            )
            for cs, cr in comm
        ]
        return ForkJoinSpec(sync_seq=[Call(t) for t in transfers])

    if variant == "partially-async":
        transfers = [
            ForkJoinSpec(
                async_calls=[Call(ForkJoinSpec.leaf(leaf), cs, cr)],
                p_ovp=leaf,  # debit overlaps the in-flight credit
            )
            for cs, cr in comm
        ]
        return ForkJoinSpec(sync_seq=[Call(t) for t in transfers])

    if variant == "fully-async":
        return ForkJoinSpec(
            async_calls=[Call(ForkJoinSpec.leaf(leaf), cs, cr)
                         for cs, cr in comm],
            p_ovp=leaf * len(comm),  # one local debit per destination
        )

    if variant == "opt":
        return ForkJoinSpec(
            async_calls=[Call(ForkJoinSpec.leaf(leaf), cs, cr)
                         for cs, cr in comm],
            p_ovp=leaf,  # a single combined debit
        )

    raise ValueError(f"unknown multi-transfer variant {variant!r}")


def ycsb_multi_update(calibration: Calibration, n_async: float,
                      n_local: float) -> ForkJoinSpec:
    """YCSB multi_update (Appendix C).

    ``n_async`` remote single-key updates dispatched asynchronously,
    overlapped with ``n_local`` inline updates on the initiating
    executor.  Fractional counts are allowed: the paper fits the model
    using the *average realized* sequence sizes under the zipfian
    distribution.
    """
    leaf = calibration.leaf_exec
    spec = ForkJoinSpec(p_ovp=leaf * n_local)
    whole = int(n_async)
    for __ in range(whole):
        spec.async_calls.append(
            Call(ForkJoinSpec.leaf(leaf), calibration.cs,
                 calibration.cr))
    fraction = n_async - whole
    if fraction > 1e-9:
        spec.async_calls.append(
            Call(ForkJoinSpec.leaf(leaf * fraction),
                 calibration.cs * fraction, calibration.cr * fraction))
    return spec


def tpcc_new_order(calibration: Calibration, local_work: float,
                   remote_batches: Sequence[float]) -> ForkJoinSpec:
    """TPC-C new-order (Appendix D).

    ``local_work`` is the home-warehouse processing (reads, inserts,
    local stock updates); ``remote_batches`` gives the per-remote-
    warehouse stock-update batch sizes in items.  Batch execution time
    scales with items at the calibrated per-item leaf cost.
    """
    spec = ForkJoinSpec(p_ovp=local_work)
    for items in remote_batches:
        spec.async_calls.append(Call(
            ForkJoinSpec.leaf(calibration.leaf_exec * items),
            calibration.cs, calibration.cr))
    return spec
