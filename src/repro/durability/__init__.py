"""Durability: group commit, incremental checkpoints, crash recovery.

The paper's prototype has no durability and points at log-based
recovery (SiloR-style) plus distributed checkpoints as the intended
design.  This package implements that future-work feature over the
simulated ReactDB — and makes *when a commit is durable* a deployment
knob:

* per-container logical redo logs keyed by commit TID
  (:mod:`repro.durability.wal`), flushed through epoch-based group
  commit pipelines (:mod:`repro.durability.group_commit`) under a
  ``durability_mode`` of ``sync`` (force-at-commit), ``group``
  (epoch-batched acknowledgement) or ``async`` (background flushing) —
  see :class:`~repro.durability.config.DurabilityConfig`;
* quiescent checkpoints, full or *incremental* (dirty-key segments
  chained in a :class:`~repro.durability.checkpoint.CheckpointManifest`
  with WAL truncation watermarks that respect pinned snapshots,
  replica positions, and migrations);
* recovery by checkpoint restore + TID-ordered replay — serial
  (:func:`~repro.durability.recovery.recover`) or parallel over
  per-reactor log partitions
  (:func:`~repro.durability.partitioned.recover_partitioned`), from
  live logs or from a kill-at-arbitrary-epoch
  :class:`~repro.durability.recovery.CrashImage`.  Recovery may target
  a different deployment than the crashed database — architecture
  virtualization extends to recovery.
"""

from repro.durability.checkpoint import (
    Checkpoint,
    CheckpointManifest,
    CheckpointSegment,
    take_checkpoint,
)
from repro.durability.config import (
    DURABILITY_MODES,
    NO_DURABILITY,
    DurabilityConfig,
)
from repro.durability.group_commit import LogFlusher
from repro.durability.partitioned import (
    RecoveryReport,
    recover_image_partitioned,
    recover_partitioned,
)
from repro.durability.recovery import (
    CrashImage,
    DurabilityManager,
    enable_durability,
    recover,
    recover_from_image,
)
from repro.durability.wal import (
    DELETE,
    INSERT,
    UPDATE,
    RedoEntry,
    RedoLog,
    RedoRecord,
    apply_entry_to,
    apply_record_to,
)

__all__ = [
    "RedoLog",
    "RedoRecord",
    "RedoEntry",
    "INSERT",
    "UPDATE",
    "DELETE",
    "Checkpoint",
    "CheckpointManifest",
    "CheckpointSegment",
    "take_checkpoint",
    "DurabilityConfig",
    "DURABILITY_MODES",
    "NO_DURABILITY",
    "DurabilityManager",
    "CrashImage",
    "LogFlusher",
    "RecoveryReport",
    "enable_durability",
    "recover",
    "recover_from_image",
    "recover_partitioned",
    "recover_image_partitioned",
    "apply_record_to",
    "apply_entry_to",
]
