"""Durability: redo logging, checkpoints, crash recovery.

The paper's prototype has no durability and points at log-based
recovery (SiloR-style) plus distributed checkpoints as the intended
design.  This package implements that future-work feature over the
simulated ReactDB: per-container logical redo logs keyed by commit
TID, quiescent checkpoints, and recovery by checkpoint restore +
TID-ordered replay.  Recovery may target a different deployment than
the crashed database — architecture virtualization extends to
recovery.

Public exports: the redo-log types (:class:`RedoLog`,
:class:`RedoRecord`, :class:`RedoEntry`, the ``INSERT`` / ``UPDATE`` /
``DELETE`` kinds, ``apply_record_to``), checkpoints
(:class:`Checkpoint`, ``take_checkpoint``) and the recovery driver
(:class:`DurabilityManager`, ``enable_durability``, ``recover``).
"""

from repro.durability.checkpoint import Checkpoint, take_checkpoint
from repro.durability.recovery import (
    DurabilityManager,
    enable_durability,
    recover,
)
from repro.durability.wal import (
    DELETE,
    INSERT,
    UPDATE,
    RedoEntry,
    RedoLog,
    RedoRecord,
    apply_record_to,
)

__all__ = [
    "RedoLog",
    "RedoRecord",
    "RedoEntry",
    "INSERT",
    "UPDATE",
    "DELETE",
    "Checkpoint",
    "take_checkpoint",
    "DurabilityManager",
    "enable_durability",
    "recover",
    "apply_record_to",
]
