"""Checkpoints of reactor-database state.

A checkpoint is a consistent snapshot of every reactor's tables plus
the per-container TID high-water marks.  Checkpoints are taken at
quiescence (no in-flight transactions — the discrete-event scheduler
must be idle), which corresponds to the distributed-checkpoint
boundary the paper references; combining a checkpoint with redo-log
replay of later TIDs reconstructs any committed state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError


@dataclass
class Checkpoint:
    """A serializable snapshot of the committed database state."""

    #: reactor name -> table name -> list of committed rows
    reactors: dict[str, dict[str, list[dict[str, Any]]]] = \
        field(default_factory=dict)
    #: container id -> last issued commit TID at snapshot time
    tid_watermarks: dict[int, int] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps({
            "reactors": self.reactors,
            "tid_watermarks": {str(k): v for k, v
                               in self.tid_watermarks.items()},
        })

    @staticmethod
    def from_json(text: str) -> "Checkpoint":
        data = json.loads(text)
        return Checkpoint(
            reactors=data["reactors"],
            tid_watermarks={int(k): v for k, v
                            in data["tid_watermarks"].items()},
        )


def take_checkpoint(database: Any) -> Checkpoint:
    """Snapshot a quiescent database.

    Raises :class:`SimulationError` when transactions are still in
    flight — checkpoints here model the coordinated quiescent
    checkpoints of the recovery literature, not fuzzy ones.
    """
    if database.scheduler.pending() > 0:
        raise SimulationError(
            "checkpoint requires quiescence: drain the scheduler "
            "(scheduler.run()) before snapshotting"
        )
    checkpoint = Checkpoint()
    for name in database.reactor_names():
        reactor = database.reactor(name)
        checkpoint.reactors[name] = {
            table.name: table.rows() for table in reactor.catalog
        }
    for container in database.containers:
        checkpoint.tid_watermarks[container.container_id] = \
            container.concurrency.tids.last
    return checkpoint
