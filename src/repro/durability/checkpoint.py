"""Checkpoints of reactor-database state: full and incremental.

A checkpoint is a consistent snapshot of every reactor's tables plus
the per-container TID high-water marks.  Checkpoints are taken at
quiescence (no in-flight transactions — the discrete-event scheduler
must be idle), which corresponds to the distributed-checkpoint
boundary the paper references; combining a checkpoint with redo-log
replay of later TIDs reconstructs any committed state.

On top of the original full :class:`Checkpoint`, this module adds
*incremental* checkpointing: a :class:`CheckpointManifest` chains a
full base :class:`CheckpointSegment` with delta segments that carry
only the keys dirtied since the previous segment (tracked per reactor
from the redo-log append stream by the durability manager), plus the
WAL-truncation watermark each segment authorized.  Materializing the
manifest replays the chain newest-last into one flat checkpoint — the
exact image recovery loads before tail replay.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError


@dataclass
class Checkpoint:
    """A serializable snapshot of the committed database state."""

    #: reactor name -> table name -> list of committed rows
    reactors: dict[str, dict[str, list[dict[str, Any]]]] = \
        field(default_factory=dict)
    #: container id -> last issued commit TID at snapshot time
    tid_watermarks: dict[int, int] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps({
            "reactors": self.reactors,
            "tid_watermarks": {str(k): v for k, v
                               in self.tid_watermarks.items()},
        })

    @staticmethod
    def from_json(text: str) -> "Checkpoint":
        data = json.loads(text)
        return Checkpoint(
            reactors=data["reactors"],
            tid_watermarks={int(k): v for k, v
                            in data["tid_watermarks"].items()},
        )


def take_checkpoint(database: Any) -> Checkpoint:
    """Snapshot a quiescent database.

    Raises :class:`SimulationError` when transactions are still in
    flight — checkpoints here model the coordinated quiescent
    checkpoints of the recovery literature, not fuzzy ones.
    """
    require_quiescence(database)
    checkpoint = Checkpoint()
    for name in database.reactor_names():
        reactor = database.reactor(name)
        checkpoint.reactors[name] = {
            table.name: table.rows() for table in reactor.catalog
        }
    for container in database.containers:
        checkpoint.tid_watermarks[container.container_id] = \
            container.concurrency.tids.last
    return checkpoint


def require_quiescence(database: Any) -> None:
    if database.scheduler.pending() > 0:
        raise SimulationError(
            "checkpoint requires quiescence: drain the scheduler "
            "(scheduler.run()) before snapshotting"
        )


# ----------------------------------------------------------------------
# Incremental checkpoints
# ----------------------------------------------------------------------

FULL = "full"
INCREMENTAL = "incremental"


@dataclass
class CheckpointSegment:
    """One link of an incremental-checkpoint chain.

    A ``full`` segment carries every committed row; an ``incremental``
    segment carries, per reactor table, the current after-image of
    every key dirtied since the parent segment (``rows``) and the keys
    deleted since then (``deleted``).  ``truncate_tids`` records the
    per-container WAL truncation watermark this segment authorized —
    always at or below its ``tid_watermarks`` and floored by pinned
    MVCC snapshots, replica apply positions, and in-flight migration
    watermarks (see ``DurabilityManager.safe_truncation_tid``).
    """

    seq: int
    kind: str
    parent_seq: int | None
    taken_at_us: float
    #: reactor -> table -> list of row after-images.
    rows: dict[str, dict[str, list[dict[str, Any]]]] = \
        field(default_factory=dict)
    #: reactor -> table -> list of deleted primary keys.
    deleted: dict[str, dict[str, list[list[Any]]]] = \
        field(default_factory=dict)
    #: container id -> last issued commit TID at snapshot time.
    tid_watermarks: dict[int, int] = field(default_factory=dict)
    #: container id -> WAL truncation TID this segment authorized.
    truncate_tids: dict[int, int] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "parent_seq": self.parent_seq,
            "taken_at_us": self.taken_at_us,
            "rows": self.rows,
            "deleted": self.deleted,
            "tid_watermarks": {str(k): v for k, v
                               in self.tid_watermarks.items()},
            "truncate_tids": {str(k): v for k, v
                              in self.truncate_tids.items()},
        }

    @staticmethod
    def from_json(data: dict[str, Any]) -> "CheckpointSegment":
        return CheckpointSegment(
            seq=data["seq"],
            kind=data["kind"],
            parent_seq=data["parent_seq"],
            taken_at_us=data["taken_at_us"],
            rows=data["rows"],
            deleted=data["deleted"],
            tid_watermarks={int(k): v for k, v
                            in data["tid_watermarks"].items()},
            truncate_tids={int(k): v for k, v
                           in data["truncate_tids"].items()},
        )


@dataclass
class CheckpointManifest:
    """The chained sequence of checkpoint segments of one database."""

    segments: list[CheckpointSegment] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._validate_chain()

    def _validate_chain(self) -> None:
        prev: CheckpointSegment | None = None
        for segment in self.segments:
            if prev is None:
                if segment.kind != FULL or \
                        segment.parent_seq is not None:
                    raise SimulationError(
                        "manifest must start with an unparented full "
                        "segment")
            elif segment.kind != INCREMENTAL or \
                    segment.parent_seq != prev.seq:
                raise SimulationError(
                    f"segment {segment.seq} does not chain to "
                    f"{prev.seq}")
            prev = segment

    @property
    def empty(self) -> bool:
        return not self.segments

    def tid_watermarks(self) -> dict[int, int]:
        """The newest segment's per-container watermarks (what tail
        replay starts above)."""
        if not self.segments:
            return {}
        return dict(self.segments[-1].tid_watermarks)

    def materialize(self) -> Checkpoint:
        """Collapse the chain into one flat :class:`Checkpoint`.

        Newer segments overwrite older images key-by-key; deletions
        remove keys.  Segment rows carry a ``__pk`` sidecar (tuple
        keys do not survive JSON) which is stripped from the flat
        checkpoint's plain rows.
        """
        state: dict[str, dict[str, dict[tuple, dict[str, Any]]]] = {}
        for segment in self.segments:
            for reactor, tables in segment.rows.items():
                for table, rows in tables.items():
                    bucket = state.setdefault(reactor, {}) \
                        .setdefault(table, {})
                    for row in rows:
                        pk = row.get("__pk")
                        if pk is None:
                            raise SimulationError(
                                f"checkpoint row for {reactor}."
                                f"{table} in segment {segment.seq} "
                                "lacks a __pk sidecar")
                        bucket[tuple(pk)] = {
                            k: v for k, v in row.items()
                            if k != "__pk"
                        }
            for reactor, tables in segment.deleted.items():
                for table, pks in tables.items():
                    bucket = state.setdefault(reactor, {}) \
                        .setdefault(table, {})
                    for pk in pks:
                        bucket.pop(tuple(pk), None)
        checkpoint = Checkpoint(
            tid_watermarks=self.tid_watermarks())
        for reactor, tables in state.items():
            checkpoint.reactors[reactor] = {
                table: list(bucket.values())
                for table, bucket in tables.items()
            }
        return checkpoint

    def to_json(self) -> str:
        return json.dumps(
            {"segments": [s.to_json() for s in self.segments]})

    @staticmethod
    def from_json(text: str) -> "CheckpointManifest":
        data = json.loads(text)
        return CheckpointManifest(segments=[
            CheckpointSegment.from_json(s) for s in data["segments"]
        ])


