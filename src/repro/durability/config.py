"""Durability configuration: commit persistence as a deployment knob.

The same virtualization claim the deployment spectrum makes for
architecture, concurrency control, replication, and placement extends
to durability: a :class:`DurabilityConfig` inside the
:class:`~repro.core.deployment.DeploymentConfig` decides whether redo
logging is on and *when a commit may be acknowledged* relative to its
log flush — without any application change.

Modes (``durability_mode`` in JSON configs):

* ``"sync"`` — every writing commit pays its own log flush before the
  client sees the result: one ``fsync_cost`` per commit, serialized on
  the container's (single) log device.  Strongest guarantee, highest
  per-commit price — the classic force-at-commit WAL discipline.
* ``"group"`` — epoch-based group commit (SiloR-style): commits
  install optimistically and are acknowledged when their *epoch's*
  batched flush lands.  An epoch opens at the first unflushed append
  and flushes after ``flush_interval_us`` (or earlier once
  ``flush_batch_bytes`` of records accumulated), so one fsync covers
  every commit of the epoch.  Acknowledged commits are always durable;
  the unflushed tail of the current epoch is lost on a crash, but no
  client ever saw those commits complete.
* ``"async"`` — commits are acknowledged immediately; epochs still
  flush in the background on the same cadence.  A crash can lose
  acknowledged commits inside the flush window — the durability
  analogue of async replication's lag window, and
  :func:`~repro.formal.audit.certify_crash_recovery` reports (rather
  than rejects) that loss for this mode only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import DeploymentError

SYNC = "sync"
GROUP = "group"
ASYNC = "async"

DURABILITY_MODES = (SYNC, GROUP, ASYNC)


@dataclass(frozen=True)
class DurabilityConfig:
    """Per-deployment durability choice.

    ``enabled`` attaches redo logging (and the flush pipeline) at
    database build time; ``mode`` selects the commit-acknowledgement
    discipline.  The flush cadence itself (``flush_interval_us``,
    ``flush_batch_bytes``, ``fsync_cost``) lives with the other
    virtual-time prices in :class:`~repro.sim.costs.CostParameters`.
    """

    enabled: bool = False
    mode: str = GROUP

    def __post_init__(self) -> None:
        if self.mode not in DURABILITY_MODES:
            raise DeploymentError(
                f"unknown durability_mode {self.mode!r}; expected one "
                f"of {', '.join(DURABILITY_MODES)}"
            )

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "enabled": self.enabled,
            "durability_mode": self.mode,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "DurabilityConfig":
        known = {"enabled", "durability_mode", "mode"}
        for key in data:
            if key not in known:
                raise DeploymentError(
                    f"unknown durability key {key!r}; expected one of "
                    f"{', '.join(sorted(known))}"
                )
        mode = data.get("durability_mode", data.get("mode", GROUP))
        return DurabilityConfig(
            enabled=bool(data.get("enabled", False)),
            mode=mode,
        )


#: The in-memory default every deployment starts from.
NO_DURABILITY = DurabilityConfig()
