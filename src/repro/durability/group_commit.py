"""Epoch-based group commit: the per-container log-flush pipeline.

Redo records are appended to the in-memory :class:`~repro.durability.
wal.RedoLog` at install time, but installation is not durability: a
record survives a crash only once its epoch's batched flush has landed
on the container's log device.  A :class:`LogFlusher` models that
device:

* appends join the *open epoch*; the first append of an epoch
  schedules its flush ``flush_interval_us`` later, and accumulating
  ``flush_batch_bytes`` of records flushes the epoch early;
* a flush occupies the log device for ``fsync_cost`` virtual
  microseconds and the device is serial — a container has one log
  disk, so under ``sync`` mode (one single-record epoch per writing
  commit) commits queue on it, which is exactly the contention group
  commit exists to amortize;
* when the flush completes, every record of the epoch becomes durable
  (the durable set is always a *prefix* of the append order — epochs
  flush FIFO through the serial device) and the epoch's ack futures
  resolve, releasing the root transactions the executor parked on
  them.

The executor defers root completion on a per-commit ack future exactly
the way sync replication defers on replica acks; ``async`` mode never
hands out futures (commits acknowledge immediately, flushes trail in
the background), which makes the bare ``enable_durability`` of earlier
revisions — logging with free acknowledgements — the ``async`` point
of the new spectrum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.durability.config import ASYNC, GROUP, SYNC
from repro.durability.wal import RedoRecord
from repro.runtime.futures import SimFuture
from repro.telemetry.spans import TRACK_LOG


@dataclass(slots=True)
class FlushStats:
    """Per-container flush-pipeline counters."""

    fsyncs: int = 0
    records_flushed: int = 0
    bytes_flushed: int = 0
    early_flushes: int = 0
    #: Virtual time the log device spent busy (fsync_cost per flush).
    device_busy_us: float = 0.0

    @property
    def records_per_fsync(self) -> float:
        if not self.fsyncs:
            return 0.0
        return self.records_flushed / self.fsyncs


class FlushEpoch:
    """One group-commit epoch: the batch one fsync makes durable."""

    __slots__ = ("seq", "opened_at", "records", "bytes", "waiters",
                 "event", "closed", "durable")

    def __init__(self, seq: int, opened_at: float) -> None:
        self.seq = seq
        self.opened_at = opened_at
        self.records: list[RedoRecord] = []
        self.bytes = 0
        #: Per-commit ack futures resolved when the flush lands.
        self.waiters: list[SimFuture] = []
        self.event: Any = None
        self.closed = False
        self.durable = False


class LogFlusher:
    """The flush pipeline of one container's redo log."""

    def __init__(self, container_id: int, scheduler: Any, costs: Any,
                 mode: str, telemetry: Any = None) -> None:
        self.container_id = container_id
        self.scheduler = scheduler
        self.costs = costs
        self.mode = mode
        self.stats = FlushStats()
        #: Optional :class:`~repro.telemetry.facade.Telemetry`: flush
        #: histograms plus ``log:epoch`` spans on the log track.
        #: ``None`` (bare construction in unit tests) keeps the
        #: pipeline fully functional on its direct counters.
        self.telemetry = telemetry
        #: Future type matching the execution backend: thread-safe on
        #: wall-clock backends, the plain single-threaded future on sim.
        self._future_cls = getattr(scheduler, "future_class", None) \
            or SimFuture
        if telemetry is not None and telemetry.enabled:
            self._records_hist = telemetry.registry.histogram(
                "log_flush_records")
            self._bytes_hist = telemetry.registry.histogram(
                "log_flush_bytes")
        else:
            self._records_hist = None
            self._bytes_hist = None
        #: Virtual time the serial log device frees up.
        self.disk_free_at = 0.0
        #: Appended records made durable so far — always a prefix of
        #: the container's append order.
        self.flushed_records = 0
        #: Highest commit TID known durable on this container.
        self.durable_tid = 0
        self._epoch_seq = 0
        self._open: FlushEpoch | None = None
        #: commit TID -> the epoch that will make it durable.
        self._record_epoch: dict[int, FlushEpoch] = {}

    # ------------------------------------------------------------------
    # Append intake (a RedoLog extra-listener)
    # ------------------------------------------------------------------

    def on_append(self, record: RedoRecord) -> None:
        if self.mode == SYNC:
            # Force-at-commit: a single-record epoch flushed now, so
            # each writing commit pays (and queues for) its own fsync.
            epoch = self._new_epoch()
            self._join(epoch, record)
            self._flush_epoch(epoch)
            return
        epoch = self._open
        if epoch is None:
            epoch = self._open = self._new_epoch()
            epoch.event = self.scheduler.after(
                self.costs.flush_interval_us, self._flush_epoch, epoch)
        self._join(epoch, record)
        if epoch.bytes >= self.costs.flush_batch_bytes and \
                not epoch.closed:
            # Batch threshold reached: flush early instead of waiting
            # out the interval.
            epoch.event.cancel()
            epoch.event = self.scheduler.soon(self._flush_epoch, epoch)
            epoch.closed = True
            self.stats.early_flushes += 1

    def _new_epoch(self) -> FlushEpoch:
        self._epoch_seq += 1
        return FlushEpoch(self._epoch_seq, self.scheduler.now)

    def _join(self, epoch: FlushEpoch, record: RedoRecord) -> None:
        epoch.records.append(record)
        epoch.bytes += record.byte_size
        self._record_epoch[record.commit_tid] = epoch

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------

    def _flush_epoch(self, epoch: FlushEpoch) -> None:
        if epoch is self._open:
            self._open = None
        epoch.closed = True
        # The serial log device: this flush starts when the disk frees.
        start = max(self.scheduler.now, self.disk_free_at)
        done = start + self.costs.fsync_cost
        self.disk_free_at = done
        self.stats.fsyncs += 1
        self.stats.device_busy_us += self.costs.fsync_cost
        self.scheduler.at(done, self._epoch_durable, epoch)

    def _epoch_durable(self, epoch: FlushEpoch) -> None:
        epoch.durable = True
        self.flushed_records += len(epoch.records)
        self.stats.records_flushed += len(epoch.records)
        self.stats.bytes_flushed += epoch.bytes
        telemetry = self.telemetry
        if telemetry is not None:
            if self._records_hist is not None:
                self._records_hist.observe(len(epoch.records))
                self._bytes_hist.observe(epoch.bytes)
            if telemetry.system_tracing:
                # Epoch membership -> flush -> ack as one span on the
                # log track: opened at the first append, closed when
                # the fsync lands and the waiters release.
                telemetry.system_span(
                    "log:epoch", TRACK_LOG, self.container_id,
                    epoch.opened_at, self.scheduler.now,
                    {"seq": epoch.seq, "records": len(epoch.records),
                     "bytes": epoch.bytes,
                     "waiters": len(epoch.waiters)})
        for record in epoch.records:
            if record.commit_tid > self.durable_tid:
                self.durable_tid = record.commit_tid
            self._record_epoch.pop(record.commit_tid, None)
        waiters, epoch.waiters = epoch.waiters, []
        now = self.scheduler.now
        for future in waiters:
            future.resolve(epoch.seq, now)

    def kick(self) -> None:
        """Close and flush the open epoch now (durability barriers:
        migration state copies, explicit flush points in tests)."""
        epoch = self._open
        if epoch is not None and not epoch.closed:
            epoch.event.cancel()
            epoch.event = self.scheduler.soon(self._flush_epoch, epoch)
            epoch.closed = True

    # ------------------------------------------------------------------
    # Commit acknowledgement
    # ------------------------------------------------------------------

    def ack_future(self, commit_tid: int) -> SimFuture | None:
        """The future a commit must wait on before acknowledging, or
        ``None`` when it is already durable (or ``async`` mode never
        waits)."""
        if self.mode == ASYNC:
            return None
        epoch = self._record_epoch.get(commit_tid)
        if epoch is None or epoch.durable:
            return None
        future = self._future_cls(
            remote=False, subtxn_id=0,
            target_reactor=f"log:{self.container_id}")
        epoch.waiters.append(future)
        return future

    def unflushed_records(self) -> int:
        """Records appended but not yet durable (the crash-loss
        window of the current epoch(s))."""
        return sum(len(e.records) for e in
                   set(self._record_epoch.values()) if not e.durable)

    def stats_dict(self) -> dict[str, Any]:
        telemetry = self.telemetry
        if telemetry is not None:
            # Registry-backed view (the collector gauges registered by
            # Telemetry.register_flusher read this flusher live); the
            # legacy shape is preserved key for key.
            value = telemetry.registry.value
            cid = self.container_id
            fsyncs = value("log_fsyncs_total", container=cid)
            records = value("log_records_flushed_total", container=cid)
            return {
                "mode": self.mode,
                "fsyncs": fsyncs,
                "records_flushed": records,
                "bytes_flushed":
                    value("log_bytes_flushed_total", container=cid),
                "early_flushes":
                    value("log_early_flushes_total", container=cid),
                "records_per_fsync":
                    round(records / fsyncs, 3) if fsyncs else 0.0,
                "device_busy_us":
                    value("log_device_busy_us", container=cid),
                "durable_tid": value("log_durable_tid", container=cid),
                "unflushed_records":
                    value("log_unflushed_records", container=cid),
            }
        return {
            "mode": self.mode,
            "fsyncs": self.stats.fsyncs,
            "records_flushed": self.stats.records_flushed,
            "bytes_flushed": self.stats.bytes_flushed,
            "early_flushes": self.stats.early_flushes,
            "records_per_fsync": round(self.stats.records_per_fsync, 3),
            "device_busy_us": round(self.stats.device_busy_us, 3),
            "durable_tid": self.durable_tid,
            "unflushed_records": self.unflushed_records(),
        }


MODES = (SYNC, GROUP, ASYNC)

__all__ = ["LogFlusher", "FlushEpoch", "FlushStats", "MODES"]
