"""Parallel partitioned recovery (SiloR-style), priced in virtual time.

:func:`recover_partitioned` rebuilds a database the way a real
multi-core restart would: the redo tail is split into *per-reactor log
partitions* (entries grouped by owning reactor, each partition sorted
by commit TID), every partition — checkpoint rows first, then tail
entries — is assigned to the executor that will own the reactor in the
*target* deployment, and all executors replay their partitions
concurrently on the simulation scheduler.  Each partition charges

``rows * recovery_load_per_row + entries * recovery_replay_per_entry``

of virtual CPU to its executor, so recovery time is the *makespan* of
the partition assignment — measurable, and visibly shorter than the
serial sum on multi-executor deployments.  Correctness does not depend
on the assignment: reactors own disjoint key spaces, so per-reactor
TID order is the only ordering replay needs (the same argument that
lets SiloR value-log partitions replay in any inter-partition order).

A reactor whose history spans containers (it migrated mid-run) is
still one partition: its entries are collected from *every* log and
merge-sorted by TID, which is exactly the watermark contract online
migration maintains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from typing import TYPE_CHECKING

from repro.durability.checkpoint import Checkpoint, CheckpointManifest
from repro.durability.recovery import CrashImage, _finish_recovery
from repro.durability.wal import RedoEntry, RedoLog, apply_entry_to

if TYPE_CHECKING:  # runtime import deferred (see recovery.py)
    from repro.core.database import ReactorDatabase
    from repro.core.deployment import DeploymentConfig


@dataclass
class RecoveryReport:
    """The outcome of one partitioned recovery run."""

    database: ReactorDatabase
    #: Virtual-time makespan of the recovery (checkpoint load + tail
    #: replay across all partitions).
    recovery_us: float
    partitions: int
    rows_loaded: int
    entries_replayed: int
    parallel: bool
    #: executor core id -> virtual CPU charged for recovery work.
    per_executor_us: dict[int, float] = field(default_factory=dict)


def recover_partitioned(
        deployment: DeploymentConfig,
        declarations: Sequence[tuple[str, Any]],
        checkpoint: Checkpoint | CheckpointManifest,
        logs: Iterable[RedoLog],
        parallel: bool = True) -> RecoveryReport:
    """Rebuild a database from checkpoint + logs with per-reactor
    partitions replayed concurrently (or serially on one executor when
    ``parallel=False`` — the ablation baseline)."""
    from repro.core.database import ReactorDatabase

    if isinstance(checkpoint, CheckpointManifest):
        checkpoint = checkpoint.materialize()
    database = ReactorDatabase(deployment, declarations)
    scheduler = database.scheduler
    costs = database.costs
    started_at = scheduler.now

    # Partition the checkpoint image and the redo tail by reactor.
    loads: dict[str, dict[str, list[dict[str, Any]]]] = {
        name: tables for name, tables in checkpoint.reactors.items()
    }
    tails: dict[str, list[tuple[int, RedoEntry]]] = {}
    for log in logs:
        watermark = checkpoint.tid_watermarks.get(log.container_id, 0)
        for record in log.records:
            if record.commit_tid <= watermark:
                continue
            for entry in record.entries:
                tails.setdefault(entry.reactor, []).append(
                    (record.commit_tid, entry))
    for partition in tails.values():
        # Stable sort: intra-record entry order survives TID ties.
        partition.sort(key=lambda pair: pair[0])

    names = sorted(set(loads) | set(tails))
    counters = {"rows": 0, "entries": 0, "max_tid": 0}
    busy: dict[int, float] = {}

    def replay_partition(name: str) -> None:
        reactor = database.reactor(name)
        for table_name, rows in loads.get(name, {}).items():
            table = reactor.table(table_name)
            for row in rows:
                table.load_row(row)
            counters["rows"] += len(rows)
        for tid, entry in tails.get(name, ()):
            apply_entry_to(reactor.table(entry.table), entry, tid)
            counters["entries"] += 1
            if tid > counters["max_tid"]:
                counters["max_tid"] = tid

    # Assign partitions to their owning executor in the *target*
    # deployment and chain each executor's partitions as priced
    # scheduler events; executors proceed concurrently.
    frontier: dict[int, float] = {}
    for name in names:
        reactor = database.reactor(name)
        executor = (reactor.affinity_executor if parallel
                    else database.executors[0])
        rows = sum(len(r) for r in loads.get(name, {}).values())
        entries = len(tails.get(name, ()))
        cost = (rows * costs.recovery_load_per_row
                + entries * costs.recovery_replay_per_entry)
        # core_id is globally unique (executor_id is per-container).
        done_at = frontier.get(executor.core_id, started_at) + cost
        frontier[executor.core_id] = done_at
        executor.busy_time += cost
        busy[executor.core_id] = busy.get(executor.core_id, 0.0) + cost
        scheduler.at(done_at, replay_partition, name)
    scheduler.run()

    _finish_recovery(database, checkpoint, counters["max_tid"])
    return RecoveryReport(
        database=database,
        recovery_us=scheduler.now - started_at,
        partitions=len(names),
        rows_loaded=counters["rows"],
        entries_replayed=counters["entries"],
        parallel=parallel,
        per_executor_us=busy,
    )


def recover_image_partitioned(
        deployment: DeploymentConfig,
        declarations: Sequence[tuple[str, Any]],
        image: CrashImage,
        parallel: bool = True) -> RecoveryReport:
    """Partitioned recovery straight from a crash image."""
    return recover_partitioned(deployment, declarations,
                               image.manifest, image.to_logs(),
                               parallel=parallel)
