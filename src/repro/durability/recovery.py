"""Crash recovery: group commit, incremental checkpoints, replay.

The :class:`DurabilityManager` owns one database's durability state:

* the per-container redo logs (as before), plus the per-container
  :class:`~repro.durability.group_commit.LogFlusher` pipelines that
  decide *when* an appended record is actually durable — sync
  force-at-commit, epoch-based group commit, or background (async)
  flushing, per the deployment's ``durability_mode``;
* the full append sequence per container (``installed``), which
  survives checkpoint log truncation and is the reference order
  :func:`repro.formal.audit.certify_crash_recovery` certifies crash
  images against;
* dirty-key tracking (from the redo append stream) feeding
  *incremental checkpoints*: a chained
  :class:`~repro.durability.checkpoint.CheckpointManifest` whose
  segments carry only the keys written since the previous segment, and
  whose WAL-truncation watermark respects pinned MVCC snapshots,
  replica apply positions, and in-flight/just-completed migrations;
* :meth:`crash` — the kill-at-arbitrary-epoch primitive: an
  epoch-consistent :class:`CrashImage` of what would survive on disk
  (the flushed prefix of each log, with cross-container torn commits
  dropped so a transaction is recovered either everywhere or
  nowhere).

Recovery rebuilds a fresh database (same reactor declarations, any
deployment — architecture virtualization extends to recovery) from a
checkpoint, then replays redo records with commit TIDs above the
checkpoint watermark in global TID order.  Replay is idempotent on
after-images, so replaying from an older checkpoint with a longer log
yields the same state.  :mod:`repro.durability.partitioned` adds the
parallel SiloR-style variant (per-reactor partitions replayed
concurrently on the sim scheduler, priced in virtual time).

Replay goes through the regular ``install_*`` paths of the recovered
database's tables, i.e. through the multi-version storage engine: the
rebuilt records carry their replayed commit TIDs, so post-recovery
snapshot readers (``mvocc`` / ``snapshot_reads`` deployments) pin and
resolve against the recovered state exactly as against an original
one, and new version chains grow from it on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.durability.checkpoint import (
    FULL,
    INCREMENTAL,
    Checkpoint,
    CheckpointManifest,
    CheckpointSegment,
    require_quiescence,
)
from repro.durability.config import ASYNC, DURABILITY_MODES
from repro.durability.group_commit import LogFlusher
from repro.durability.wal import RedoLog, RedoRecord, apply_record_to
from repro.errors import SimulationError
from repro.runtime.futures import SimFuture

if TYPE_CHECKING:  # deployment.py imports this package's config at
    # module scope, so the runtime import of core.database is deferred
    # into recover() to keep the bootstrap acyclic.
    from repro.core.database import ReactorDatabase
    from repro.core.deployment import DeploymentConfig


@dataclass
class CrashImage:
    """What the log devices would hold after a crash right now.

    ``logs`` carry, per container, the durable (flushed) record prefix
    above the last truncation point, with *torn* cross-container
    commits removed: a distributed commit whose record flushed in one
    participant's epoch but not (yet) in another's is dropped
    everywhere, so recovery treats it as never-happened instead of
    replaying half a transaction (``torn_tids`` reports the drops —
    under ``sync``/``group`` only ever unacknowledged commits, because
    acknowledgement waits on every participant's flush; ``async``
    acknowledges before flushing, so its torn drops can include acked
    commits, which the certificate reports as part of the async loss
    window).  ``manifest`` is a deep copy of the checkpoint chain at
    crash time.
    """

    at_us: float
    mode: str
    manifest: CheckpointManifest
    logs: dict[int, list[RedoRecord]]
    durable_tids: dict[int, int] = field(default_factory=dict)
    flushed_counts: dict[int, int] = field(default_factory=dict)
    truncated_through: dict[int, int] = field(default_factory=dict)
    #: Commit sites — ``(container id, append position)`` pairs —
    #: of transactions acknowledged to clients before the crash.
    #: (Positions, not TIDs: TIDs are only unique per container.)
    acked_sites: list[tuple[int, int]] = field(default_factory=list)
    #: Commit TIDs acknowledged before the crash (reporting only).
    acked_tids: list[int] = field(default_factory=list)
    #: Sites dropped for cross-container epoch consistency.
    torn_sites: list[tuple[int, int]] = field(default_factory=list)
    #: Per-container TIDs of the dropped sites (reporting only).
    torn_tids: dict[int, list[int]] = field(default_factory=dict)

    def checkpoint(self) -> Checkpoint:
        return self.manifest.materialize()

    def to_logs(self) -> list[RedoLog]:
        """The surviving logs as replayable :class:`RedoLog`
        instances — what a restart mounts."""
        logs = []
        for cid, records in self.logs.items():
            log = RedoLog(cid)
            log.records = list(records)
            log.truncated_through = self.truncated_through.get(cid, 0)
            logs.append(log)
        return logs


class DurabilityManager:
    """Owns the redo logs + flush pipelines of one database."""

    def __init__(self, database: Any, mode: str = ASYNC) -> None:
        if mode not in DURABILITY_MODES:
            raise SimulationError(
                f"unknown durability mode {mode!r}; expected one of "
                f"{', '.join(DURABILITY_MODES)}")
        self.database = database
        self.mode = mode
        self.logs: dict[int, RedoLog] = {}
        self.flushers: dict[int, LogFlusher] = {}
        #: container id -> full append sequence (survives truncation;
        #: the reference order crash certification replays against).
        self.installed: dict[int, list[RedoRecord]] = {}
        #: Commit TIDs reported committed to clients (the executor
        #: notes them at root completion).  A *set* of numbers — TIDs
        #: can collide across containers, so ``acked_count`` (roots)
        #: is the accurate tally.
        self.acked_tids: set[int] = set()
        self.acked_count = 0
        #: Acked commit sites as ``(cid, append position)`` — the
        #: collision-free identity (TIDs are per-container sequences,
        #: so the same number can name unrelated commits on two
        #: containers).
        self.acked_sites: list[tuple[int, int]] = []
        #: root txn id -> this commit's sites, captured at install.
        self._sites: dict[int, list[tuple[int, int]]] = {}
        #: Cross-container commit groups (>= 2 sites): the units the
        #: crash image keeps atomic — durable everywhere or dropped
        #: everywhere.
        self.cross_groups: list[list[tuple[int, int]]] = []
        #: The incremental-checkpoint chain.
        self.manifest = CheckpointManifest()
        self._segment_seq = 0
        #: reactor -> table -> dirty primary keys since the last
        #: checkpoint segment (fed by the redo append stream and
        #: explicit bulk-load notes).
        self._dirty: dict[str, dict[str, set[tuple]]] = {}
        self.checkpoints_taken = 0
        self.records_truncated = 0
        #: Deliberate-bug toggle (chaos self-test only): acknowledge
        #: group/sync commits without waiting for their epoch flush —
        #: the classic ack-before-flush bug crash certification must
        #: catch as acked-commit loss.
        self.chaos_ack_bypass = False
        telemetry = getattr(database, "telemetry", None)
        if telemetry is not None:
            telemetry.register_durability(self)
        for container in database.containers:
            log = RedoLog(container.container_id)
            container.concurrency.redo_log = log
            self._attach_log(container.container_id, log)

    # ------------------------------------------------------------------
    # Log wiring
    # ------------------------------------------------------------------

    def _attach_log(self, container_id: int, log: RedoLog) -> None:
        self.logs[container_id] = log
        self.installed.setdefault(container_id, [])
        telemetry = getattr(self.database, "telemetry", None)
        flusher = LogFlusher(container_id, self.database.scheduler,
                             self.database.costs, self.mode,
                             telemetry=telemetry)
        self.flushers[container_id] = flusher
        if telemetry is not None:
            # Idempotent: a promotion re-attaches the same container
            # label and the gauges re-point to the new flusher.
            telemetry.register_flusher(flusher)

        def on_append(record: RedoRecord,
                      cid: int = container_id,
                      flusher: LogFlusher = flusher) -> None:
            self.installed[cid].append(record)
            self._note_dirty(record)
            flusher.on_append(record)

        log.add_listener(on_append)

    def on_log_replaced(self, container_id: int,
                        log: RedoLog) -> None:
        """A replication promotion re-anchored a container's log on
        the survivor's applied prefix: adopt it.  The seeded prefix is
        durable by construction (the replica had materialized it), so
        the new flusher starts fully flushed.  Stored commit sites on
        this container are remapped by TID into the new sequence
        (unique per container); sites the survivor never applied —
        the async lag-window loss replication's own certificate
        reports — are dropped here.
        """
        old_installed = self.installed.get(container_id, [])
        self._attach_log(container_id, log)
        self.installed[container_id] = list(log.records)
        flusher = self.flushers[container_id]
        flusher.flushed_records = len(log.records)
        flusher.durable_tid = max(
            (r.commit_tid for r in log.records), default=0)
        for record in log.records:
            self._note_dirty(record)
        position_of = {record.commit_tid: pos
                       for pos, record in enumerate(log.records)}

        def remap(sites: list[tuple[int, int]]
                  ) -> list[tuple[int, int]]:
            out = []
            for cid, pos in sites:
                if cid != container_id:
                    out.append((cid, pos))
                    continue
                tid = old_installed[pos].commit_tid \
                    if pos < len(old_installed) else None
                new_pos = position_of.get(tid)
                if new_pos is not None:
                    out.append((cid, new_pos))
            return out

        self.acked_sites = remap(self.acked_sites)
        self.cross_groups = [remap(group)
                             for group in self.cross_groups]
        self.cross_groups = [g for g in self.cross_groups
                             if len(g) > 1]
        self._sites = {txn: remap(sites)
                       for txn, sites in self._sites.items()}

    def _note_dirty(self, record: RedoRecord) -> None:
        for entry in record.entries:
            self._dirty.setdefault(entry.reactor, {}) \
                .setdefault(entry.table, set()).add(entry.pk)

    def note_bulk_load(self, reactor_name: str, table_name: str,
                       pks: Iterable[tuple]) -> None:
        """Bulk loads bypass the redo log; the dirty tracker must
        still see their keys or the next incremental segment would
        miss them."""
        self._dirty.setdefault(reactor_name, {}) \
            .setdefault(table_name, set()).update(pks)

    # ------------------------------------------------------------------
    # Commit acknowledgement (called from the executor)
    # ------------------------------------------------------------------

    def commit_ack_future(self, root: Any) -> SimFuture | None:
        """The future a just-installed commit must wait on before the
        client may see it, or ``None`` when it is already durable
        (read-only commits, ``async`` mode, or a flush that landed
        within the install event).

        Called synchronously in the install event, which is also the
        one moment this commit's records are the tails of their
        containers' append sequences — where its *sites* are captured
        for crash certification (2PC commit TIDs strictly exceed every
        prior TID on every participant, so a tail TID match is this
        commit's record, never an older collision).
        """
        futures = []
        sites: list[tuple[int, int]] = []
        for manager, __ in root.participants():
            cid = manager.container_id
            flusher = self.flushers.get(cid)
            if flusher is None:
                continue
            records = self.installed[cid]
            if records and records[-1].commit_tid == root.commit_tid:
                sites.append((cid, len(records) - 1))
            future = flusher.ack_future(root.commit_tid)
            if future is not None:
                futures.append(future)
        if sites:
            self._sites[root.txn_id] = sites
            if len(sites) > 1:
                self.cross_groups.append(sites)
        if self.chaos_ack_bypass:
            # Bug toggle: report the commit durable *now*, flush
            # pending.  Site capture above already ran, so the ack is
            # recorded and a crash inside the flush window shows up as
            # ``lost_acked`` — silently skipping the capture too would
            # make the bug invisible to the certificate.
            return None
        if not futures:
            return None
        if len(futures) == 1:
            return futures[0]
        # A cross-container commit is acknowledged only when *every*
        # participant's epoch flushed — the property that keeps acked
        # commits atomic across kill-at-arbitrary-epoch crashes.
        scheduler = self.database.scheduler
        future_cls = getattr(scheduler, "future_class", None) or SimFuture
        joint = future_cls(remote=False, subtxn_id=0,
                           target_reactor="log:join")
        remaining = {"n": len(futures)}

        def one_done(fut: SimFuture) -> None:
            remaining["n"] -= 1
            if remaining["n"] == 0:
                joint.resolve(None, scheduler.now)

        for future in futures:
            future.add_waiter(one_done)
        return joint

    def note_acked(self, root: Any) -> None:
        """The executor reported this commit to the client."""
        self.acked_count += 1
        sites = self._sites.pop(root.txn_id, None)
        if sites:
            self.acked_sites.extend(sites)
        if root.commit_tid:
            self.acked_tids.add(root.commit_tid)

    def note_unacked(self, root: Any) -> None:
        """The root completed without a commit acknowledgement
        (abort, or an in-doubt failover outcome reported as abort):
        its installed records, if any, stay unacked."""
        self._sites.pop(root.txn_id, None)

    def kick_flush(self, container_id: int) -> None:
        """Close and flush the container's open epoch now (durability
        barrier: migration state copies force the source log down
        before its state leaves the container)."""
        flusher = self.flushers.get(container_id)
        if flusher is not None:
            flusher.kick()

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------

    def checkpoint_and_truncate(self) -> Checkpoint:
        """Take a quiescent *full* checkpoint segment and truncate
        covered log prefixes (the usual checkpoint/log interplay).
        Returns the materialized flat checkpoint."""
        self.incremental_checkpoint(force_full=True)
        return self.manifest.materialize()

    def incremental_checkpoint(self,
                               force_full: bool = False
                               ) -> CheckpointSegment:
        """Append a checkpoint segment to the manifest.

        The first segment (or ``force_full``) snapshots everything;
        later segments carry only the keys dirtied since the previous
        one.  Requires quiescence — at a drained scheduler every
        pending flush has landed, so a segment never persists state
        ahead of the log (checkpoints cannot resurrect unflushed
        commits).  Covered log prefixes are truncated through
        :meth:`safe_truncation_tid`.
        """
        database = self.database
        require_quiescence(database)
        self._segment_seq += 1
        full = force_full or self.manifest.empty
        if full:
            segment = CheckpointSegment(
                seq=self._segment_seq, kind=FULL, parent_seq=None,
                taken_at_us=database.scheduler.now)
            for name in database.reactor_names():
                reactor = database.reactor(name)
                by_table = segment.rows.setdefault(name, {})
                for table in reactor.catalog:
                    by_table[table.name] = [
                        {**row, "__pk": list(
                            table.schema.primary_key_of(row))}
                        for row in table.rows()
                    ]
            # A full segment restarts the chain: older segments are
            # subsumed.
            self.manifest = CheckpointManifest(segments=[segment])
        else:
            parent = self.manifest.segments[-1]
            segment = CheckpointSegment(
                seq=self._segment_seq, kind=INCREMENTAL,
                parent_seq=parent.seq,
                taken_at_us=database.scheduler.now)
            for reactor_name, tables in sorted(self._dirty.items()):
                reactor = database.reactor(reactor_name)
                for table_name, pks in sorted(tables.items()):
                    table = reactor.table(table_name)
                    rows: list[dict[str, Any]] = []
                    deleted: list[list[Any]] = []
                    for pk in sorted(pks, key=repr):
                        record = table.get_record(pk)
                        if record is None:
                            deleted.append(list(pk))
                        else:
                            rows.append({**record.snapshot(),
                                         "__pk": list(pk)})
                    if rows:
                        segment.rows.setdefault(
                            reactor_name, {})[table_name] = rows
                    if deleted:
                        segment.deleted.setdefault(
                            reactor_name, {})[table_name] = deleted
            self.manifest.segments.append(segment)
        for container in database.containers:
            segment.tid_watermarks[container.container_id] = \
                container.concurrency.tids.last
        self._dirty = {}
        for container_id, log in self.logs.items():
            safe = self.safe_truncation_tid(
                container_id,
                segment.tid_watermarks.get(container_id, 0))
            segment.truncate_tids[container_id] = safe
            self.records_truncated += log.truncate_through(safe)
        self.checkpoints_taken += 1
        return segment

    def safe_truncation_tid(self, container_id: int,
                            checkpoint_tid: int) -> int:
        """How far this container's WAL may be truncated.

        Floored below the checkpoint watermark by (1) pinned MVCC
        snapshots — the black-box snapshot-isolation audit checks
        observed reads against logged history at or above the pin;
        (2) replica apply positions — a lagging replica's unapplied
        suffix stays replayable; (3) migration watermarks — an active
        migration's certificate replays the destination log above its
        watermark, and the last completed migration per reactor keeps
        its anchors until superseded.
        """
        tid = checkpoint_tid
        database = self.database
        storage = getattr(database, "storage", None)
        if storage is not None and storage.pinned:
            # Keep the record *at* the pin too: a stale read at the
            # snapshot is only caught if the write with commit TID in
            # (observed, snapshot] is still logged.  (At quiescence
            # in-flight roots have unpinned — this floor covers pins
            # held through the checkpoint by external consumers.)
            tid = min(tid, min(pin_tid for pin_tid, __
                               in storage.pinned.values()) - 1)
        replication = getattr(database, "replication", None)
        if replication is not None:
            for replica in replication.replicas.get(container_id, []):
                tid = min(tid, replica.applied_tid)
        migration = getattr(database, "migration", None)
        if migration is not None:
            for event in migration.active.values():
                if container_id in (event.src_cid, event.dst_cid):
                    tid = min(tid, event.watermark)
            for event in migration._last_completed.values():
                if event.dst_cid == container_id:
                    tid = min(tid, event.watermark)
        return tid

    # ------------------------------------------------------------------
    # Crash
    # ------------------------------------------------------------------

    def crash(self) -> CrashImage:
        """Snapshot what would survive a crash at this instant.

        Callable at *any* virtual time — mid-epoch, with flushes in
        flight — unlike checkpoints, which require quiescence.  The
        image holds each container's flushed record prefix (above its
        truncation point) with torn cross-container commits dropped,
        a deep copy of the checkpoint manifest, and the set of commits
        clients saw acknowledged.
        """
        flushed = {cid: flusher.flushed_records
                   for cid, flusher in self.flushers.items()}
        # Cross-container epoch consistency: a distributed commit
        # whose record flushed on some participants but not all is
        # dropped from the durable image everywhere.  Acked commits
        # are never affected — acknowledgement waited on every
        # participant's flush.
        torn_sites: list[tuple[int, int]] = []
        for group in self.cross_groups:
            durable_members = [(cid, pos) for cid, pos in group
                               if pos < flushed.get(cid, 0)]
            if durable_members and \
                    len(durable_members) < len(group):
                torn_sites.extend(durable_members)
        torn_by_cid: dict[int, set[int]] = {}
        torn_tids: dict[int, list[int]] = {}
        for cid, pos in torn_sites:
            torn_by_cid.setdefault(cid, set()).add(pos)
            torn_tids.setdefault(cid, []).append(
                self.installed[cid][pos].commit_tid)
        durable: dict[int, list[RedoRecord]] = {}
        for cid, log in self.logs.items():
            dropped = torn_by_cid.get(cid, ())
            durable[cid] = [
                record for pos, record in enumerate(
                    self.installed[cid][:flushed.get(cid, 0)])
                if record.commit_tid > log.truncated_through
                and pos not in dropped
            ]
        return CrashImage(
            at_us=self.database.scheduler.now,
            mode=self.mode,
            manifest=CheckpointManifest.from_json(
                self.manifest.to_json()),
            logs=durable,
            durable_tids={cid: f.durable_tid
                          for cid, f in self.flushers.items()},
            flushed_counts=flushed,
            truncated_through={cid: log.truncated_through
                               for cid, log in self.logs.items()},
            acked_sites=list(self.acked_sites),
            acked_tids=sorted(self.acked_tids),
            torn_sites=torn_sites,
            torn_tids=torn_tids,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def log_records(self):
        for log in self.logs.values():
            yield from log.records

    def stats_dict(self) -> dict[str, Any]:
        telemetry = getattr(self.database, "telemetry", None)
        if telemetry is not None:
            value = telemetry.registry.value
            return {
                "mode": self.mode,
                "acked_commits":
                    value("durability_acked_commits_total"),
                "checkpoints_taken":
                    value("durability_checkpoints_total"),
                "checkpoint_segments":
                    value("durability_checkpoint_segments"),
                "records_truncated":
                    value("durability_records_truncated_total"),
                "flushers": {cid: flusher.stats_dict()
                             for cid, flusher in
                             sorted(self.flushers.items())},
            }
        return {
            "mode": self.mode,
            "acked_commits": self.acked_count,
            "checkpoints_taken": self.checkpoints_taken,
            "checkpoint_segments": len(self.manifest.segments),
            "records_truncated": self.records_truncated,
            "flushers": {cid: flusher.stats_dict()
                         for cid, flusher in
                         sorted(self.flushers.items())},
        }


def enable_durability(database: Any,
                      mode: str | None = None) -> DurabilityManager:
    """Attach redo logging to a database (idempotent per database).

    ``mode`` selects the commit-acknowledgement discipline (``sync`` /
    ``group`` / ``async``); omitted, it defaults to ``async`` — pure
    background flushing, which acknowledges commits immediately and
    therefore preserves the timing of the original logging-only
    behaviour (replication and migration enable durability implicitly
    through this default).  A second call returns the existing manager
    instead of replacing the containers' logs — an application calling
    :func:`enable_durability` after replication attached must not
    detach the logs the replication manager is shipping from.
    """
    existing = getattr(database, "durability", None)
    if existing is not None:
        return existing
    manager = DurabilityManager(database, mode=mode or ASYNC)
    database.durability = manager
    return manager


def recover(deployment: DeploymentConfig,
            declarations: Sequence[tuple[str, Any]],
            checkpoint: Checkpoint | CheckpointManifest,
            logs: Iterable[RedoLog]) -> ReactorDatabase:
    """Rebuild a database from a checkpoint plus redo logs.

    ``checkpoint`` may be a flat :class:`Checkpoint` or a chained
    :class:`CheckpointManifest` (materialized on the way in).  The
    recovered database may use a *different* deployment than the
    crashed one — reactor state is logical, architecture is physical.
    For the priced, parallel variant see
    :func:`repro.durability.partitioned.recover_partitioned`.
    """
    from repro.core.database import ReactorDatabase

    if isinstance(checkpoint, CheckpointManifest):
        checkpoint = checkpoint.materialize()
    database = ReactorDatabase(deployment, declarations)

    # Phase 1: restore the checkpoint image.
    for reactor_name, tables in checkpoint.reactors.items():
        for table_name, rows in tables.items():
            table = database.reactor(reactor_name).table(table_name)
            for row in rows:
                table.load_row(row)

    # Phase 2: replay redo records beyond the checkpoint, in global
    # commit-TID order (Silo TIDs order conflicting transactions).
    pending = []
    for log in logs:
        watermark = checkpoint.tid_watermarks.get(log.container_id, 0)
        for record in log.records:
            if record.commit_tid > watermark:
                pending.append(record)
    pending.sort(key=lambda record: record.commit_tid)

    def table_for(reactor_name: str, table_name: str):
        return database.reactor(reactor_name).table(table_name)

    max_tid = 0
    for record in pending:
        max_tid = max(max_tid, record.commit_tid)
        apply_record_to(table_for, record)

    _finish_recovery(database, checkpoint, max_tid)
    return database


def recover_from_image(deployment: DeploymentConfig,
                       declarations: Sequence[tuple[str, Any]],
                       image: CrashImage) -> ReactorDatabase:
    """Recover from a :class:`CrashImage` (checkpoint manifest plus
    the durable log prefixes) — what a restart after
    :meth:`DurabilityManager.crash` sees."""
    return recover(deployment, declarations, image.manifest,
                   image.to_logs())


def _finish_recovery(database: ReactorDatabase, checkpoint: Checkpoint,
                     max_tid: int) -> None:
    """Shared recovery epilogue: TID watermarks and replica seeding."""
    # Restore TID watermarks so post-recovery commits continue above
    # everything replayed.
    for container in database.containers:
        watermark = max(
            checkpoint.tid_watermarks.get(container.container_id, 0),
            max_tid)
        container.concurrency.tids.advance_to(watermark)

    # A replication-enabled target deployment: seed the replicas with
    # the recovered state (checkpoint restore and replay wrote primary
    # tables directly, bypassing the bulk-load mirror).  The recovered
    # image is the replicas' new base; subsequent commits ship on top.
    if database.replication is not None:
        for name in database.reactor_names():
            reactor = database.reactor(name)
            for table in reactor.catalog:
                table_rows = table.rows()
                if table_rows:
                    database.replication.on_bulk_load(
                        name, table.name, table_rows)
