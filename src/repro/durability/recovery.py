"""Crash recovery: checkpoint restore + redo-log replay.

Recovery rebuilds a fresh database (same reactor declarations, any
deployment — architecture virtualization extends to recovery) from a
checkpoint, then replays redo records with commit TIDs above the
checkpoint watermark in global TID order.  Replay is idempotent on
after-images, so replaying from an older checkpoint with a longer log
yields the same state.

Replay goes through the regular ``install_*`` paths of the recovered
database's tables, i.e. through the multi-version storage engine: the
rebuilt records carry their replayed commit TIDs, so post-recovery
snapshot readers (``mvocc`` / ``snapshot_reads`` deployments) pin and
resolve against the recovered state exactly as against an original
one, and new version chains grow from it on demand.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.core.database import ReactorDatabase
from repro.core.deployment import DeploymentConfig
from repro.durability.checkpoint import Checkpoint
from repro.durability.wal import RedoLog, apply_record_to


class DurabilityManager:
    """Owns the redo logs of one database and drives recovery."""

    def __init__(self, database: Any) -> None:
        self.database = database
        self.logs: dict[int, RedoLog] = {}
        for container in database.containers:
            log = RedoLog(container.container_id)
            container.concurrency.redo_log = log
            self.logs[container.container_id] = log

    def checkpoint_and_truncate(self) -> Checkpoint:
        """Take a quiescent checkpoint and truncate covered log
        prefixes (the usual checkpoint/log interplay)."""
        from repro.durability.checkpoint import take_checkpoint

        checkpoint = take_checkpoint(self.database)
        for container_id, log in self.logs.items():
            log.truncate_through(
                checkpoint.tid_watermarks.get(container_id, 0))
        return checkpoint

    def log_records(self):
        for log in self.logs.values():
            yield from log.records


def enable_durability(database: Any) -> DurabilityManager:
    """Attach redo logging to a database (idempotent per database).

    A second call returns the existing manager instead of replacing the
    containers' logs — replication enables durability implicitly, and an
    application calling :func:`enable_durability` afterwards must not
    detach the logs the replication manager is shipping from.
    """
    existing = getattr(database, "durability", None)
    if existing is not None:
        return existing
    manager = DurabilityManager(database)
    database.durability = manager
    return manager


def recover(deployment: DeploymentConfig,
            declarations: Sequence[tuple[str, Any]],
            checkpoint: Checkpoint,
            logs: Iterable[RedoLog]) -> ReactorDatabase:
    """Rebuild a database from a checkpoint plus redo logs.

    The recovered database may use a *different* deployment than the
    crashed one — reactor state is logical, architecture is physical.
    """
    database = ReactorDatabase(deployment, declarations)

    # Phase 1: restore the checkpoint image.
    for reactor_name, tables in checkpoint.reactors.items():
        for table_name, rows in tables.items():
            table = database.reactor(reactor_name).table(table_name)
            for row in rows:
                table.load_row(row)

    # Phase 2: replay redo records beyond the checkpoint, in global
    # commit-TID order (Silo TIDs order conflicting transactions).
    pending = []
    for log in logs:
        watermark = checkpoint.tid_watermarks.get(log.container_id, 0)
        for record in log.records:
            if record.commit_tid > watermark:
                pending.append(record)
    pending.sort(key=lambda record: record.commit_tid)

    def table_for(reactor_name: str, table_name: str):
        return database.reactor(reactor_name).table(table_name)

    max_tid = 0
    for record in pending:
        max_tid = max(max_tid, record.commit_tid)
        apply_record_to(table_for, record)

    # Restore TID watermarks so post-recovery commits continue above
    # everything replayed.
    for container in database.containers:
        watermark = max(
            checkpoint.tid_watermarks.get(container.container_id, 0),
            max_tid)
        container.concurrency.tids.advance_to(watermark)

    # A replication-enabled target deployment: seed the replicas with
    # the recovered state (checkpoint restore and replay wrote primary
    # tables directly, bypassing the bulk-load mirror).  The recovered
    # image is the replicas' new base; subsequent commits ship on top.
    if database.replication is not None:
        for name in database.reactor_names():
            reactor = database.reactor(name)
            for table in reactor.catalog:
                table_rows = table.rows()
                if table_rows:
                    database.replication.on_bulk_load(
                        name, table.name, table_rows)
    return database
