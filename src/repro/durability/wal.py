"""Redo logging of committed writes.

The paper leaves durability to future work, pointing at "fast
log-based recovery" (SiloR) and "distributed checkpoints".  This
package implements that design over the simulated ReactDB: each
container keeps a :class:`RedoLog` of *logical redo records* — the
full after-images installed by committed transactions, tagged with
their commit TID.  Because Silo TIDs order transactions consistently
with their serial order, replaying redo records in TID order from a
checkpoint reconstructs exactly the committed state.

Logs are in-memory lists with optional JSON-lines serialization so
recovery can also be exercised across files.
"""

from __future__ import annotations

import functools
import json
from dataclasses import dataclass
from typing import Any, Callable, Iterable

INSERT = "insert"
UPDATE = "update"
DELETE = "delete"


@dataclass(frozen=True)
class RedoEntry:
    """One logical write: reactor/table/pk plus the after-image."""

    reactor: str
    table: str
    kind: str  # insert | update | delete
    pk: tuple
    row: dict[str, Any] | None  # None for deletes

    def to_json(self) -> dict[str, Any]:
        return {
            "reactor": self.reactor,
            "table": self.table,
            "kind": self.kind,
            "pk": list(self.pk),
            "row": self.row,
        }

    @staticmethod
    def from_json(data: dict[str, Any]) -> "RedoEntry":
        return RedoEntry(
            reactor=data["reactor"],
            table=data["table"],
            kind=data["kind"],
            pk=tuple(data["pk"]),
            row=data["row"],
        )


@dataclass(frozen=True)
class RedoRecord:
    """All writes of one committed transaction within one container."""

    commit_tid: int
    entries: tuple[RedoEntry, ...]

    def to_json_line(self) -> str:
        return json.dumps({
            "tid": self.commit_tid,
            "entries": [e.to_json() for e in self.entries],
        })

    @staticmethod
    def from_json_line(line: str) -> "RedoRecord":
        data = json.loads(line)
        return RedoRecord(
            commit_tid=data["tid"],
            entries=tuple(RedoEntry.from_json(e)
                          for e in data["entries"]),
        )

    @functools.cached_property
    def byte_size(self) -> int:
        """Serialized size of this record — what the group-commit
        batcher accumulates against ``flush_batch_bytes``.  Cached:
        the flush pipeline asks on every append, and records are
        immutable."""
        return len(self.to_json_line())


class RedoLog:
    """Per-container append-only redo log.

    ``listener`` (when set) observes every appended record — the
    log-shipping hook of :mod:`repro.replication`.  ``extra_listeners``
    carry additional append observers (the group-commit flush pipeline
    and the durability manager's dirty-key tracker) without disturbing
    the primary slot replication owns.  All fire at append time only;
    bulk-restored records (recovery, promotion seeding) are assigned to
    ``records`` directly and are not re-shipped or re-flushed.
    """

    def __init__(self, container_id: int) -> None:
        self.container_id = container_id
        self.records: list[RedoRecord] = []
        self.listener: Callable[[RedoRecord], None] | None = None
        self.extra_listeners: list[Callable[[RedoRecord], None]] = []
        #: Highest TID a checkpoint truncation dropped records through
        #: (0 when the log is complete from the beginning).  Lets
        #: replay-based audits tell "no records below X" apart from
        #: "records below X were truncated away".
        self.truncated_through = 0
        #: Set by :meth:`load_json_lines` when the serialized log ended
        #: in a torn (half-written) line: replay stopped at the last
        #: complete record instead of failing recovery.
        self.torn_tail = False

    def add_listener(self, fn: Callable[[RedoRecord], None]) -> None:
        self.extra_listeners.append(fn)

    def append(self, commit_tid: int,
               entries: Iterable[RedoEntry]) -> None:
        entries = tuple(entries)
        if entries:
            record = RedoRecord(commit_tid, entries)
            self.records.append(record)
            if self.listener is not None:
                self.listener(record)
            for fn in self.extra_listeners:
                fn(record)

    def truncate_through(self, tid: int) -> int:
        """Drop records with commit TID <= ``tid`` (post-checkpoint
        log truncation).  Returns the number dropped."""
        kept = [r for r in self.records if r.commit_tid > tid]
        dropped = len(self.records) - len(kept)
        self.records = kept
        if dropped and tid > self.truncated_through:
            self.truncated_through = tid
        return dropped

    def max_tid(self) -> int:
        return max((r.commit_tid for r in self.records), default=0)

    def dump_json_lines(self) -> str:
        return "\n".join(r.to_json_line() for r in self.records)

    @staticmethod
    def load_json_lines(container_id: int, text: str) -> "RedoLog":
        """Deserialize a log, tolerating a torn tail.

        A crash can truncate the last record mid-write; recovery must
        stop at the last *complete* record rather than refuse the whole
        log.  Only the final non-empty line may be torn — an
        unparseable line in the middle of the file is real corruption
        and raises :class:`ValueError`.
        """
        log = RedoLog(container_id)
        lines = [line for line in text.splitlines() if line.strip()]
        for index, line in enumerate(lines):
            try:
                record = RedoRecord.from_json_line(line)
            except (ValueError, KeyError, TypeError) as exc:
                if index == len(lines) - 1:
                    log.torn_tail = True
                    break
                raise ValueError(
                    f"corrupt redo record at line {index} of "
                    f"container {container_id}'s log (not the tail): "
                    f"{exc}"
                ) from exc
            log.records.append(record)
        return log

    def __len__(self) -> int:
        return len(self.records)


def apply_record_to(table_for: Callable[[str, str], Any],
                    record: RedoRecord) -> None:
    """Apply one redo record's after-images to live tables.

    ``table_for(reactor_name, table_name)`` resolves the target table.
    Application is idempotent on after-images: an INSERT whose key
    already exists installs the image as an update (replay over a newer
    checkpoint / replica re-ship), a DELETE of a missing key is a
    no-op.  Shared by crash recovery and replica log apply.
    """
    for entry in record.entries:
        apply_entry_to(table_for(entry.reactor, entry.table), entry,
                       record.commit_tid)


def apply_entry_to(table: Any, entry: RedoEntry, commit_tid: int) -> None:
    """Apply one redo entry's after-image to a live table (the unit
    partitioned recovery replays)."""
    existing = table.get_record(entry.pk)
    if entry.kind == DELETE:
        if existing is not None:
            table.install_delete(existing, commit_tid)
    elif entry.kind == INSERT and existing is None:
        assert entry.row is not None
        table.install_insert(entry.row, commit_tid)
    else:
        # UPDATE, or an INSERT whose key already exists: install
        # the after-image over whatever is there.
        assert entry.row is not None
        if existing is None:
            table.install_insert(entry.row, commit_tid)
        else:
            table.install_update(existing, entry.row, commit_tid)
