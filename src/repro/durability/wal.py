"""Redo logging of committed writes.

The paper leaves durability to future work, pointing at "fast
log-based recovery" (SiloR) and "distributed checkpoints".  This
package implements that design over the simulated ReactDB: each
container keeps a :class:`RedoLog` of *logical redo records* — the
full after-images installed by committed transactions, tagged with
their commit TID.  Because Silo TIDs order transactions consistently
with their serial order, replaying redo records in TID order from a
checkpoint reconstructs exactly the committed state.

Logs are in-memory lists with optional JSON-lines serialization so
recovery can also be exercised across files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Iterable

INSERT = "insert"
UPDATE = "update"
DELETE = "delete"


@dataclass(frozen=True)
class RedoEntry:
    """One logical write: reactor/table/pk plus the after-image."""

    reactor: str
    table: str
    kind: str  # insert | update | delete
    pk: tuple
    row: dict[str, Any] | None  # None for deletes

    def to_json(self) -> dict[str, Any]:
        return {
            "reactor": self.reactor,
            "table": self.table,
            "kind": self.kind,
            "pk": list(self.pk),
            "row": self.row,
        }

    @staticmethod
    def from_json(data: dict[str, Any]) -> "RedoEntry":
        return RedoEntry(
            reactor=data["reactor"],
            table=data["table"],
            kind=data["kind"],
            pk=tuple(data["pk"]),
            row=data["row"],
        )


@dataclass(frozen=True)
class RedoRecord:
    """All writes of one committed transaction within one container."""

    commit_tid: int
    entries: tuple[RedoEntry, ...]

    def to_json_line(self) -> str:
        return json.dumps({
            "tid": self.commit_tid,
            "entries": [e.to_json() for e in self.entries],
        })

    @staticmethod
    def from_json_line(line: str) -> "RedoRecord":
        data = json.loads(line)
        return RedoRecord(
            commit_tid=data["tid"],
            entries=tuple(RedoEntry.from_json(e)
                          for e in data["entries"]),
        )


class RedoLog:
    """Per-container append-only redo log.

    ``listener`` (when set) observes every appended record — the
    log-shipping hook of :mod:`repro.replication`.  It fires at append
    time only; bulk-restored records (recovery, promotion seeding) are
    assigned to ``records`` directly and are not re-shipped.
    """

    def __init__(self, container_id: int) -> None:
        self.container_id = container_id
        self.records: list[RedoRecord] = []
        self.listener: Callable[[RedoRecord], None] | None = None
        #: Highest TID a checkpoint truncation dropped records through
        #: (0 when the log is complete from the beginning).  Lets
        #: replay-based audits tell "no records below X" apart from
        #: "records below X were truncated away".
        self.truncated_through = 0

    def append(self, commit_tid: int,
               entries: Iterable[RedoEntry]) -> None:
        entries = tuple(entries)
        if entries:
            record = RedoRecord(commit_tid, entries)
            self.records.append(record)
            if self.listener is not None:
                self.listener(record)

    def truncate_through(self, tid: int) -> int:
        """Drop records with commit TID <= ``tid`` (post-checkpoint
        log truncation).  Returns the number dropped."""
        kept = [r for r in self.records if r.commit_tid > tid]
        dropped = len(self.records) - len(kept)
        self.records = kept
        if dropped and tid > self.truncated_through:
            self.truncated_through = tid
        return dropped

    def max_tid(self) -> int:
        return max((r.commit_tid for r in self.records), default=0)

    def dump_json_lines(self) -> str:
        return "\n".join(r.to_json_line() for r in self.records)

    @staticmethod
    def load_json_lines(container_id: int, text: str) -> "RedoLog":
        log = RedoLog(container_id)
        for line in text.splitlines():
            if line.strip():
                log.records.append(RedoRecord.from_json_line(line))
        return log

    def __len__(self) -> int:
        return len(self.records)


def apply_record_to(table_for: Callable[[str, str], Any],
                    record: RedoRecord) -> None:
    """Apply one redo record's after-images to live tables.

    ``table_for(reactor_name, table_name)`` resolves the target table.
    Application is idempotent on after-images: an INSERT whose key
    already exists installs the image as an update (replay over a newer
    checkpoint / replica re-ship), a DELETE of a missing key is a
    no-op.  Shared by crash recovery and replica log apply.
    """
    for entry in record.entries:
        table = table_for(entry.reactor, entry.table)
        existing = table.get_record(entry.pk)
        if entry.kind == DELETE:
            if existing is not None:
                table.install_delete(existing, record.commit_tid)
        elif entry.kind == INSERT and existing is None:
            assert entry.row is not None
            table.install_insert(entry.row, record.commit_tid)
        else:
            # UPDATE, or an INSERT whose key already exists: install
            # the after-image over whatever is there.
            assert entry.row is not None
            if existing is None:
                table.install_insert(entry.row, record.commit_tid)
            else:
                table.install_update(existing, entry.row,
                                     record.commit_tid)
