"""Exception hierarchy for the reactor database.

All library errors derive from :class:`ReactorError` so applications can
catch everything from this package with a single ``except`` clause.
Transaction-control exceptions (aborts) form their own subtree because
the runtime treats them as control flow: they terminate the root
transaction and are reported as abort outcomes, not as bugs.
"""

from __future__ import annotations


class ReactorError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReactorError):
    """A schema definition or a row violated schema rules."""


class QueryError(ReactorError):
    """A query referenced unknown tables/columns or was malformed."""


class SQLParseError(QueryError):
    """The SQL text could not be parsed."""


class UnknownReactorError(ReactorError):
    """A call referenced a reactor name that was never declared."""


class UnknownProcedureError(ReactorError):
    """A call referenced a procedure not registered on the reactor type."""


class DeploymentError(ReactorError):
    """A deployment configuration is invalid or inconsistent."""


class ReplicationError(ReactorError):
    """The replication subsystem was misconfigured or misused."""


class MigrationError(ReactorError):
    """An online reactor migration was misconfigured or misused."""


class SimulationError(ReactorError):
    """The discrete-event simulator detected an internal inconsistency."""


class TransactionAbort(ReactorError):
    """Base class for every condition that aborts a root transaction."""


class UserAbort(TransactionAbort):
    """The application logic requested an abort (``ctx.abort(...)``)."""


class ReadOnlyViolation(UserAbort):
    """A read-only root transaction attempted a mutation.

    Raised uniformly on every mutation path (insert, update, delete) of
    a session whose root was declared read-only — whether the session
    is a validated read session on the primary, a replica-routed read
    session, or a multi-version snapshot session.  Subclasses
    :class:`UserAbort` because the runtime attributes it like an
    application abort: the transaction was healthy, the application
    broke its own read-only declaration.
    """


class CCAbort(TransactionAbort):
    """Base class for aborts initiated by a concurrency-control scheme.

    The runtime distinguishes these from user aborts when attributing
    abort reasons: a :class:`CCAbort` means the scheme killed an
    otherwise healthy transaction to preserve isolation.
    """


class ValidationAbort(CCAbort):
    """OCC validation failed: a read was stale or a write lock clashed."""


class LockConflictAbort(CCAbort):
    """2PL NO_WAIT: a lock request conflicted with a concurrent holder."""


class DeadlockAvoidanceAbort(CCAbort):
    """2PL WAIT_DIE: the requester was younger than a conflicting lock
    holder and died rather than wait (deadlock avoidance)."""


class WoundAbort(CCAbort):
    """2PL WAIT_DIE: this transaction was wounded (preempted) by an
    older transaction requesting a lock it held."""


class MigrationAbort(CCAbort):
    """A transaction was killed by the online-migration subsystem: a
    sub-call parked for a migrating reactor could not be replayed
    because the migration was cancelled (container failure)."""


class DangerousStructureAbort(TransactionAbort):
    """The dynamic intra-transaction safety condition of Section 2.2.4.

    Raised when a sub-transaction is invoked on a reactor that is already
    executing a *different* sub-transaction of the same root transaction,
    which would break the illusion of a single logical thread of control
    per reactor.
    """


class RecordNotFound(ReactorError):
    """A point read/update/delete referenced a missing primary key."""


class DuplicateKeyError(ReactorError):
    """An insert collided with an existing primary key."""
