"""One module per paper table/figure; see DESIGN.md for the index.

Each module exposes ``run(...)`` (returns plain data, parameterized so
benchmarks can trade precision for wall-clock time) and ``report(...)``
(prints the same rows/series the paper's figure or table shows).
Running a module as a script executes both with default parameters.

Public exports are the experiment submodules themselves (``fig05``
through ``fig19``, ``table1``, ``appf2`` / ``appf3``) plus
:mod:`~repro.experiments.common`, the shared database/deployment
builders they all use.
"""

from repro.experiments import (  # noqa: F401
    appf2,
    appf3,
    common,
    fig05,
    fig06,
    fig07_08,
    fig09_10,
    fig11,
    fig12,
    fig13_14,
    fig15_16,
    fig17_18,
    fig19,
    table1,
)

__all__ = [
    "common",
    "fig05",
    "fig06",
    "fig07_08",
    "fig09_10",
    "fig11",
    "fig12",
    "fig13_14",
    "fig15_16",
    "fig17_18",
    "fig19",
    "table1",
    "appf2",
    "appf3",
]
