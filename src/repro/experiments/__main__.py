"""Run paper experiments from the command line.

Usage::

    python -m repro.experiments                 # list experiments
    python -m repro.experiments fig05 fig19     # run selected ones
    python -m repro.experiments all             # run everything

Each experiment prints the series/rows of its paper figure or table
with default (paper-shaped, moderately sized) parameters.  For
scaled-down quick runs use the benchmark suite instead:
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import sys
import time

from repro import experiments

EXPERIMENTS = [name for name in experiments.__all__
               if name != "common"]


def run_one(name: str) -> None:
    module = getattr(experiments, name)
    print(f"\n######## {name} "
          f"({module.__doc__.strip().splitlines()[0]})")
    start = time.time()
    module.report(module.run())
    print(f"-- {name} finished in {time.time() - start:.1f}s "
          "wall clock")


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        print("available experiments:")
        for name in EXPERIMENTS:
            doc = getattr(experiments, name).__doc__ or ""
            print(f"  {name:10s} {doc.strip().splitlines()[0]}")
        return 0
    names = EXPERIMENTS if argv == ["all"] else argv
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; known: {EXPERIMENTS}")
        return 1
    for name in names:
        run_one(name)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
