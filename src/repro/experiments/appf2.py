"""Appendix F.2: the effect of (losing) affinity.

Scale factor 1, a single client worker, shared-everything-without-
affinity with a growing number of transaction executors.  Round-robin
routing sends the n-th request to executor ``n mod k``, so every
additional executor further destroys cache locality: the paper
measures throughput dropping to 86% with two executors and
progressively to ~40% with sixteen.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import run_measurement
from repro.bench.report import print_table
from repro.experiments.common import tpcc_database
from repro.workloads import tpcc


@dataclass
class AffinityPoint:
    executors: int
    throughput_ktps: float
    relative_pct: float


def run(executor_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
        measure_us: float = 80_000.0,
        n_epochs: int = 5) -> list[AffinityPoint]:
    throughputs = {}
    for n_executors in executor_counts:
        database = tpcc_database(
            "shared-everything-without-affinity", 1,
            n_executors=n_executors)
        workload = tpcc.TpccWorkload(n_warehouses=1)
        result = run_measurement(
            database, 1, workload.factory_for,
            warmup_us=measure_us * 0.1, measure_us=measure_us,
            n_epochs=n_epochs)
        throughputs[n_executors] = result.summary.throughput_ktps
    baseline = throughputs[executor_counts[0]]
    return [
        AffinityPoint(
            executors=n,
            throughput_ktps=tput,
            relative_pct=100.0 * tput / baseline if baseline else 0.0,
        )
        for n, tput in throughputs.items()
    ]


def report(points: list[AffinityPoint]) -> None:
    print_table(
        "Appendix F.2: affinity ablation (TPC-C scale factor 1, "
        "1 worker, round-robin routing)",
        ["executors", "throughput [Ktxn/sec]", "% of 1-executor"],
        [[p.executors, p.throughput_ktps, round(p.relative_pct, 1)]
         for p in points])


if __name__ == "__main__":
    report(run())
