"""Appendix F.3: containerization overhead.

Empty transactions submitted with concurrency control disabled
measure the pure cost of a transaction invocation through ReactDB's
container machinery: input generation, the client -> transaction
executor thread switch, executor wake-up, and the reply switch.  The
paper reports a roughly constant ~22 usec per invocation across scale
factors, dominated by cross-core thread switching, amounting to ~18%
of average TPC-C transaction latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import run_measurement
from repro.bench.report import print_table
from repro.experiments.common import tpcc_database
from repro.workloads import tpcc


@dataclass
class OverheadPoint:
    scale_factor: int
    overhead_us: float
    tpcc_latency_us: float
    overhead_pct_of_tpcc: float


def run(scale_factors: tuple[int, ...] = (1, 4, 8, 16),
        measure_us: float = 50_000.0,
        n_epochs: int = 5) -> list[OverheadPoint]:
    points = []
    for scale_factor in scale_factors:
        empty_db = tpcc_database("shared-nothing-async", scale_factor,
                                 cc_scheme="none")

        def empty_factory(worker_id: int):
            w_name = tpcc.warehouse_name(
                worker_id % scale_factor + 1)
            return lambda worker: (w_name, "empty_txn", ())

        result = run_measurement(
            empty_db, 1, empty_factory,
            warmup_us=measure_us * 0.1, measure_us=measure_us,
            n_epochs=n_epochs)
        overhead = result.summary.latency_us

        tpcc_db = tpcc_database("shared-nothing-async", scale_factor)
        workload = tpcc.TpccWorkload(n_warehouses=scale_factor)
        tpcc_result = run_measurement(
            tpcc_db, 1, workload.factory_for,
            warmup_us=measure_us * 0.1, measure_us=measure_us,
            n_epochs=n_epochs)
        tpcc_latency = tpcc_result.summary.latency_us

        points.append(OverheadPoint(
            scale_factor=scale_factor,
            overhead_us=overhead,
            tpcc_latency_us=tpcc_latency,
            overhead_pct_of_tpcc=100.0 * overhead / tpcc_latency
            if tpcc_latency else 0.0,
        ))
    return points


def report(points: list[OverheadPoint]) -> None:
    print_table(
        "Appendix F.3: containerization overhead (empty txns, "
        "concurrency control disabled)",
        ["scale factor", "overhead/invocation [usec]",
         "TPC-C latency [usec]", "overhead % of TPC-C"],
        [[p.scale_factor, p.overhead_us, p.tpcc_latency_us,
          round(p.overhead_pct_of_tpcc, 1)] for p in points])


if __name__ == "__main__":
    report(run())
