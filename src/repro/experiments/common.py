"""Shared setup helpers for the paper's experiments.

Builders here encode the deployments of Section 4.1.3: the Smallbank
latency rig (seven shared-nothing containers of contiguous customer
ranges on the Xeon profile) and the TPC-C rig (one executor per
warehouse on the Opteron profile, under any of the three architecture
strategies).

Each ``*_database`` builder has a ``*_client`` twin returning the same
rig behind the unified :class:`~repro.client.Client` surface (a
:class:`~repro.client.LocalClient`; reach the database via
``client.database``).  The harness accepts either, so experiment
drivers can migrate call site by call site.
"""

from __future__ import annotations

from repro.client import LocalClient
from repro.core.database import ReactorDatabase
from repro.core.deployment import (
    DeploymentConfig,
    RangePlacement,
    shared_everything_with_affinity,
    shared_everything_without_affinity,
    shared_nothing,
)
from repro.durability.config import DurabilityConfig
from repro.replication import ReplicationConfig
from repro.sim.machine import OPTERON_6274, XEON_E3_1276, MachineProfile
from repro.workloads import smallbank
from repro.workloads import tpcc

SMALLBANK_CONTAINERS = 7

#: The three deployment strategies by their paper names.
STRATEGIES = (
    "shared-everything-without-affinity",
    "shared-everything-with-affinity",
    "shared-nothing-async",
    "shared-nothing-sync",
)


def smallbank_database(customers_per_container: int = 200,
                       n_containers: int = SMALLBANK_CONTAINERS,
                       machine: MachineProfile = XEON_E3_1276,
                       ) -> ReactorDatabase:
    """The Section 4.2 rig: 7 shared-nothing containers, 1 executor
    each, contiguous customer ranges, Xeon profile."""
    n_customers = customers_per_container * n_containers
    deployment = shared_nothing(
        n_containers, machine=machine,
        placement=RangePlacement(customers_per_container))
    database = ReactorDatabase(deployment,
                               smallbank.declarations(n_customers))
    smallbank.load(database, n_customers)
    return database


def smallbank_client(customers_per_container: int = 200,
                     n_containers: int = SMALLBANK_CONTAINERS,
                     machine: MachineProfile = XEON_E3_1276,
                     ) -> LocalClient:
    """The Section 4.2 rig behind the unified client surface."""
    return LocalClient(smallbank_database(
        customers_per_container, n_containers, machine))


def smallbank_destination(container: int, slot: int,
                          customers_per_container: int = 200) -> str:
    """The ``slot``-th customer hosted on ``container``.

    Slot 0 on container 0 is the conventional source account; callers
    pick destination slots >= 1 to avoid self-transfers.
    """
    return smallbank.reactor_name(
        container * customers_per_container + slot)


def spread_destinations(size: int, customers_per_container: int = 200,
                        n_containers: int = SMALLBANK_CONTAINERS,
                        start_container: int = 0) -> list[str]:
    """Destination accounts, one container each, cycling (Figure 5):
    destination ``i`` lands on container ``(start + i) mod n``."""
    return [
        smallbank_destination((start_container + i) % n_containers,
                              1 + i // n_containers,
                              customers_per_container)
        for i in range(size)
    ]


def tpcc_deployment(strategy: str, n_executors: int,
                    machine: MachineProfile = OPTERON_6274,
                    mpl: int = 4,
                    cc_scheme: str = "occ",
                    cc_enabled: bool | None = None,
                    replication: ReplicationConfig | None = None,
                    durability: DurabilityConfig | None = None,
                    backend: str = "sim"
                    ) -> DeploymentConfig:
    """A TPC-C deployment per paper strategy name.

    ``shared-nothing-sync`` and ``shared-nothing-async`` share the same
    deployment — they differ only in the program formulation (the
    ``sync_remote`` knob of the workload).  ``cc_scheme`` selects the
    concurrency-control protocol ("occ", "2pl_nowait", "2pl_waitdie",
    "none"); the legacy ``cc_enabled`` bool is accepted as an alias,
    as in the deployment factories.  ``replication`` adds log-shipping
    replicas per container (see :mod:`repro.replication`).
    """
    if cc_enabled is not None:
        cc_scheme = cc_scheme if cc_enabled else "none"
    if strategy == "shared-everything-without-affinity":
        return shared_everything_without_affinity(
            n_executors, machine=machine, cc_scheme=cc_scheme,
            replication=replication, durability=durability,
            backend=backend)
    if strategy == "shared-everything-with-affinity":
        return shared_everything_with_affinity(
            n_executors, machine=machine, cc_scheme=cc_scheme,
            replication=replication, durability=durability,
            backend=backend)
    if strategy in ("shared-nothing-async", "shared-nothing-sync",
                    "shared-nothing"):
        return shared_nothing(n_executors, machine=machine, mpl=mpl,
                              cc_scheme=cc_scheme,
                              replication=replication,
                              durability=durability, backend=backend)
    raise ValueError(f"unknown strategy {strategy!r}")


def tpcc_database(strategy: str, n_warehouses: int,
                  scale: tpcc.TpccScale | None = None,
                  machine: MachineProfile = OPTERON_6274,
                  mpl: int = 4, n_executors: int | None = None,
                  cc_scheme: str = "occ",
                  cc_enabled: bool | None = None,
                  replication: ReplicationConfig | None = None,
                  durability: DurabilityConfig | None = None,
                  backend: str = "sim"
                  ) -> ReactorDatabase:
    """Build and load a TPC-C database under one strategy.

    ``n_executors`` defaults to ``n_warehouses`` (the paper configures
    one transaction executor per warehouse)."""
    deployment = tpcc_deployment(
        strategy, n_executors or n_warehouses, machine=machine,
        mpl=mpl, cc_scheme=cc_scheme, cc_enabled=cc_enabled,
        replication=replication, durability=durability,
        backend=backend)
    database = ReactorDatabase(deployment,
                               tpcc.declarations(n_warehouses))
    tpcc.load(database, n_warehouses, scale)
    return database


def tpcc_client(strategy: str, n_warehouses: int,
                **kwargs: object) -> LocalClient:
    """A loaded TPC-C rig behind the unified client surface; keyword
    arguments are those of :func:`tpcc_database`."""
    return LocalClient(tpcc_database(strategy, n_warehouses, **kwargs))
