"""Figure 5: latency vs. transaction size and program formulation.

Multi-transfer on the Smallbank rig: one worker, seven shared-nothing
containers, destination ``i`` on container ``i mod 7`` (the first
destination shares the source's container, so a size-1 transfer is
fully local — the effect Figure 6 remarks on).  The paper's observed
ordering — fully-sync slowest, latency dropping with increasing
asynchronicity, opt fastest — is the reproduction target.
"""

from __future__ import annotations

from repro.bench.harness import single_worker_latency
from repro.bench.report import print_series
from repro.experiments.common import (
    smallbank_database,
    spread_destinations,
)
from repro.workloads import smallbank


def run(sizes: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7),
        variants: tuple[str, ...] = smallbank.VARIANTS,
        n_txns: int = 100,
        customers_per_container: int = 200
        ) -> dict[str, dict[int, float]]:
    """Returns {variant: {size: avg latency in microseconds}}."""
    results: dict[str, dict[int, float]] = {v: {} for v in variants}
    for variant in variants:
        for size in sizes:
            database = smallbank_database(customers_per_container)
            src = smallbank.reactor_name(0)
            dsts = spread_destinations(
                size, customers_per_container)
            spec = smallbank.multi_transfer_spec(variant, src, dsts)
            result = single_worker_latency(
                database, lambda worker: spec, n_txns=n_txns)
            results[variant][size] = result.summary.latency_us
    return results


def report(results: dict[str, dict[int, float]]) -> None:
    print_series(
        "Figure 5: multi-transfer latency vs size and formulation",
        "txn size", results, unit="usec")


if __name__ == "__main__":
    report(run())
