"""Figure 6: latency breakdown into cost-model components.

Profiles the fully-sync and opt multi-transfer formulations at sizes
1, 4 and 7, breaking observed latency into the Figure 3 components
(sync-execution, Cs, Cr, async-execution, commit+input-gen).  The
cost model is calibrated *from the size-1 fully-sync profile only*
(as in the paper) and predictions for all other (variant, size)
points are printed next to the observations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import single_worker_latency
from repro.bench.report import print_table
from repro.costmodel import (
    Calibration,
    calibrate_from_summary,
    multi_transfer,
    predict_observable_breakdown,
)
from repro.experiments.common import (
    smallbank_client,
    spread_destinations,
)
from repro.workloads import smallbank

COMPONENTS = ("sync_execution", "cs", "cr", "async_execution",
              "commit_input_gen")


@dataclass
class BreakdownRow:
    label: str
    observed: dict[str, float]
    predicted: dict[str, float]


def _observe(variant: str, size: int, n_txns: int,
             customers_per_container: int):
    client = smallbank_client(customers_per_container)
    src = smallbank.reactor_name(0)
    dsts = spread_destinations(size, customers_per_container)
    spec = smallbank.multi_transfer_spec(variant, src, dsts)
    result = single_worker_latency(client, lambda worker: spec,
                                   n_txns=n_txns)
    summary = result.summary
    observed = dict(summary.breakdown)
    observed["total"] = summary.latency_us
    return summary, observed


def _comm_pairs(calibration: Calibration, size: int):
    """Destination i is remote unless it lands on the source container
    (i mod 7 == 0 under the Figure 5 destination spread)."""
    flags = [(i % 7) != 0 for i in range(size)]
    return [(calibration.cs, calibration.cr) if remote else (0.0, 0.0)
            for remote in flags]


def run(sizes: tuple[int, ...] = (1, 4, 7),
        variants: tuple[str, ...] = ("fully-sync", "opt"),
        n_txns: int = 100,
        customers_per_container: int = 200) -> list[BreakdownRow]:
    # Calibration point: fully-sync at size 1 (paper Section 4.2.2).
    # At size one the destination is local (same container as the
    # source), so the profile isolates processing; the incremental
    # cost of the first *remote* destination (size 2) calibrates the
    # communication parameters and the per-container commit slope.
    # Everything is derived from observations only.
    size1, observed1 = _observe("fully-sync", 1, n_txns,
                                customers_per_container)
    size2, observed2 = _observe("fully-sync", 2, n_txns,
                                customers_per_container)
    base = calibrate_from_summary(size1, n_remote_sync=1,
                                  leaf_per_sync=2)
    leaf = base.leaf_exec
    cs = size2.breakdown["cs"]
    commit_slope = (size2.breakdown["commit_input_gen"]
                    - size1.breakdown["commit_input_gen"])
    # The effective receive cost absorbs transport and wake-up
    # overheads: it is whatever one remote synchronous transfer costs
    # beyond its processing, send and commit components.
    delta_total = observed2["total"] - observed1["total"]
    cr = max(0.0, delta_total - 2 * leaf - cs - commit_slope)
    calibration = Calibration(
        cs=cs, cr=cr, leaf_exec=leaf,
        commit_input_gen=base.commit_input_gen)

    rows = []
    for variant in variants:
        for size in sizes:
            __, observed = _observe(variant, size, n_txns,
                                    customers_per_container)
            spec = multi_transfer(variant, calibration,
                                  _comm_pairs(calibration, size))
            remote_dsts = sum(1 for i in range(size) if i % 7 != 0)
            commit = calibration.commit_input_gen \
                + commit_slope * remote_dsts
            predicted = predict_observable_breakdown(
                spec, commit_input_gen=commit)
            rows.append(BreakdownRow(
                label=f"{variant}@{size}",
                observed=observed, predicted=predicted))
    return rows


def report(rows: list[BreakdownRow]) -> None:
    headers = ["program", "kind"] + list(COMPONENTS) + ["total"]
    table = []
    for row in rows:
        table.append([row.label, "observed"]
                     + [row.observed.get(c, 0.0) for c in COMPONENTS]
                     + [row.observed["total"]])
        table.append([row.label + "-pred", "predicted"]
                     + [row.predicted.get(c, 0.0) for c in COMPONENTS]
                     + [row.predicted["total"]])
    print_table("Figure 6: latency breakdown, observed vs predicted "
                "(usec)", headers, table)


if __name__ == "__main__":
    report(run())
