"""Figures 7 and 8: TPC-C throughput/latency under varying load.

Standard TPC-C mix at scale factor 4 (four warehouse reactors, four
transaction executors in every deployment), client workers swept from
1 to 8 on the Opteron profile.  Expected shapes (Section 4.3.1):

* shared-everything-with-affinity wins throughout (affinity + zero
  migration of control + MPL 1 resilience to conflicts);
* shared-nothing-async close behind (sub-transaction dispatch costs
  on the 1%/15% remote accesses; abort rate rises past 4 workers);
* shared-everything-without-affinity worst (round-robin destroys
  locality; aborts under overload).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import run_measurement
from repro.bench.report import print_series
from repro.experiments.common import tpcc_database
from repro.workloads import tpcc

DEPLOYMENTS = (
    "shared-everything-without-affinity",
    "shared-nothing-async",
    "shared-everything-with-affinity",
)


@dataclass
class LoadPoint:
    strategy: str
    workers: int
    throughput_ktps: float
    latency_us: float
    abort_rate: float
    utilization: dict[int, float]


def run(scale_factor: int = 4,
        worker_counts: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8),
        measure_us: float = 100_000.0,
        n_epochs: int = 5) -> list[LoadPoint]:
    points = []
    for strategy in DEPLOYMENTS:
        for workers in worker_counts:
            database = tpcc_database(strategy, scale_factor)
            workload = tpcc.TpccWorkload(n_warehouses=scale_factor)
            result = run_measurement(
                database, workers, workload.factory_for,
                warmup_us=measure_us * 0.1, measure_us=measure_us,
                n_epochs=n_epochs)
            summary = result.summary
            points.append(LoadPoint(
                strategy=strategy,
                workers=workers,
                throughput_ktps=summary.throughput_ktps,
                latency_us=summary.latency_us,
                abort_rate=summary.abort_rate,
                utilization=result.utilization(),
            ))
    return points


def report(points: list[LoadPoint]) -> None:
    tput = {}
    lat = {}
    aborts = {}
    for p in points:
        tput.setdefault(p.strategy, {})[p.workers] = p.throughput_ktps
        lat.setdefault(p.strategy, {})[p.workers] = p.latency_us
        aborts.setdefault(p.strategy, {})[p.workers] = \
            round(p.abort_rate * 100, 2)
    print_series("Figure 7: TPC-C throughput vs load (scale factor 4)",
                 "workers", tput, unit="Ktxn/sec")
    print_series("Figure 8: TPC-C latency vs load (scale factor 4)",
                 "workers", lat, unit="usec")
    print_series("abort rates (Section 4.3.1 text)",
                 "workers", aborts, unit="%")
    # The paper narrates executor-core utilizations (e.g. S2 grows
    # 83% -> 99% from 4 to 8 workers; S3 at one worker loads mostly
    # the first core): print them for the extreme load points.
    util = {}
    for p in points:
        if p.workers in (1, max(w for w in tput[p.strategy])):
            cores = sorted(p.utilization.items())
            util.setdefault(p.strategy, {})[p.workers] = " ".join(
                f"{100 * u:.0f}%" for __, u in cores)
    for strategy, series in util.items():
        for workers, text in sorted(series.items()):
            print(f"  utilization {strategy} @{workers} workers: "
                  f"{text}")


if __name__ == "__main__":
    report(run())
