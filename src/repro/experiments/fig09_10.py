"""Figures 9 and 10: asynchronicity trade-offs under load.

100% new-order transactions at scale factor 8 with every item drawn
from a remote warehouse and an artificial 300-400 us stock
replenishment computation per item (the "new-order-delay" variant).
At light load, shared-nothing-async roughly doubles
shared-everything-with-affinity's throughput by running the delayed
stock updates in parallel across warehouse reactors; as workers
saturate the executors, the overhead of sub-transaction dispatch makes
shared-everything-with-affinity overtake — the crossover the paper
highlights.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import run_measurement
from repro.bench.report import print_series
from repro.experiments.common import tpcc_database
from repro.workloads import tpcc

DELAY_RANGE = (300.0, 400.0)
DEPLOYMENTS = ("shared-nothing-async", "shared-everything-with-affinity")


@dataclass
class DelayPoint:
    strategy: str
    workers: int
    throughput_tps: float
    latency_ms: float
    abort_rate: float


def run(scale_factor: int = 8,
        worker_counts: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8),
        measure_us: float = 300_000.0,
        n_epochs: int = 5) -> list[DelayPoint]:
    points = []
    for strategy in DEPLOYMENTS:
        for workers in worker_counts:
            database = tpcc_database(strategy, scale_factor)
            workload = tpcc.TpccWorkload(
                n_warehouses=scale_factor,
                mix=tpcc.NEW_ORDER_ONLY,
                remote_item_prob=1.0,
                invalid_item_prob=0.0,
                delay_range=DELAY_RANGE,
            )
            result = run_measurement(
                database, workers, workload.factory_for,
                warmup_us=measure_us * 0.1, measure_us=measure_us,
                n_epochs=n_epochs)
            summary = result.summary
            points.append(DelayPoint(
                strategy=strategy,
                workers=workers,
                throughput_tps=summary.throughput_tps,
                latency_ms=summary.latency_ms,
                abort_rate=summary.abort_rate,
            ))
    return points


def report(points: list[DelayPoint]) -> None:
    tput = {}
    lat = {}
    for p in points:
        tput.setdefault(p.strategy, {})[p.workers] = p.throughput_tps
        lat.setdefault(p.strategy, {})[p.workers] = p.latency_ms
    print_series("Figure 9: new-order-delay throughput vs load "
                 "(scale factor 8)", "workers", tput, unit="txn/sec")
    print_series("Figure 10: new-order-delay latency vs load "
                 "(scale factor 8)", "workers", lat, unit="msec")


if __name__ == "__main__":
    report(run())
