"""Figure 11 (Appendix B.1): local vs. remote destination placement.

fully-sync and opt multi-transfers whose destinations either all live
on the source's container (``-local``) or span all seven containers
(``-remote``).  fully-sync-remote rises sharply (processing *and*
communication per transfer); opt-local vs opt-remote differ only by
partially overlapped communication.
"""

from __future__ import annotations

from repro.bench.harness import single_worker_latency
from repro.bench.report import print_series
from repro.experiments.common import (
    SMALLBANK_CONTAINERS,
    smallbank_database,
    smallbank_destination,
)
from repro.workloads import smallbank


def _local_destinations(size: int, customers_per_container: int):
    return [smallbank_destination(0, 1 + i, customers_per_container)
            for i in range(size)]


def _remote_destinations(size: int, customers_per_container: int):
    """Destination i on container 1 + (i mod 6): never the source's."""
    return [
        smallbank_destination(1 + i % (SMALLBANK_CONTAINERS - 1),
                              1 + i // (SMALLBANK_CONTAINERS - 1),
                              customers_per_container)
        for i in range(size)
    ]


def run(sizes: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7),
        n_txns: int = 100, customers_per_container: int = 200
        ) -> dict[str, dict[int, float]]:
    results: dict[str, dict[int, float]] = {}
    cases = []
    for variant in ("fully-sync", "opt"):
        cases.append((f"{variant}-remote", variant,
                      _remote_destinations))
        cases.append((f"{variant}-local", variant,
                      _local_destinations))
    for label, variant, dst_fn in cases:
        series: dict[int, float] = {}
        for size in sizes:
            database = smallbank_database(customers_per_container)
            src = smallbank.reactor_name(0)
            dsts = dst_fn(size, customers_per_container)
            spec = smallbank.multi_transfer_spec(variant, src, dsts)
            result = single_worker_latency(
                database, lambda worker: spec, n_txns=n_txns)
            series[size] = result.summary.latency_us
        results[label] = series
    return results


def report(results: dict[str, dict[int, float]]) -> None:
    print_series("Figure 11: latency vs size and target reactor "
                 "placement", "txn size", results, unit="usec")


if __name__ == "__main__":
    report(run())
