"""Figure 12 (Appendix B.2): varying the degree of physical
distribution.

fully-sync multi-transfer of fixed size 7; the seven destination
accounts are chosen so as to span ``k`` transaction executors, for
``k`` from 1 to 7, under three selection policies:

* ``round-robin remote`` — ``7 - k + 1`` destinations on the source's
  container, ``k - 1`` spread one-per-container over the rest: remote
  calls grow exactly by one per step;
* ``round-robin all`` — destination ``i`` on container ``i mod k``:
  remote-call counts move in the paper's characteristic steps
  (3, 4, 5, 5, 5, 6 for k = 2..7);
* ``random`` — destinations uniform over all containers (expected
  remote calls ≈ 6; plotted flat against k).
"""

from __future__ import annotations

import random

from repro.bench.harness import single_worker_latency
from repro.bench.report import print_series
from repro.experiments.common import (
    SMALLBANK_CONTAINERS,
    smallbank_database,
    smallbank_destination,
)
from repro.workloads import smallbank

SIZE = 7


def _round_robin_remote(k: int, cpc: int) -> list[str]:
    local = SIZE - k + 1
    dsts = [smallbank_destination(0, 1 + i, cpc) for i in range(local)]
    dsts += [smallbank_destination(1 + i, 1, cpc)
             for i in range(k - 1)]
    return dsts


def _round_robin_all(k: int, cpc: int) -> list[str]:
    return [smallbank_destination(i % k, 1 + i // k, cpc)
            for i in range(SIZE)]


def _random_spread(cpc: int, seed: int = 13) -> list[str]:
    rng = random.Random(seed)
    dsts = []
    used: dict[int, int] = {}
    for __ in range(SIZE):
        container = rng.randrange(SMALLBANK_CONTAINERS)
        used[container] = used.get(container, 0) + 1
        dsts.append(smallbank_destination(container, used[container],
                                          cpc))
    return dsts


def run(executor_counts: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7),
        n_txns: int = 100, customers_per_container: int = 200
        ) -> dict[str, dict[int, float]]:
    src = smallbank.reactor_name(0)

    def measure(dsts: list[str]) -> float:
        database = smallbank_database(customers_per_container)
        spec = smallbank.multi_transfer_spec("fully-sync", src, dsts)
        result = single_worker_latency(database, lambda worker: spec,
                                       n_txns=n_txns)
        return result.summary.latency_us

    results: dict[str, dict[int, float]] = {
        "round-robin remote": {}, "round-robin all": {}, "random": {},
    }
    random_latency = measure(_random_spread(customers_per_container))
    for k in executor_counts:
        results["round-robin remote"][k] = measure(
            _round_robin_remote(k, customers_per_container))
        results["round-robin all"][k] = measure(
            _round_robin_all(k, customers_per_container))
        results["random"][k] = random_latency
    return results


def report(results: dict[str, dict[int, float]]) -> None:
    print_series("Figure 12: latency vs distribution of target "
                 "reactors (size 7, fully-sync)",
                 "executors spanned", results, unit="usec")


if __name__ == "__main__":
    report(run())
