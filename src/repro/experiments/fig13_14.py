"""Figures 13 and 14 (Appendix C): skew, queueing and the cost model.

YCSB with the 10-key ``multi_update`` transaction at scale factor 4
(40,000 key reactors over four single-executor containers), sweeping
the zipfian constant.  With one worker, latency *decreases* with skew
(more of the sub-transactions become local/inline, and dispatching a
remote update costs more than performing one); the cost model,
calibrated from a single-key profile and fed the average realized
async/local sequence sizes, tracks the curve.  With four workers,
queueing and conflicts raise latency and variance — effects the model
deliberately excludes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bench.harness import run_measurement, single_worker_latency
from repro.bench.report import print_series
from repro.core.database import ReactorDatabase
from repro.core.deployment import RangePlacement, shared_nothing
from repro.costmodel import Calibration, ycsb_multi_update
from repro.sim.machine import XEON_E3_1276
from repro.sim.rng import ZipfianGenerator
from repro.workloads import ycsb

THETAS = (0.01, 0.5, 0.99, 2.0, 5.0)


@dataclass
class SkewPoint:
    theta: float
    workers: int
    latency_us: float
    throughput_ktps: float
    abort_rate: float
    predicted_us: float | None = None
    predicted_with_commit_us: float | None = None


def _database(scale_factor: int, mpl: int = 4) -> ReactorDatabase:
    n_keys = scale_factor * ycsb.KEYS_PER_SCALE_FACTOR
    n_containers = 4
    deployment = shared_nothing(
        n_containers, machine=XEON_E3_1276, mpl=mpl,
        placement=RangePlacement(n_keys // n_containers))
    database = ReactorDatabase(deployment,
                               ycsb.declarations(scale_factor))
    ycsb.load(database, scale_factor)
    return database


def _calibrate(scale_factor: int, n_txns: int) -> Calibration:
    """Single-key profiles: a local one isolates processing, a remote
    one isolates communication (paper: "calibrated ... by profiling
    multi_update with updates to a single key")."""
    local_key = ycsb.key_name(0)
    database = _database(scale_factor)
    result = single_worker_latency(
        database,
        lambda w: (local_key, "multi_update", ([local_key], "u")),
        n_txns=n_txns)
    local_breakdown = result.summary.breakdown
    leaf = local_breakdown["sync_execution"]

    remote_key = ycsb.key_name(
        scale_factor * ycsb.KEYS_PER_SCALE_FACTOR - 1)
    database = _database(scale_factor)
    result = single_worker_latency(
        database,
        lambda w: (local_key, "multi_update", ([remote_key], "u")),
        n_txns=n_txns)
    remote = result.summary
    cs = remote.breakdown["cs"]
    commit = remote.breakdown["commit_input_gen"]
    # Everything one remote update costs beyond processing, send and
    # commit is the effective receive path (absorbing transport and
    # wake-up overheads into Cr, as calibration from profiles does).
    cr = max(0.0, remote.latency_us - cs - commit - leaf)
    return Calibration(cs=cs, cr=cr, leaf_exec=leaf,
                       commit_input_gen=commit)


def _realized_shape(theta: float, scale_factor: int,
                    samples: int = 2000, seed: int = 5
                    ) -> tuple[float, float]:
    """Average realized (n_async_remote, n_local) under the zipfian."""
    workload = ycsb.YcsbWorkload(scale_factor, theta, n_containers=4,
                                 seed=seed)
    rng = random.Random(f"shape/{seed}")
    zipf = ZipfianGenerator(workload.n_keys, theta, rng)
    total_remote = 0
    total_local = 0
    for __ in range(samples):
        draws = [zipf.next() for __ in range(workload.keys_per_txn)]
        distinct = list(dict.fromkeys(draws))
        initiator = distinct[rng.randrange(len(distinct))]
        home = workload.container_of(initiator)
        remote = sum(1 for k in distinct
                     if workload.container_of(k) != home)
        total_remote += remote
        total_local += len(distinct) - remote
    return total_remote / samples, total_local / samples


def run(scale_factor: int = 4,
        thetas: tuple[float, ...] = THETAS,
        worker_counts: tuple[int, ...] = (1, 4),
        measure_us: float = 60_000.0,
        calibration_txns: int = 100,
        n_epochs: int = 5) -> list[SkewPoint]:
    calibration = _calibrate(scale_factor, calibration_txns)
    points = []
    for theta in thetas:
        n_async, n_local = _realized_shape(theta, scale_factor)
        for workers in worker_counts:
            database = _database(scale_factor)
            workload = ycsb.YcsbWorkload(scale_factor, theta,
                                         n_containers=4)
            result = run_measurement(
                database, workers, workload.factory_for,
                warmup_us=measure_us * 0.1, measure_us=measure_us,
                n_epochs=n_epochs)
            summary = result.summary
            point = SkewPoint(
                theta=theta, workers=workers,
                latency_us=summary.latency_us,
                throughput_ktps=summary.throughput_ktps,
                abort_rate=summary.abort_rate,
            )
            if workers == 1:
                spec = ycsb_multi_update(calibration, n_async, n_local)
                point.predicted_us = spec.latency()
                point.predicted_with_commit_us = spec.latency() + \
                    summary.breakdown.get("commit_input_gen", 0.0)
            points.append(point)
    return points


def report(points: list[SkewPoint]) -> None:
    lat: dict[str, dict[float, float]] = {}
    tput: dict[str, dict[float, float]] = {}
    for p in points:
        label = f"{p.workers} worker{'s' if p.workers > 1 else ''} obs"
        lat.setdefault(label, {})[p.theta] = p.latency_us
        tput.setdefault(label, {})[p.theta] = p.throughput_ktps
        if p.predicted_us is not None:
            lat.setdefault("1 worker pred", {})[p.theta] = \
                p.predicted_us
            lat.setdefault("1 worker pred+C+I", {})[p.theta] = \
                p.predicted_with_commit_us
    print_series("Figure 13: YCSB multi_update latency vs skew",
                 "zipfian", lat, unit="usec")
    print_series("Figure 14: YCSB multi_update throughput vs skew",
                 "zipfian", tput, unit="Ktxn/sec")


if __name__ == "__main__":
    report(run())
