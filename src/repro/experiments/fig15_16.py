"""Figures 15 and 16 (Appendix E): effect of cross-reactor
transactions.

100% new-order at scale factor 8 with 8 workers (peak load), varying
the probability that a single item comes from a remote warehouse.
Expected shapes: shared-everything deployments degrade only mildly
(cache effects); both shared-nothing variants drop sharply from 0% to
10% (migration-of-control cost); shared-nothing-async stays roughly 2x
better than shared-nothing-sync at 100% cross-reactor transactions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import run_measurement
from repro.bench.report import print_series
from repro.experiments.common import tpcc_database
from repro.workloads import tpcc

DEPLOYMENTS = (
    "shared-everything-without-affinity",
    "shared-nothing-async",
    "shared-everything-with-affinity",
    "shared-nothing-sync",
)


@dataclass
class CrossReactorPoint:
    strategy: str
    cross_pct: int
    throughput_ktps: float
    latency_us: float
    abort_rate: float


def run(scale_factor: int = 8,
        cross_pcts: tuple[int, ...] = (0, 10, 20, 30, 40, 50, 100),
        workers: int | None = None,
        measure_us: float = 80_000.0,
        n_epochs: int = 5) -> list[CrossReactorPoint]:
    workers = workers or scale_factor
    points = []
    for strategy in DEPLOYMENTS:
        for pct in cross_pcts:
            database = tpcc_database(strategy, scale_factor)
            workload = tpcc.TpccWorkload(
                n_warehouses=scale_factor,
                mix=tpcc.NEW_ORDER_ONLY,
                remote_item_prob=pct / 100.0,
                invalid_item_prob=0.0,
                sync_remote=(strategy == "shared-nothing-sync"),
            )
            result = run_measurement(
                database, workers, workload.factory_for,
                warmup_us=measure_us * 0.1, measure_us=measure_us,
                n_epochs=n_epochs)
            summary = result.summary
            points.append(CrossReactorPoint(
                strategy=strategy, cross_pct=pct,
                throughput_ktps=summary.throughput_ktps,
                latency_us=summary.latency_us,
                abort_rate=summary.abort_rate,
            ))
    return points


def report(points: list[CrossReactorPoint]) -> None:
    tput = {}
    lat = {}
    for p in points:
        tput.setdefault(p.strategy, {})[p.cross_pct] = \
            p.throughput_ktps
        lat.setdefault(p.strategy, {})[p.cross_pct] = p.latency_us
    print_series("Figure 15: new-order throughput vs % cross-reactor "
                 "(scale factor 8)", "% cross", tput, unit="Ktxn/sec")
    print_series("Figure 16: new-order latency vs % cross-reactor "
                 "(scale factor 8)", "% cross", lat, unit="usec")


if __name__ == "__main__":
    report(run())
