"""Figures 17 and 18 (Appendix F.1): transactional scale-up.

Standard TPC-C mix as warehouses (= reactors = transaction executors
= workers) grow.  Expected shapes: shared-everything-with-affinity and
shared-nothing-async scale nearly linearly and track each other
closely (affinity dominates); shared-everything-without-affinity
scales worst because round-robin routing destroys locality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import run_measurement
from repro.bench.report import print_series
from repro.experiments.common import tpcc_database
from repro.workloads import tpcc

DEPLOYMENTS = (
    "shared-everything-without-affinity",
    "shared-nothing-async",
    "shared-everything-with-affinity",
)


@dataclass
class ScalePoint:
    strategy: str
    scale_factor: int
    throughput_ktps: float
    latency_us: float
    per_core_ktps: float


def run(scale_factors: tuple[int, ...] = (1, 2, 4, 8, 16),
        measure_us: float = 60_000.0,
        n_epochs: int = 5) -> list[ScalePoint]:
    points = []
    for strategy in DEPLOYMENTS:
        for scale_factor in scale_factors:
            database = tpcc_database(strategy, scale_factor)
            workload = tpcc.TpccWorkload(n_warehouses=scale_factor)
            result = run_measurement(
                database, scale_factor, workload.factory_for,
                warmup_us=measure_us * 0.1, measure_us=measure_us,
                n_epochs=n_epochs)
            summary = result.summary
            points.append(ScalePoint(
                strategy=strategy,
                scale_factor=scale_factor,
                throughput_ktps=summary.throughput_ktps,
                latency_us=summary.latency_us,
                per_core_ktps=summary.throughput_ktps / scale_factor,
            ))
    return points


def report(points: list[ScalePoint]) -> None:
    tput = {}
    lat = {}
    for p in points:
        tput.setdefault(p.strategy, {})[p.scale_factor] = \
            p.throughput_ktps
        lat.setdefault(p.strategy, {})[p.scale_factor] = p.latency_us
    print_series("Figure 17: TPC-C throughput vs scale factor",
                 "scale factor", tput, unit="Ktxn/sec")
    print_series("Figure 18: TPC-C latency vs scale factor",
                 "scale factor", lat, unit="usec")


if __name__ == "__main__":
    report(run())
