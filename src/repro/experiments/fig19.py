"""Figure 19 (Appendix G): query- vs. procedure-level parallelism.

The digital currency exchange of Figure 1 with 15 providers and one
exchange over 16 transaction executors, single worker, sweeping the
computational load of ``sim_risk`` (number of random draws per
provider).  Expected shape: ``sequential`` and ``query-parallelism``
grow linearly with 15x the per-provider sim_risk cost (sim_risk is
sequential at the exchange in both), while ``procedure-parallelism``
grows with ~1x and wins by close to an order of magnitude at 10^6
randoms.
"""

from __future__ import annotations

from repro.bench.harness import single_worker_latency
from repro.bench.report import print_series
from repro.core.database import ReactorDatabase
from repro.core.deployment import (
    ContainerSpec,
    DeploymentConfig,
    ExplicitPlacement,
    shared_nothing,
)
from repro.sim.machine import OPTERON_6274
from repro.workloads import exchange as ex

N_PROVIDERS = 15
STRATEGIES = ("query-parallelism", "procedure-parallelism",
              "sequential")


def _sequential_db(orders_per_provider: int,
                   window: int) -> ReactorDatabase:
    deployment = DeploymentConfig(
        name="sequential",
        containers=[ContainerSpec(executors=1, mpl=1)],
        routing="affinity", pin_reactors=True,
        machine=OPTERON_6274)
    database = ReactorDatabase(
        deployment, [(ex.EXCHANGE_NAME, ex.CLASSIC_EXCHANGE)])
    ex.load_classic(database, N_PROVIDERS, partitioned=False,
                    orders_per_provider=orders_per_provider,
                    window=window)
    return database


def _query_parallel_db(orders_per_provider: int,
                       window: int) -> ReactorDatabase:
    mapping = {ex.EXCHANGE_NAME: 0}
    declarations = [(ex.EXCHANGE_NAME, ex.CLASSIC_EXCHANGE)]
    for i in range(N_PROVIDERS):
        mapping[ex.fragment_name(i)] = i + 1
        declarations.append((ex.fragment_name(i), ex.ORDERS_FRAGMENT))
    deployment = shared_nothing(
        N_PROVIDERS + 1, machine=OPTERON_6274,
        placement=ExplicitPlacement(mapping))
    database = ReactorDatabase(deployment, declarations)
    ex.load_classic(database, N_PROVIDERS, partitioned=True,
                    orders_per_provider=orders_per_provider,
                    window=window)
    return database


def _procedure_parallel_db(orders_per_provider: int,
                           window: int) -> ReactorDatabase:
    mapping = {ex.EXCHANGE_NAME: 0}
    declarations = [(ex.EXCHANGE_NAME, ex.EXCHANGE)]
    for i in range(N_PROVIDERS):
        mapping[ex.provider_name(i)] = i + 1
        declarations.append((ex.provider_name(i), ex.PROVIDER))
    deployment = shared_nothing(
        N_PROVIDERS + 1, machine=OPTERON_6274,
        placement=ExplicitPlacement(mapping))
    database = ReactorDatabase(deployment, declarations)
    ex.load_reactor_model(database, N_PROVIDERS,
                          orders_per_provider=orders_per_provider,
                          window=window)
    return database


_BUILDERS = {
    "sequential": (_sequential_db, "auth_pay_sequential"),
    "query-parallelism": (_query_parallel_db, "auth_pay_query_parallel"),
    "procedure-parallelism": (_procedure_parallel_db, "auth_pay"),
}


def run(random_loads: tuple[int, ...] = (10, 100, 1000, 10_000,
                                         100_000, 1_000_000),
        n_txns: int = 20,
        orders_per_provider: int = 1000,
        window: int = 400) -> dict[str, dict[int, float]]:
    """Returns {strategy: {randoms per provider: latency in msec}}."""
    results: dict[str, dict[int, float]] = {}
    for strategy in STRATEGIES:
        builder, proc = _BUILDERS[strategy]
        series: dict[int, float] = {}
        for randoms in random_loads:
            database = builder(orders_per_provider, window)

            def factory(worker):
                provider = ex.provider_name(
                    worker.rng.randrange(N_PROVIDERS))
                return (ex.EXCHANGE_NAME, proc,
                        (provider, worker.rng.randrange(1000), 1.0,
                         randoms))

            result = single_worker_latency(database, factory,
                                           n_txns=n_txns,
                                           warmup_txns=3)
            series[randoms] = result.summary.latency_us / 1000.0
        results[strategy] = series
    return results


def report(results: dict[str, dict[int, float]]) -> None:
    print_series("Figure 19: auth_pay latency vs sim_risk load "
                 "(15 providers, 16 executors)",
                 "randoms/provider", results, unit="msec")


if __name__ == "__main__":
    report(run())
