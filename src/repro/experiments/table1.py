"""Table 1 (Appendix D): cost-model validation on TPC-C new-order.

100% new-order at scale factor 4 under the shared-nothing deployment,
with 1% and 100% probability of cross-reactor stock updates.  With one
worker, observed latency is compared against the Figure 3 prediction
(calibrated from profiling runs and the average realized batch shape)
with and without the measured commit + input-generation component.
Four-worker numbers are observed only — queueing is outside the
model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bench.harness import run_measurement
from repro.bench.report import print_table
from repro.costmodel import Calibration, tpcc_new_order
from repro.experiments.common import tpcc_database
from repro.workloads import tpcc


@dataclass
class Table1Row:
    cross_reactor_pct: int
    workers: int
    observed_tps: float
    observed_latency_ms: float
    predicted_ms: float | None
    predicted_with_commit_ms: float | None
    abort_rate: float


def _workload(remote_prob: float, scale_factor: int) -> tpcc.TpccWorkload:
    return tpcc.TpccWorkload(
        n_warehouses=scale_factor, mix=tpcc.NEW_ORDER_ONLY,
        remote_item_prob=remote_prob, invalid_item_prob=0.0)


def _measure(remote_prob: float, workers: int, scale_factor: int,
             measure_us: float, n_epochs: int):
    database = tpcc_database("shared-nothing-async", scale_factor)
    workload = _workload(remote_prob, scale_factor)
    return run_measurement(
        database, workers, workload.factory_for,
        warmup_us=measure_us * 0.1, measure_us=measure_us,
        n_epochs=n_epochs).summary


def _calibrate(scale_factor: int, measure_us: float,
               n_epochs: int) -> Calibration:
    """Profile all-local runs (isolating processing scaling with item
    count is implicit in the averages) and a 100%-remote run for the
    communication parameters, per the paper's calibration from a
    one-local-one-remote-item new-order."""
    local = _measure(0.0, 1, scale_factor, measure_us, n_epochs)
    remote = _measure(1.0, 1, scale_factor, measure_us, n_epochs)
    avg_items = 10.0  # uniform 5..15
    leaf = local.breakdown["sync_execution"] / avg_items
    __, remote_batches = _realized_batches(1.0, scale_factor)
    n_batches = max(1.0, float(len(remote_batches)))
    cs = remote.breakdown["cs"] / n_batches
    cr = remote.breakdown["cr"] / n_batches
    return Calibration(
        cs=cs, cr=cr, leaf_exec=leaf,
        commit_input_gen=local.breakdown["commit_input_gen"])


def _realized_batches(remote_prob: float, scale_factor: int,
                      samples: int = 2000, seed: int = 11
                      ) -> tuple[float, list[float]]:
    """Average (local item count, remote batch sizes) per new-order."""
    workload = _workload(remote_prob, scale_factor)
    rng = random.Random(f"table1/{seed}")
    local_total = 0.0
    all_batches: list[list[int]] = []
    for __ in range(samples):
        home, __name, args = workload.new_order_spec(rng, 1)
        items = args[3]
        per_wh: dict[str, int] = {}
        for supply, __i, __q in items:
            per_wh[supply] = per_wh.get(supply, 0) + 1
        local_total += per_wh.pop(home, 0)
        all_batches.append(sorted(per_wh.values(), reverse=True))
    avg_local = local_total / samples
    max_batches = max((len(b) for b in all_batches), default=0)
    avg_batches = []
    for position in range(max_batches):
        sizes = [b[position] for b in all_batches if len(b) > position]
        presence = len(sizes) / samples
        if presence < 0.05:
            break
        avg_batches.append(sum(sizes) / len(sizes) * presence)
    return avg_local, avg_batches


def run(scale_factor: int = 4, measure_us: float = 100_000.0,
        n_epochs: int = 5) -> list[Table1Row]:
    calibration = _calibrate(scale_factor, measure_us, n_epochs)
    rows = []
    for remote_prob, pct in ((0.01, 1), (1.0, 100)):
        avg_local, batches = _realized_batches(remote_prob,
                                               scale_factor)
        for workers in (1, 4):
            summary = _measure(remote_prob, workers, scale_factor,
                               measure_us, n_epochs)
            predicted_ms = None
            predicted_commit_ms = None
            if workers == 1:
                spec = tpcc_new_order(
                    calibration,
                    local_work=calibration.leaf_exec * avg_local,
                    remote_batches=batches)
                commit = summary.breakdown.get("commit_input_gen", 0.0)
                predicted_ms = spec.latency() / 1000.0
                predicted_commit_ms = (spec.latency() + commit) / 1000.0
            rows.append(Table1Row(
                cross_reactor_pct=pct,
                workers=workers,
                observed_tps=summary.throughput_tps,
                observed_latency_ms=summary.latency_ms,
                predicted_ms=predicted_ms,
                predicted_with_commit_ms=predicted_commit_ms,
                abort_rate=summary.abort_rate,
            ))
    return rows


def report(rows: list[Table1Row]) -> None:
    headers = ["cross-reactor %", "workers", "TPS obs",
               "latency obs [ms]", "latency pred [ms]",
               "latency pred+C+I [ms]", "abort %"]
    table = []
    for row in rows:
        table.append([
            row.cross_reactor_pct, row.workers,
            round(row.observed_tps), row.observed_latency_ms,
            "-" if row.predicted_ms is None else row.predicted_ms,
            "-" if row.predicted_with_commit_ms is None
            else row.predicted_with_commit_ms,
            round(row.abort_rate * 100, 2),
        ])
    print_table("Table 1: TPC-C new-order performance at scale "
                "factor 4", headers, table)


if __name__ == "__main__":
    report(run())
