"""Executable formalization of Section 2.3 (conflict-serializability).

Definitions 2.1-2.6 and Theorem 2.7 as code: reactor-model histories,
their projection into the classic transactional model, and
serialization-graph acyclicity checks under both conflict notions.
Property-based tests verify the theorem on randomized histories.

Public exports: history building blocks (:class:`Op`, ``read`` /
``write`` / ``commit`` / ``abort``, :class:`ReactorHistory`,
:class:`ClassicHistory`, ``project``), the serializability checks
(``is_serializable_reactor`` / ``is_serializable_classic`` /
``serialization_order`` / ``theorem_2_7_holds``) and the runtime
audits (:class:`HistoryRecorder` with ``attach_recorder`` /
``detach_recorder``, plus the black-box certificates
``certify_replication``, ``certify_migration``,
``certify_snapshot_isolation`` and ``certify_crash_recovery``).
"""

from repro.formal.audit import (
    HistoryRecorder,
    attach_recorder,
    certify_all,
    certify_crash_recovery,
    certify_migration,
    certify_replication,
    certify_snapshot_isolation,
    detach_recorder,
    recording,
)
from repro.formal.history import ReactorHistory, history_of
from repro.formal.ops import Op, Terminal, abort, commit, read, write
from repro.formal.projection import (
    ClassicHistory,
    ClassicOp,
    project,
    project_op,
)
from repro.formal.serializability import (
    has_cycle,
    is_serializable_classic,
    is_serializable_reactor,
    serialization_order,
    theorem_2_7_holds,
)

__all__ = [
    "Op",
    "Terminal",
    "read",
    "write",
    "commit",
    "abort",
    "ReactorHistory",
    "history_of",
    "ClassicOp",
    "ClassicHistory",
    "project",
    "project_op",
    "has_cycle",
    "serialization_order",
    "is_serializable_reactor",
    "is_serializable_classic",
    "theorem_2_7_holds",
    "HistoryRecorder",
    "attach_recorder",
    "detach_recorder",
    "recording",
    "certify_all",
    "certify_replication",
    "certify_migration",
    "certify_snapshot_isolation",
    "certify_crash_recovery",
]
