"""Runtime history capture and serializability auditing.

Bridges the execution engine and the formal model of Section 2.3: a
:class:`HistoryRecorder` attached to a database observes every basic
operation (read/write with its root transaction, sub-transaction and
reactor identity, in global virtual-time order) plus commit/abort
events, producing a :class:`~repro.formal.history.ReactorHistory`.
The recorded history of any run can then be checked for conflict
serializability with the Section 2.3 machinery — an operation-level
audit complementing the state-equivalence integration tests.

Recording works by wrapping the CC session methods (any scheme); it is strictly
observational (no behavior change) and adds Python-level overhead
only, never virtual time.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any

from repro.concurrency.base import CCSession
from repro.formal.history import ReactorHistory
from repro.formal.ops import Op, abort, commit
from repro.formal.serializability import (
    is_serializable_reactor,
    serialization_order,
)


class HistoryRecorder:
    """Observes a database run and accumulates a reactor history."""

    def __init__(self) -> None:
        self.history = ReactorHistory()
        self._reactor_ids: dict[int, int] = {}
        self._reactor_names: dict[int, str] = {}
        self._current_sub: dict[int, int] = {}

    # -- identity bookkeeping -------------------------------------------

    def _reactor_id(self, reactor: Any) -> int:
        key = id(reactor)
        if key not in self._reactor_ids:
            self._reactor_ids[key] = len(self._reactor_ids)
            self._reactor_names[self._reactor_ids[key]] = reactor.name
        return self._reactor_ids[key]

    def reactor_name(self, reactor_id: int) -> str:
        return self._reactor_names[reactor_id]

    def alias_reactor(self, old: Any, new: Any) -> None:
        """Register ``new`` as the continuation of ``old``.

        Called by the online-migration subsystem at the routing flip:
        the successor instance at the destination container carries the
        same logical reactor, so operations on it must join the same
        per-reactor history — otherwise conflicts between transactions
        before and after a migration would be invisible to the
        serializability check.
        """
        self._reactor_ids[id(new)] = self._reactor_id(old)

    # -- event intake ------------------------------------------------------

    def record_op(self, kind: str, txn_id: int, subtxn_id: int,
                  reactor: Any, table_name: str, pk: tuple) -> None:
        self.history.append(Op(
            kind=kind, txn=txn_id, sub=subtxn_id,
            reactor=self._reactor_id(reactor),
            item=f"{table_name}:{pk!r}"))

    def record_commit(self, txn_id: int) -> None:
        self.history.append(commit(txn_id))

    def record_abort(self, txn_id: int) -> None:
        self.history.append(abort(txn_id))

    # -- verdicts ----------------------------------------------------------

    def is_serializable(self) -> bool:
        return is_serializable_reactor(self.history)

    def equivalent_serial_order(self) -> list[int] | None:
        """A witness serial order of committed transactions, or
        ``None`` if the history is not serializable."""
        return serialization_order(
            self.history.committed_txns(),
            self.history.subtxn_conflict_edges())

    def wrap(self, session: CCSession, reactor: Any,
             task: Any) -> Any:
        """Wrap one frame's CC session so its operations are
        observed (called by the execution context hook).

        Snapshot sessions are *not* wrapped: a snapshot read of an old
        version is ordered at its snapshot point, not at its wall-time
        position, so feeding it to the conflict-serializability check
        would fabricate false cycles (write-then-read edges pointing
        the wrong way).  Snapshot readers are certified separately by
        :func:`certify_snapshot_isolation`; their commit/abort
        terminals still reach the history.
        """
        if getattr(session, "snapshot_tid", None) is not None:
            return session
        def subtxn_of() -> int:
            if task.frames:
                return task.frames[-1].subtxn_id
            return 0

        return _RecordingSession(session, self, reactor, subtxn_of)


class _RecordingSession:
    """CC session proxy that reports basic operations.

    Reads are recorded for point reads and for every row returned by a
    scan; writes at buffering time.  (Write *installation* order is
    governed by commit events, which the recorder also sees.)
    """

    def __init__(self, session: CCSession, recorder: HistoryRecorder,
                 reactor: Any, subtxn_of: Any) -> None:
        self._session = session
        self._recorder = recorder
        self._reactor = reactor
        self._subtxn_of = subtxn_of

    def __getattr__(self, name: str) -> Any:
        return getattr(self._session, name)

    def read(self, table, pk):
        result = self._session.read(table, pk)
        self._recorder.record_op(
            "r", self._session.txn_id, self._subtxn_of(),
            self._reactor, table.name, pk)
        return result

    def multi_read(self, table, pks):
        """Vectorized point reads record one ``r`` op per key, in key
        order — the same history a loop of :meth:`read` calls yields
        (the per-key footprint registration the wrapped session does
        internally was never observable here)."""
        pks = list(pks)
        result = self._session.multi_read(table, pks)
        record_op = self._recorder.record_op
        txn_id = self._session.txn_id
        sub = self._subtxn_of()
        table_name = table.name
        reactor = self._reactor
        for pk in pks:
            record_op("r", txn_id, sub, reactor, table_name, pk)
        return result

    def scan(self, table, predicate=None, **kwargs):
        from repro.relational.predicate import ALWAYS

        result = self._session.scan(
            table, predicate if predicate is not None else ALWAYS,
            **kwargs)
        for row in result.rows:
            pk = table.schema.primary_key_of(row)
            self._recorder.record_op(
                "r", self._session.txn_id, self._subtxn_of(),
                self._reactor, table.name, pk)
        return result

    def insert(self, table, row):
        result = self._session.insert(table, row)
        pk = table.schema.primary_key_of(table.schema.validate_row(row))
        self._recorder.record_op(
            "w", self._session.txn_id, self._subtxn_of(),
            self._reactor, table.name, pk)
        return result

    def update(self, table, pk, assignments):
        result = self._session.update(table, pk, assignments)
        self._recorder.record_op(
            "w", self._session.txn_id, self._subtxn_of(),
            self._reactor, table.name, pk)
        return result

    def delete(self, table, pk):
        result = self._session.delete(table, pk)
        self._recorder.record_op(
            "w", self._session.txn_id, self._subtxn_of(),
            self._reactor, table.name, pk)
        return result


# ----------------------------------------------------------------------
# Replica consistency certification (black-box, after Huang et al.)
# ----------------------------------------------------------------------

def _expected_state(manager: Any, cid: int, records: list,
                    fences: dict[str, int] | None = None) \
        -> dict[tuple[str, str], dict[tuple, dict]]:
    """Replay base rows + a record sequence into a flat state map.

    ``fences`` (reactor name -> record index) reproduces the online-
    migration skip rule: entries for a reactor re-homed into this
    container mid-run are ignored below the fence — the migration
    snapshot in the base rows supersedes history from any previous
    residence (see :class:`repro.replication.replica.ReplicaContainer`).
    """
    state: dict[tuple[str, str], dict[tuple, dict]] = {}
    fences = fences or {}
    database = manager.database
    for (reactor_name, table_name), rows in \
            manager.base_rows.get(cid, {}).items():
        table = database.reactor(reactor_name).table(table_name)
        bucket = state.setdefault((reactor_name, table_name), {})
        for row in rows:
            bucket[table.schema.primary_key_of(row)] = dict(row)
    for index, record in enumerate(records):
        for entry in record.entries:
            if index < fences.get(entry.reactor, 0):
                continue
            bucket = state.setdefault((entry.reactor, entry.table), {})
            if entry.kind == "delete":
                bucket.pop(entry.pk, None)
            else:
                assert entry.row is not None
                bucket[entry.pk] = dict(entry.row)
    # Normalize: an untouched table and an emptied one are the same
    # "no rows" state (the live side never enumerates empty buckets).
    return {key: rows for key, rows in state.items() if rows}


def _container_state(container: Any) \
        -> dict[tuple[str, str], dict[tuple, dict]]:
    """The live shadow-table state of a serving replica container."""
    state: dict[tuple[str, str], dict[tuple, dict]] = {}
    for name in container.shadow_names():
        shadow = container.shadow(name)
        for table in shadow.catalog:
            rows = table.rows()
            if not rows:
                continue  # same normalization as _expected_state
            bucket = state.setdefault((name, table.name), {})
            for row in rows:
                bucket[table.schema.primary_key_of(row)] = row
    return state


def _promoted_state(database: Any, container: Any) \
        -> tuple[dict[tuple[str, str], dict[tuple, dict]], set[str]]:
    """Live state of a *promoted* container, by routing registry.

    A promoted replica is a primary: after promotion, reactors can
    migrate onto it (live reactors, never entered into its shadow
    table) or away from it (still in its shadow table, but retired),
    so the container's real state is whatever the database currently
    homes there — not its frozen shadow list.  Returns the state map
    plus the resident reactor names, so the caller can scope the
    replayed expectation to the same residents.
    """
    state: dict[tuple[str, str], dict[tuple, dict]] = {}
    names: set[str] = set()
    for name in database.reactor_names():
        reactor = database.reactor(name)
        if reactor.container is not container:
            continue
        names.add(name)
        for table in reactor.catalog:
            rows = table.rows()
            if not rows:
                continue  # same normalization as _expected_state
            bucket = state.setdefault((name, table.name), {})
            for row in rows:
                bucket[table.schema.primary_key_of(row)] = row
    return state, names


def certify_replication(database: Any) -> dict[str, Any]:
    """Certify every replica against its primary's commit order.

    Black-box state checking in the spirit of Huang et al.'s snapshot
    isolation auditing: for each replica the certificate asserts

    1. **prefix consistency** — the applied record sequence is exactly
       a prefix of the primary's shipped sequence (record-by-record
       equality, not just counts);
    2. **commit-order monotonicity** — applied commit TIDs strictly
       increase (Silo TIDs order conflicting transactions, so a
       monotone prefix is a serial prefix of the primary history);
    3. **state equivalence** — the replica's materialized tables equal
       an independent replay of bulk-loaded base rows plus the applied
       prefix;

    and for every failover, that promotion lost no acknowledged commit
    (``lost_acked`` empty — guaranteed under ``sync``) and reports the
    bounded async loss window (``lost_records``).
    """
    manager = database.replication
    report: dict[str, Any] = {
        "enabled": manager is not None,
        "ok": True,
        "replicas": [],
        "failovers": [],
    }
    if manager is None:
        return report

    def check(container_id: int, container: Any, records: list,
              shipped: list, role: str) -> None:
        prefix_ok = records == shipped[:len(records)]
        tids = [r.commit_tid for r in records]
        order_ok = all(a < b for a, b in zip(tids, tids[1:]))
        replay_records = shipped if role == "primary" else records
        expected = _expected_state(
            manager, container_id, replay_records,
            fences=getattr(container, "reactor_fences", None))
        if role == "primary":
            # Post-promotion migrations re-home reactors in and out of
            # the container; both sides of the equivalence are scoped
            # to the reactors the database currently homes here (a
            # migrated-away reactor's history legitimately stays in
            # the shipped order).
            actual, resident = _promoted_state(database, container)
            expected = {key: rows for key, rows in expected.items()
                        if key[0] in resident}
        else:
            actual = _container_state(container)
        state_ok = actual == expected
        entry = {
            "container_id": container_id,
            "replica_id": container.replica_id,
            "role": role,
            "applied_records": len(records),
            "shipped_records": len(shipped),
            "prefix_ok": prefix_ok,
            "commit_order_ok": order_ok,
            "state_ok": state_ok,
            "ok": prefix_ok and order_ok and state_ok,
        }
        report["replicas"].append(entry)
        if not entry["ok"]:
            report["ok"] = False

    for cid in sorted(manager.replicas):
        shipped = manager.shipped[cid]
        for replica in manager.replicas[cid]:
            check(cid, replica, replica.applied_records, shipped,
                  role="replica")
        promoted = database.containers[cid]
        if getattr(promoted, "role", None) == "primary":
            # A promoted replica: its full state must replay from the
            # (re-anchored) shipped order it now owns.
            check(cid, promoted, promoted.applied_records, shipped,
                  role="primary")

    for event in manager.stats.failovers:
        entry = {
            "container_id": event.container_id,
            "replica_id": event.replica_id,
            "at_us": event.at_us,
            "lost_acked": list(event.lost_acked),
            "lost_records": event.lost_records,
            "zero_committed_loss": not event.lost_acked,
            # Lost records whose commit survives in another container:
            # cross-container transactions the failover tore apart.
            # Sync drains the channel at kill, so this is provably
            # empty there; under async it is the documented price of
            # the lag window and is reported, not failed.
            "atomicity_breaks": list(event.atomicity_breaks),
        }
        report["failovers"].append(entry)
        if event.lost_acked:
            report["ok"] = False
    return report


def certify_migration(database: Any) -> dict[str, Any]:
    """Black-box certification of completed online migrations.

    For the most recent completed migration of each reactor the
    certificate asserts, from observable state only:

    1. **routing** — the reactor resolves to its destination
       container, the source instance is retired and forwards to the
       successor, and the routing epoch advanced by exactly one;
    2. **source quiescence** — the source container's redo log gained
       no entry for the reactor after the snapshot watermark: the
       drain barrier really ended all writes at the old home (no
       write was torn off onto dead storage);
    3. **state replay equivalence** — the snapshot after-images plus
       the destination redo records for the reactor above the
       watermark replay to exactly the reactor's live table state, the
       same replay argument recovery and replication certification
       rest on.

    Earlier migrations of a re-migrated reactor are listed as
    ``superseded`` (their destination state has legitimately moved
    on); cancelled migrations are listed, not failed.  Replaying
    through a log a checkpoint truncated below the watermark — or one
    a destination failover replaced after the flip — is reported with
    ``log_checked: false`` instead of a spurious failure.
    """
    manager = getattr(database, "migration", None)
    report: dict[str, Any] = {
        "enabled": manager is not None and bool(manager.stats.events),
        "ok": True,
        "migrations": [],
    }
    if manager is None:
        return report
    completed = [m for m in manager.stats.events if m.state == "done"]
    last_for = {m.reactor_name: m for m in completed}

    for migration in manager.stats.events:
        entry: dict[str, Any] = {
            "reactor": migration.reactor_name,
            "src": migration.src_cid,
            "dst": migration.dst_cid,
            "state": migration.state,
            "rows_copied": migration.rows_copied,
            "superseded":
                last_for.get(migration.reactor_name) is not migration,
        }
        report["migrations"].append(entry)
        if migration.state != "done" or entry["superseded"]:
            continue

        name = migration.reactor_name
        live = database.reactor(name)
        entry["routing_ok"] = (
            live.container.container_id == migration.dst_cid
            and migration.source.retired
            and migration.source.migrated_to is migration.target
            and migration.target.epoch == migration.source.epoch + 1
        )

        src_log = migration.src_log
        entry["src_quiet_ok"] = src_log is None or not any(
            entry_.reactor == name
            for record in src_log.records
            if record.commit_tid > migration.watermark
            for entry_ in record.entries
        )

        # Replay: snapshot + destination records above the watermark.
        expected: dict[str, dict[tuple, dict]] = {}

        def apply(entries) -> None:
            for e in entries:
                bucket = expected.setdefault(e.table, {})
                if e.kind == "delete":
                    bucket.pop(e.pk, None)
                else:
                    assert e.row is not None
                    bucket[e.pk] = dict(e.row)

        for record in migration.snapshot_records:
            apply(record.entries)
        dst_log = migration.dst_log
        dst_live_log = getattr(
            database.containers[migration.dst_cid].concurrency,
            "redo_log", None)
        log_checked = (
            dst_log is not None
            # A destination failover after the flip re-anchored the
            # container onto a fresh log (promotion seeding): the
            # flip-time anchor is frozen at the kill and can no longer
            # replay to the live state.  The promoted container's own
            # state equivalence is certified by certify_replication.
            and dst_log is dst_live_log
            and getattr(dst_log, "truncated_through", 0)
            <= migration.watermark)
        if log_checked:
            for record in dst_log.records:
                if record.commit_tid > migration.watermark:
                    apply(e for e in record.entries
                          if e.reactor == name)
            actual: dict[str, dict[tuple, dict]] = {}
            for table in live.catalog:
                rows = table.rows()
                if rows:
                    actual[table.name] = {
                        table.schema.primary_key_of(row): row
                        for row in rows
                    }
            expected = {t: rows for t, rows in expected.items() if rows}
            entry["state_ok"] = actual == expected
        entry["log_checked"] = log_checked
        entry["ok"] = (entry["routing_ok"] and entry["src_quiet_ok"]
                       and entry.get("state_ok", True))
        if not entry["ok"]:
            report["ok"] = False
    return report


def certify_snapshot_isolation(database: Any,
                               events: Any = None) -> dict[str, Any]:
    """Black-box certification of snapshot-isolated reads.

    In the spirit of Huang et al.'s black-box snapshot-isolation
    checking, the certificate judges the *observed reads* of snapshot
    transactions against the redo log — the independently recorded
    commit order — using only externally visible evidence.  Enable the
    audit log first (``database.enable_snapshot_audit()``); ``events``
    overrides it for tamper-injection tests.

    For every audited read (which version TID resolved which key at
    which snapshot) the certificate asserts:

    1. **no future reads** — the observed version TID never exceeds
       the reader's snapshot TID: nothing that committed after the
       snapshot leaked in;
    2. **newest-at-snapshot** — the redo log contains no write to the
       same key with a commit TID in ``(observed, snapshot]``: the
       read did not skip a committed write it should have seen, so the
       snapshot is exactly the transaction-consistent prefix at its
       TID (commit installs are atomic events, and a matching check
       holds for *every* key the root read, making the observed cut a
       single prefix rather than a per-key mixture);
    3. **one snapshot per root** — all reads of one root share one
       snapshot TID.

    Reads resolved below any logged history (bulk loads, migration
    snapshot seeds) pass rule 2 because re-stamped after-images carry
    watermark TIDs at or above every superseded entry.  Tampered
    histories — an observed TID nudged below the newest qualifying
    write (a stale read) or above the snapshot (a future read) — are
    rejected.

    Rule 2 needs the redo log: without durability enabled the
    certificate reports ``log_checked: false`` (mirroring
    :func:`certify_migration`) instead of passing a check it never
    ran — consumers asserting full certification must require both
    ``ok`` and ``log_checked``.
    """
    storage = getattr(database, "storage", None)
    if events is None:
        events = storage.audit if storage is not None else None
    durability = getattr(database, "durability", None)
    report: dict[str, Any] = {
        "enabled": events is not None,
        "ok": True,
        "log_checked": durability is not None,
        "reads_checked": 0,
        "roots_checked": 0,
        "violations": [],
    }
    if events is None:
        return report

    # The independent commit order: every redo record currently
    # anchored in the database's logs (promotion re-seeds logs from
    # the applied prefix, so failover keeps this coherent).
    writes: dict[tuple[str, str, tuple], list[int]] = {}
    if durability is not None:
        for record in durability.log_records():
            for entry in record.entries:
                writes.setdefault(
                    (entry.reactor, entry.table, entry.pk),
                    []).append(record.commit_tid)
    for tids in writes.values():
        tids.sort()

    snapshots: dict[int, int] = {}

    def flag(event: Any, kind: str) -> None:
        report["ok"] = False
        report["violations"].append({
            "kind": kind,
            "txn_id": event.txn_id,
            "snapshot_tid": event.snapshot_tid,
            "reactor": event.reactor,
            "table": event.table,
            "pk": event.pk,
            "observed_tid": event.observed_tid,
            "missing": event.missing,
        })

    for event in events:
        report["reads_checked"] += 1
        seen = snapshots.setdefault(event.txn_id, event.snapshot_tid)
        if seen != event.snapshot_tid:
            flag(event, "split-snapshot")
            continue
        if event.observed_tid > event.snapshot_tid:
            flag(event, "future-read")
            continue
        tids = writes.get((event.reactor, event.table, event.pk), ())
        if any(event.observed_tid < tid <= event.snapshot_tid
               for tid in tids):
            flag(event, "stale-read")
    report["roots_checked"] = len(snapshots)
    return report


def certify_crash_recovery(database: Any, image: Any,
                           recovered: Any) -> dict[str, Any]:
    """Black-box certification of a kill-at-arbitrary-epoch crash.

    ``image`` is the :class:`~repro.durability.recovery.CrashImage` a
    :meth:`DurabilityManager.crash` produced on ``database`` (the
    pre-crash primary), ``recovered`` the database rebuilt from it.
    Against the durability manager's independently kept append order
    (the reference sequence, like replication's ``shipped``), the
    certificate asserts:

    1. **no acked-commit loss** — every commit a client saw
       acknowledged is covered by the image: for each container that
       installed it, its record is in the durable log prefix or below
       the checkpoint watermark.  Group/sync acknowledgement waits on
       every participant's flush, so this holds by construction;
       under ``async`` the flush window *can* lose acked commits —
       the loss is reported (``lost_acked``) and tolerated for that
       mode only, mirroring async replication's lag-window contract.
    2. **no resurrection of unacked commits** — each image log is
       exactly the expected durable sub-prefix of the container's
       append order (record-by-record, so a tampered row, an injected
       record, or a reordering is rejected), with commit TIDs
       strictly increasing; torn cross-container commits were dropped
       *everywhere* (a transaction recovers atomically or not at
       all), and only unacknowledged commits ever appear torn.
    3. **state-replay equivalence** — the recovered database's live
       tables equal an independent flat replay of the materialized
       checkpoint manifest plus the image records above each
       container's checkpoint watermark, in global TID order — the
       same replay argument the replication and migration
       certificates rest on.
    """
    manager = getattr(database, "durability", None)
    report: dict[str, Any] = {
        "enabled": manager is not None,
        "ok": True,
        "mode": getattr(image, "mode", None),
        "at_us": getattr(image, "at_us", None),
        "containers": [],
        "acked_checked": 0,
        "lost_acked": [],
        "zero_acked_loss": True,
        "torn_commits": sorted(
            {tid for tids in image.torn_tids.values()
             for tid in tids}) if image is not None else [],
        "state_ok": None,
    }
    if manager is None or image is None:
        report["ok"] = False
        return report

    checkpoint_wm = image.manifest.tid_watermarks()
    torn_sites = {tuple(site) for site in image.torn_sites}
    torn_by_cid: dict[int, set[int]] = {}
    for cid, pos in torn_sites:
        torn_by_cid.setdefault(cid, set()).add(pos)

    # 2. Prefix consistency per container (tamper/resurrection check).
    for cid in sorted(manager.installed):
        reference = manager.installed[cid]
        flushed = image.flushed_counts.get(cid, 0)
        truncated = image.truncated_through.get(cid, 0)
        torn = torn_by_cid.get(cid, set())
        expected = [r for pos, r in enumerate(reference[:flushed])
                    if r.commit_tid > truncated
                    and pos not in torn]
        got = image.logs.get(cid, [])
        prefix_ok = got == expected
        tids = [r.commit_tid for r in got]
        order_ok = all(a < b for a, b in zip(tids, tids[1:]))
        entry = {
            "container_id": cid,
            "durable_records": len(got),
            "installed_records": len(reference),
            "prefix_ok": prefix_ok,
            "commit_order_ok": order_ok,
            "ok": prefix_ok and order_ok,
        }
        report["containers"].append(entry)
        if not entry["ok"]:
            report["ok"] = False

    # Torn drops may only ever hit unacknowledged commits — under
    # sync/group, where acknowledgement waits on every participant's
    # flush.  Async acknowledges before flushing, so an acked
    # cross-container commit *can* be torn there; like async's
    # lost-acked window it is reported, not rejected (the dropped
    # sites also surface in ``lost_acked`` below).
    acked_sites = {tuple(site) for site in image.acked_sites}
    report["torn_unacked_ok"] = not (torn_sites & acked_sites)
    if not report["torn_unacked_ok"] and image.mode != "async":
        report["ok"] = False

    # 1. Acked-commit coverage, by site: each acked record must be in
    # the durable prefix (and not torn-dropped) or below its
    # container's checkpoint watermark.
    for cid, pos in sorted(acked_sites):
        report["acked_checked"] += 1
        record = manager.installed[cid][pos] \
            if pos < len(manager.installed.get(cid, [])) else None
        if record is not None and \
                record.commit_tid <= checkpoint_wm.get(cid, 0):
            continue
        if record is not None and \
                pos < image.flushed_counts.get(cid, 0) and \
                (cid, pos) not in torn_sites:
            continue
        report["lost_acked"].append(
            record.commit_tid if record is not None else (cid, pos))
    if report["lost_acked"]:
        report["zero_acked_loss"] = False
        if image.mode != "async":
            report["ok"] = False

    # 3. State-replay equivalence.
    if recovered is not None:
        base = image.manifest.materialize()
        expected_state: dict[tuple[str, str], dict[tuple, dict]] = {}
        for reactor_name, tables in base.reactors.items():
            for table_name, rows in tables.items():
                schema = recovered.reactor(reactor_name) \
                    .table(table_name).schema
                bucket = expected_state.setdefault(
                    (reactor_name, table_name), {})
                for row in rows:
                    bucket[schema.primary_key_of(row)] = dict(row)
        replayable = []
        for cid, records in image.logs.items():
            watermark = base.tid_watermarks.get(cid, 0)
            replayable.extend(r for r in records
                              if r.commit_tid > watermark)
        replayable.sort(key=lambda record: record.commit_tid)
        for record in replayable:
            for entry_ in record.entries:
                bucket = expected_state.setdefault(
                    (entry_.reactor, entry_.table), {})
                if entry_.kind == "delete":
                    bucket.pop(entry_.pk, None)
                else:
                    assert entry_.row is not None
                    bucket[entry_.pk] = dict(entry_.row)
        expected_state = {key: rows for key, rows
                          in expected_state.items() if rows}
        actual_state: dict[tuple[str, str], dict[tuple, dict]] = {}
        for name in recovered.reactor_names():
            for table in recovered.reactor(name).catalog:
                rows = table.rows()
                if not rows:
                    continue
                bucket = actual_state.setdefault((name, table.name), {})
                for row in rows:
                    bucket[table.schema.primary_key_of(row)] = row
        report["state_ok"] = actual_state == expected_state
        if not report["state_ok"]:
            report["ok"] = False
    return report


def attach_recorder(database: Any) -> HistoryRecorder:
    """Enable history recording on a database.

    The runtime consults ``database.history_recorder`` at two explicit
    hook points: the execution context wraps its OCC session so data
    operations are observed, and the executor reports commit/abort
    outcomes.  Recording is strictly observational.
    """
    recorder = HistoryRecorder()
    database.history_recorder = recorder
    return recorder


def detach_recorder(database: Any) -> None:
    """Stop recording on a database."""
    database.history_recorder = None


@contextmanager
def recording(database: Any):
    """Episode-scoped recorder lifecycle: attach a fresh
    :class:`HistoryRecorder`, yield it, and always detach on exit —
    back-to-back episodes in one process must not observe each other's
    histories (or leave a dangling recorder on an abandoned database).
    """
    recorder = attach_recorder(database)
    try:
        yield recorder
    finally:
        detach_recorder(database)


def certify_all(database: Any, recorder: Any = None,
                si_events: Any = None,
                crash_reports: list | None = None) -> dict[str, Any]:
    """Run every applicable black-box certificate and aggregate.

    The one-call dispatcher the chaos campaigns (and any end-of-run
    audit) use: serializability from ``recorder`` (or the database's
    attached recorder), replication, migration and snapshot-isolation
    certificates from live state, plus externally produced
    :func:`certify_crash_recovery` reports (crash images are taken
    mid-run, so their certificates are handed in, not re-derived).

    Returns ``{"ok", "failures", <certificate reports>}`` where
    ``failures`` lists one ``{"kind", "detail"}`` entry per failed
    certificate — inapplicable certificates (``enabled: false``) and
    reported-not-failed windows (async losses, unchecked logs) do not
    fail the aggregate, mirroring each certificate's own contract.
    """
    if recorder is None:
        recorder = getattr(database, "history_recorder", None)
    serializability = {"enabled": recorder is not None, "ok": True}
    if recorder is not None:
        serializability["ok"] = recorder.is_serializable()

    report: dict[str, Any] = {
        "ok": True,
        "failures": [],
        "serializability": serializability,
        "replication": certify_replication(database),
        "migration": certify_migration(database),
        "snapshot_isolation": certify_snapshot_isolation(
            database, events=si_events),
        "crash_recovery": {
            "enabled": bool(crash_reports),
            "ok": all(entry.get("ok") for entry in crash_reports or []),
            "images": len(crash_reports or []),
            "reports": list(crash_reports or []),
        },
    }
    details = {
        "serializability": "recorded history is not "
                           "conflict-serializable",
        "replication": "a replica diverged from its primary's commit "
                       "order or a failover lost acked commits",
        "migration": "a completed migration failed routing, "
                     "quiescence, or state-replay checks",
        "snapshot_isolation": "an audited snapshot read violated its "
                              "snapshot",
        "crash_recovery": "a crash image failed recovery "
                          "certification",
    }
    for kind in ("serializability", "replication", "migration",
                 "snapshot_isolation", "crash_recovery"):
        certificate = report[kind]
        if certificate.get("enabled") and not certificate.get("ok"):
            report["ok"] = False
            report["failures"].append({"kind": kind,
                                       "detail": details[kind]})
    return report
