"""Runtime history capture and serializability auditing.

Bridges the execution engine and the formal model of Section 2.3: a
:class:`HistoryRecorder` attached to a database observes every basic
operation (read/write with its root transaction, sub-transaction and
reactor identity, in global virtual-time order) plus commit/abort
events, producing a :class:`~repro.formal.history.ReactorHistory`.
The recorded history of any run can then be checked for conflict
serializability with the Section 2.3 machinery — an operation-level
audit complementing the state-equivalence integration tests.

Recording works by wrapping the CC session methods (any scheme); it is strictly
observational (no behavior change) and adds Python-level overhead
only, never virtual time.
"""

from __future__ import annotations

from typing import Any

from repro.concurrency.base import CCSession
from repro.formal.history import ReactorHistory
from repro.formal.ops import Op, abort, commit
from repro.formal.serializability import (
    is_serializable_reactor,
    serialization_order,
)


class HistoryRecorder:
    """Observes a database run and accumulates a reactor history."""

    def __init__(self) -> None:
        self.history = ReactorHistory()
        self._reactor_ids: dict[int, int] = {}
        self._reactor_names: dict[int, str] = {}
        self._current_sub: dict[int, int] = {}

    # -- identity bookkeeping -------------------------------------------

    def _reactor_id(self, reactor: Any) -> int:
        key = id(reactor)
        if key not in self._reactor_ids:
            self._reactor_ids[key] = len(self._reactor_ids)
            self._reactor_names[self._reactor_ids[key]] = reactor.name
        return self._reactor_ids[key]

    def reactor_name(self, reactor_id: int) -> str:
        return self._reactor_names[reactor_id]

    # -- event intake ------------------------------------------------------

    def record_op(self, kind: str, txn_id: int, subtxn_id: int,
                  reactor: Any, table_name: str, pk: tuple) -> None:
        self.history.append(Op(
            kind=kind, txn=txn_id, sub=subtxn_id,
            reactor=self._reactor_id(reactor),
            item=f"{table_name}:{pk!r}"))

    def record_commit(self, txn_id: int) -> None:
        self.history.append(commit(txn_id))

    def record_abort(self, txn_id: int) -> None:
        self.history.append(abort(txn_id))

    # -- verdicts ----------------------------------------------------------

    def is_serializable(self) -> bool:
        return is_serializable_reactor(self.history)

    def equivalent_serial_order(self) -> list[int] | None:
        """A witness serial order of committed transactions, or
        ``None`` if the history is not serializable."""
        return serialization_order(
            self.history.committed_txns(),
            self.history.subtxn_conflict_edges())

    def wrap(self, session: CCSession, reactor: Any,
             task: Any) -> "_RecordingSession":
        """Wrap one frame's CC session so its operations are
        observed (called by the execution context hook)."""
        def subtxn_of() -> int:
            if task.frames:
                return task.frames[-1].subtxn_id
            return 0

        return _RecordingSession(session, self, reactor, subtxn_of)


class _RecordingSession:
    """CC session proxy that reports basic operations.

    Reads are recorded for point reads and for every row returned by a
    scan; writes at buffering time.  (Write *installation* order is
    governed by commit events, which the recorder also sees.)
    """

    def __init__(self, session: CCSession, recorder: HistoryRecorder,
                 reactor: Any, subtxn_of: Any) -> None:
        self._session = session
        self._recorder = recorder
        self._reactor = reactor
        self._subtxn_of = subtxn_of

    def __getattr__(self, name: str) -> Any:
        return getattr(self._session, name)

    def read(self, table, pk):
        result = self._session.read(table, pk)
        self._recorder.record_op(
            "r", self._session.txn_id, self._subtxn_of(),
            self._reactor, table.name, pk)
        return result

    def scan(self, table, predicate=None, **kwargs):
        from repro.relational.predicate import ALWAYS

        result = self._session.scan(
            table, predicate if predicate is not None else ALWAYS,
            **kwargs)
        for row in result.rows:
            pk = table.schema.primary_key_of(row)
            self._recorder.record_op(
                "r", self._session.txn_id, self._subtxn_of(),
                self._reactor, table.name, pk)
        return result

    def insert(self, table, row):
        result = self._session.insert(table, row)
        pk = table.schema.primary_key_of(table.schema.validate_row(row))
        self._recorder.record_op(
            "w", self._session.txn_id, self._subtxn_of(),
            self._reactor, table.name, pk)
        return result

    def update(self, table, pk, assignments):
        result = self._session.update(table, pk, assignments)
        self._recorder.record_op(
            "w", self._session.txn_id, self._subtxn_of(),
            self._reactor, table.name, pk)
        return result

    def delete(self, table, pk):
        result = self._session.delete(table, pk)
        self._recorder.record_op(
            "w", self._session.txn_id, self._subtxn_of(),
            self._reactor, table.name, pk)
        return result


def attach_recorder(database: Any) -> HistoryRecorder:
    """Enable history recording on a database.

    The runtime consults ``database.history_recorder`` at two explicit
    hook points: the execution context wraps its OCC session so data
    operations are observed, and the executor reports commit/abort
    outcomes.  Recording is strictly observational.
    """
    recorder = HistoryRecorder()
    database.history_recorder = recorder
    return recorder


def detach_recorder(database: Any) -> None:
    """Stop recording on a database."""
    database.history_recorder = None
