"""Histories over reactor-model transactions.

A :class:`ReactorHistory` is a totally ordered sequence of basic
operations and terminal events (a convenient special case of the
paper's partial orders: every total order is a valid completion, and
conflict-serializability analysis only consults the order of
conflicting pairs).

The history exposes the two conflict views of Section 2.3:

* leaf-level conflicts between basic operations (used after
  projection to the classic model);
* sub-transaction-level conflicts (Definition 2.2: two
  sub-transactions conflict iff their basic operations contain a
  conflicting pair on the same reactor) — the reactor-model notion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.formal.ops import ABORT, COMMIT, Op, Terminal


@dataclass
class ReactorHistory:
    """A totally ordered execution of reactor-model transactions."""

    events: list[Op | Terminal] = field(default_factory=list)

    def append(self, event: Op | Terminal) -> None:
        self.events.append(event)

    # ------------------------------------------------------------------

    def operations(self) -> list[Op]:
        return [e for e in self.events if isinstance(e, Op)]

    def committed_txns(self) -> set[int]:
        committed = {e.txn for e in self.events
                     if isinstance(e, Terminal) and e.kind == COMMIT}
        aborted = {e.txn for e in self.events
                   if isinstance(e, Terminal) and e.kind == ABORT}
        return committed - aborted

    def committed_operations(self) -> list[Op]:
        committed = self.committed_txns()
        return [op for op in self.operations() if op.txn in committed]

    def txns(self) -> set[int]:
        return {op.txn for op in self.operations()} | {
            e.txn for e in self.events if isinstance(e, Terminal)}

    def subtxns(self) -> set[tuple[int, int]]:
        return {(op.txn, op.sub) for op in self.operations()}

    # ------------------------------------------------------------------
    # Conflict edges between committed transactions
    # ------------------------------------------------------------------

    def leaf_conflict_edges(self) -> set[tuple[int, int]]:
        """Edges Ti -> Tj from ordered conflicting basic operations.

        This is the classic-model conflict relation evaluated on the
        (projected) items; Definition 2.3's name mapping is implicit
        because :meth:`Op.conflicts_with` already requires equal
        reactors.
        """
        ops = self.committed_operations()
        edges: set[tuple[int, int]] = set()
        for i, first in enumerate(ops):
            for second in ops[i + 1:]:
                if first.txn != second.txn and \
                        first.conflicts_with(second):
                    edges.add((first.txn, second.txn))
        return edges

    def subtxn_conflict_edges(self) -> set[tuple[int, int]]:
        """Edges from the sub-transaction-level conflict relation.

        Two sub-transactions conflict iff some pair of their basic
        operations conflicts (Definition 2.2); the history orders the
        conflicting sub-transactions by their first conflicting
        operation pair.  Edges are projected to transactions.
        """
        ops = self.committed_operations()
        edges: set[tuple[int, int]] = set()
        seen_pairs: set[tuple[tuple[int, int], tuple[int, int]]] = set()
        for i, first in enumerate(ops):
            for second in ops[i + 1:]:
                if first.txn == second.txn:
                    continue
                if not first.conflicts_with(second):
                    continue
                pair = ((first.txn, first.sub), (second.txn, second.sub))
                if pair in seen_pairs:
                    continue
                seen_pairs.add(pair)
                edges.add((first.txn, second.txn))
        return edges


def history_of(events: Iterable[Op | Terminal]) -> ReactorHistory:
    return ReactorHistory(list(events))
