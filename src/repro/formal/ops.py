"""Operations, sub-transactions and transactions of the formal model.

Executable counterparts of Definitions 2.1-2.2 (paper Section 2.3):
transactions comprise sub-transactions; a sub-transaction executes on
exactly one reactor and contains basic read/write operations on that
reactor's data items (nested sub-transactions are flattened into the
history order for checking purposes — ``basic_ops`` in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

READ = "r"
WRITE = "w"
COMMIT = "c"
ABORT = "a"


@dataclass(frozen=True)
class Op:
    """One basic operation of the reactor model.

    ``txn``/``sub`` identify the (sub-)transaction (natural numbers,
    as in the paper); ``reactor`` and ``item`` name the data item —
    items of different reactors are disjoint by construction.
    """

    kind: str  # READ or WRITE
    txn: int
    sub: int
    reactor: int
    item: str

    def conflicts_with(self, other: "Op") -> bool:
        """Same named item in the same reactor, at least one write."""
        return (self.reactor == other.reactor
                and self.item == other.item
                and (self.kind == WRITE or other.kind == WRITE))

    def __repr__(self) -> str:
        return (f"{self.kind}[{self.txn}.{self.sub}@{self.reactor}:"
                f"{self.item}]")


@dataclass(frozen=True)
class Terminal:
    """A commit or abort event of a transaction."""

    kind: str  # COMMIT or ABORT
    txn: int

    def __repr__(self) -> str:
        return f"{self.kind}[{self.txn}]"


def read(txn: int, sub: int, reactor: int, item: str) -> Op:
    return Op(READ, txn, sub, reactor, item)


def write(txn: int, sub: int, reactor: int, item: str) -> Op:
    return Op(WRITE, txn, sub, reactor, item)


def commit(txn: int) -> Terminal:
    return Terminal(COMMIT, txn)


def abort(txn: int) -> Terminal:
    return Terminal(ABORT, txn)
