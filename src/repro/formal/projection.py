"""Projection from the reactor model to the classic model.

Executable Definitions 2.3-2.6: the projection renames each data item
by concatenating its reactor identifier (so the disjoint per-reactor
address spaces map into one), unrolls sub-transactions into plain
read/write operations, and preserves the ordering of conflicting
operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.formal.history import ReactorHistory
from repro.formal.ops import COMMIT, Op, Terminal


@dataclass(frozen=True)
class ClassicOp:
    """A classic-model operation over the merged address space."""

    kind: str
    txn: int
    item: str  # "reactor::item" after the name mapping

    def conflicts_with(self, other: "ClassicOp") -> bool:
        return (self.item == other.item
                and ("w" in (self.kind, other.kind)))

    def __repr__(self) -> str:
        return f"{self.kind}[{self.txn}:{self.item}]"


@dataclass
class ClassicHistory:
    """A totally ordered classic-model history."""

    events: list[ClassicOp | Terminal] = field(default_factory=list)

    def committed_txns(self) -> set[int]:
        return {e.txn for e in self.events
                if isinstance(e, Terminal) and e.kind == COMMIT}

    def committed_operations(self) -> list[ClassicOp]:
        committed = self.committed_txns()
        return [e for e in self.events
                if isinstance(e, ClassicOp) and e.txn in committed]

    def conflict_edges(self) -> set[tuple[int, int]]:
        ops = self.committed_operations()
        edges: set[tuple[int, int]] = set()
        for i, first in enumerate(ops):
            for second in ops[i + 1:]:
                if first.txn != second.txn and \
                        first.conflicts_with(second):
                    edges.add((first.txn, second.txn))
        return edges


def project_op(op: Op) -> ClassicOp:
    """Definition 2.3: name mapping by reactor-id concatenation."""
    return ClassicOp(op.kind, op.txn, f"{op.reactor}::{op.item}")


def project(history: ReactorHistory) -> ClassicHistory:
    """Definitions 2.4-2.6: unroll sub-transactions, keep the order.

    Operating on totally ordered histories, the projection preserves
    the global order of all operations, which in particular preserves
    the order of every conflicting pair (condition 3 of Definition
    2.6).
    """
    projected: list[ClassicOp | Terminal] = []
    for event in history.events:
        if isinstance(event, Op):
            projected.append(project_op(event))
        else:
            projected.append(event)
    return ClassicHistory(projected)
