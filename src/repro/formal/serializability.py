"""Conflict-serializability checking (the serializability theorem).

A history is conflict-serializable iff its serialization graph —
nodes are committed transactions, edges order conflicting operation
pairs — is acyclic.  :func:`is_serializable_reactor` uses the
sub-transaction-level conflict notion of the reactor model;
:func:`is_serializable_classic` the classic leaf-level notion.
Theorem 2.7 states they agree through the projection — the property
tests exercise exactly that equivalence on random histories.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.formal.history import ReactorHistory
from repro.formal.projection import ClassicHistory, project


def has_cycle(nodes: Iterable[Hashable],
              edges: set[tuple[Hashable, Hashable]]) -> bool:
    """Iterative three-color DFS cycle detection."""
    adjacency: dict[Hashable, list[Hashable]] = {n: [] for n in nodes}
    for src, dst in edges:
        adjacency.setdefault(src, []).append(dst)
        adjacency.setdefault(dst, [])
    WHITE, GREY, BLACK = 0, 1, 2
    color = {n: WHITE for n in adjacency}
    for start in adjacency:
        if color[start] != WHITE:
            continue
        stack: list[tuple[Hashable, int]] = [(start, 0)]
        color[start] = GREY
        while stack:
            node, edge_index = stack[-1]
            neighbours = adjacency[node]
            if edge_index < len(neighbours):
                stack[-1] = (node, edge_index + 1)
                nxt = neighbours[edge_index]
                if color[nxt] == GREY:
                    return True
                if color[nxt] == WHITE:
                    color[nxt] = GREY
                    stack.append((nxt, 0))
            else:
                color[node] = BLACK
                stack.pop()
    return False


def serialization_order(nodes: Iterable[Hashable],
                        edges: set[tuple[Hashable, Hashable]]
                        ) -> list[Hashable] | None:
    """A topological order of the serialization graph, or ``None``
    when the history is not serializable."""
    adjacency: dict[Hashable, list[Hashable]] = {n: [] for n in nodes}
    indegree: dict[Hashable, int] = {n: 0 for n in nodes}
    for src, dst in edges:
        adjacency.setdefault(src, []).append(dst)
        indegree.setdefault(src, 0)
        indegree[dst] = indegree.get(dst, 0) + 1
    ready = sorted((n for n, d in indegree.items() if d == 0),
                   key=repr)
    order: list[Hashable] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for nxt in adjacency[node]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                ready.append(nxt)
        ready.sort(key=repr)
    if len(order) != len(indegree):
        return None
    return order


def is_serializable_reactor(history: ReactorHistory) -> bool:
    """Serializability under the reactor model's conflict notion."""
    return not has_cycle(history.committed_txns(),
                         history.subtxn_conflict_edges())


def is_serializable_classic(history: ClassicHistory) -> bool:
    """Serializability under the classic conflict notion."""
    return not has_cycle(history.committed_txns(),
                         history.conflict_edges())


def theorem_2_7_holds(history: ReactorHistory) -> bool:
    """Check Theorem 2.7 on one history: reactor-model
    serializability must coincide with classic serializability of the
    projection."""
    return (is_serializable_reactor(history)
            == is_serializable_classic(project(history)))
