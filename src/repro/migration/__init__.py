"""Online reactor migration and elastic rebalancing.

This layer makes reactor *placement over time* a live operation rather
than a start-time choice: a :class:`MigrationManager` (attached to
every :class:`~repro.core.database.ReactorDatabase`) moves a reactor —
records, partial indexes, routing entry — between containers while the
system serves traffic (park new work / drain in-flight transactions /
copy state through the redo-record machinery / atomically flip routing
/ replay the parked work), keeping replication consistent by re-homing
the reactor's replica shards.  An :class:`ElasticPolicy` watches
per-container load and triggers migrations to rebalance under skew.

Public exports: :class:`MigrationConfig` (the deployment-time knob,
with :data:`DEFAULT_MIGRATION`), :class:`MigrationManager` and its
:class:`Migration` handle / :class:`MigrationStats` counters, and
:class:`ElasticPolicy`.  The usual entry points are
``db.migrate(reactor, dst)``, ``db.rebalance()`` and
``db.migration_stats()``; black-box certification of completed
migrations lives in :func:`repro.formal.audit.certify_migration`.

Only the config is imported eagerly: :mod:`repro.core.deployment`
imports this package while the core/runtime modules the manager needs
are still initializing, so the manager/policy symbols resolve lazily
on first attribute access.
"""

from repro.migration.config import DEFAULT_MIGRATION, MigrationConfig

__all__ = [
    "MigrationConfig",
    "DEFAULT_MIGRATION",
    "MigrationManager",
    "Migration",
    "MigrationStats",
    "ElasticPolicy",
]

_LAZY = {
    "MigrationManager": "repro.migration.manager",
    "Migration": "repro.migration.manager",
    "MigrationStats": "repro.migration.manager",
    "ElasticPolicy": "repro.migration.policy",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
