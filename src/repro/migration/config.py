"""Migration configuration: elasticity as a deployment-time knob.

The paper's deployment-time virtualization claim, extended once more:
after architecture (PR 0), concurrency control (PR 1) and availability
(PR 2), *placement over time* also becomes a config edit.  A
:class:`MigrationConfig` inside the
:class:`~repro.core.deployment.DeploymentConfig` tunes how online
reactor migrations drain and how the elastic rebalancing policy reacts
to load imbalance — application code (reactor types and procedures)
never changes.

Two usage modes:

* **manual** — ``db.migrate(reactor, dst)`` and ``db.rebalance()``
  are always available; this config only tunes their mechanics;
* **elastic** — with ``auto_rebalance_horizon_us > 0`` the database
  arms an :class:`~repro.migration.policy.ElasticPolicy` at bootstrap
  that samples per-container load every ``check_interval_us`` of
  virtual time (up to the horizon) and triggers migrations whenever
  the most loaded container exceeds ``imbalance_threshold`` times the
  mean load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import DeploymentError


@dataclass(frozen=True)
class MigrationConfig:
    """Per-deployment online-migration / elastic-rebalancing choice."""

    #: Virtual-time interval between drain-barrier re-checks while a
    #: migration waits for in-flight transactions at the source.
    drain_poll_us: float = 5.0
    #: A container is overloaded when its share of the submission
    #: window exceeds this multiple of the mean per-container load.
    imbalance_threshold: float = 1.3
    #: Upper bound on migrations one ``rebalance()`` call may start.
    max_moves_per_check: int = 4
    #: Virtual-time period of the elastic policy's load checks.
    check_interval_us: float = 20_000.0
    #: Arm the elastic policy until this absolute virtual time
    #: (0 disables it; migrations stay manual).  A finite horizon keeps
    #: the discrete-event simulation drainable.
    auto_rebalance_horizon_us: float = 0.0

    def __post_init__(self) -> None:
        if self.drain_poll_us <= 0:
            raise DeploymentError("drain_poll_us must be > 0")
        if self.imbalance_threshold < 1.0:
            raise DeploymentError(
                "imbalance_threshold must be >= 1.0 (a container at "
                "exactly the mean load is never overloaded)"
            )
        if self.max_moves_per_check < 1:
            raise DeploymentError("max_moves_per_check must be >= 1")
        if self.check_interval_us <= 0:
            raise DeploymentError("check_interval_us must be > 0")
        if self.auto_rebalance_horizon_us < 0:
            raise DeploymentError(
                "auto_rebalance_horizon_us must be >= 0 (0 disables "
                "the elastic policy)"
            )

    @property
    def auto_rebalance(self) -> bool:
        return self.auto_rebalance_horizon_us > 0

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "drain_poll_us": self.drain_poll_us,
            "imbalance_threshold": self.imbalance_threshold,
            "max_moves_per_check": self.max_moves_per_check,
            "check_interval_us": self.check_interval_us,
            "auto_rebalance_horizon_us": self.auto_rebalance_horizon_us,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "MigrationConfig":
        known = {"drain_poll_us", "imbalance_threshold",
                 "max_moves_per_check", "check_interval_us",
                 "auto_rebalance_horizon_us"}
        for key in data:
            if key not in known:
                raise DeploymentError(
                    f"unknown migration key {key!r}; expected one of "
                    f"{', '.join(sorted(known))}"
                )
        return MigrationConfig(
            drain_poll_us=float(data.get("drain_poll_us", 5.0)),
            imbalance_threshold=float(
                data.get("imbalance_threshold", 1.3)),
            max_moves_per_check=int(
                data.get("max_moves_per_check", 4)),
            check_interval_us=float(
                data.get("check_interval_us", 20_000.0)),
            auto_rebalance_horizon_us=float(
                data.get("auto_rebalance_horizon_us", 0.0)),
        )


#: The manual-migrations default every deployment starts from.
DEFAULT_MIGRATION = MigrationConfig()
