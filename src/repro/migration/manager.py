"""Online reactor migration: drain, park, copy, flip, replay.

ReactDB's claim is that architecture is a deployment-time choice; this
module removes the remaining caveat that it was a *start*-time choice.
A :class:`MigrationManager` (one per database, always attached) moves a
reactor — its records, partial indexes, and routing entry — from one
container to another while the system keeps serving traffic:

1. **park** — the reactor is marked ``migrating``; new root
   transactions submitted to it, and sub-calls from transactions with
   no stake in the source copy, are parked in the migration's queue
   instead of reaching an executor (queued-but-unstarted roots at the
   source are swept into the same queue);
2. **drain** — the migration waits (re-checking every
   ``drain_poll_us`` of virtual time) until no in-flight root
   transaction that touched the source instance remains, so no session
   can still reference its records;
3. **copy** — the committed state is snapshotted into synthetic
   :class:`~repro.durability.wal.RedoRecord` after-images and replayed
   into a fresh successor instance through the same
   :func:`~repro.durability.wal.apply_record_to` machinery crash
   recovery and replication use, priced by the ``mig_*`` cost
   parameters of :mod:`repro.sim.costs`;
4. **flip** — the routing entry swaps to the successor in a single
   scheduler event (the source is ``retired`` and forwards
   stragglers), replication re-homes the reactor's replica shards, and
   the history recorder (when attached) aliases the successor so
   serializability audits span the migration;
5. **replay** — the parked work is re-submitted at the destination in
   arrival order.

On top of the mechanism, :meth:`MigrationManager.rebalance` (exposed
as ``db.rebalance()``) watches per-reactor submission counts and moves
the hottest reactors off overloaded containers;
:class:`~repro.migration.policy.ElasticPolicy` runs that check
periodically in virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.reactor import Reactor
from repro.durability.wal import DELETE, INSERT, RedoEntry, \
    RedoRecord, apply_record_to
from repro.errors import MigrationAbort, MigrationError
from repro.telemetry.spans import TRACK_MIGRATION

DRAINING = "draining"
COPYING = "copying"
DONE = "done"
CANCELLED = "cancelled"


@dataclass
class Migration:
    """One online migration of one reactor, observable as it runs."""

    reactor_name: str
    src_cid: int
    dst_cid: int
    requested_at: float
    state: str = DRAINING
    #: The serving instance at the source (retired at the flip).
    source: Any = None
    #: The successor instance at the destination (set at the flip).
    target: Any = None
    flipped_at: float = 0.0
    #: Virtual time the drain barrier cleared and the copy began
    #: (bounds the drain/copy phase spans on the migration track).
    copy_started_at: float = 0.0
    drain_polls: int = 0
    rows_copied: int = 0
    reason: str | None = None
    on_done: Callable[["Migration"], None] | None = None
    parked_roots: list[Any] = field(default_factory=list)
    parked_subcalls: list[Any] = field(default_factory=list)
    #: Scalar park counts for stats: the invocation lists are released
    #: once replayed (and a superseded migration's snapshot with them),
    #: so reporting cannot rely on their lengths.
    roots_parked_n: int = 0
    subcalls_parked_n: int = 0
    #: Snapshot after-images the copy replayed (certification anchor).
    snapshot_records: list[RedoRecord] = field(default_factory=list)
    #: Version history below the watermark still needed by snapshot
    #: readers pinned at copy time (true commit TIDs, oldest first);
    #: replayed into the successor *before* the flat cut so its
    #: install path rebuilds the chains.  Dropped after the flip.
    history_records: list[RedoRecord] = field(default_factory=list)
    #: Source TID watermark the snapshot was taken at: every copied
    #: commit has TID <= watermark, every destination commit after the
    #: flip has TID > watermark.
    watermark: int = 0
    #: The redo logs live at the flip, for black-box certification
    #: (record selection is by ``watermark``, robust to promotion
    #: re-seeding): the source log must gain no entries for this
    #: reactor above the watermark, and snapshot + destination entries
    #: above it must replay to the live state (see
    #: repro.formal.audit.certify_migration).
    src_log: Any = None
    dst_log: Any = None

    @property
    def done(self) -> bool:
        return self.state == DONE


@dataclass
class MigrationStats:
    """Counters ``db.migration_stats()`` exposes."""

    started: int = 0
    completed: int = 0
    cancelled: int = 0
    rows_copied: int = 0
    roots_parked: int = 0
    subcalls_parked: int = 0
    rebalance_checks: int = 0
    rebalance_moves: int = 0
    events: list[Migration] = field(default_factory=list)


class MigrationManager:
    """Owns the online migrations and load accounting of one database."""

    def __init__(self, database: Any, config: Any) -> None:
        self.database = database
        self.config = config
        self.stats = MigrationStats()
        #: reactor name -> in-progress Migration.
        self.active: dict[str, Migration] = {}
        #: reactor name -> last completed Migration; the previous one
        #: is compacted (snapshot/log anchors released) when a new
        #: migration of the same reactor supersedes it.
        self._last_completed: dict[str, Migration] = {}
        #: reactor name -> root submissions since the window reset
        #: (the load signal rebalancing decides on).
        self.load: dict[str, int] = {}
        # Deferred import: policy only needs the manager.
        from repro.migration.policy import ElasticPolicy

        self.policy = ElasticPolicy(self, config)
        #: Deliberate-bug toggle (chaos self-test only): drop parked
        #: root invocations at the routing flip instead of replaying
        #: them — a lost-work bug the campaign's liveness check (every
        #: submitted root reports an outcome) must catch.
        self.chaos_drop_parked = False
        telemetry = getattr(database, "telemetry", None)
        self._telemetry = telemetry
        if telemetry is not None:
            telemetry.register_migration(self)
        if config.auto_rebalance:
            self.policy.start(config.auto_rebalance_horizon_us)

    # ------------------------------------------------------------------
    # Load accounting (called from ReactorDatabase.submit)
    # ------------------------------------------------------------------

    def note_submit(self, reactor_name: str) -> None:
        self.load[reactor_name] = self.load.get(reactor_name, 0) + 1

    def reset_load_window(self) -> None:
        """Start a fresh submission window (e.g. after a workload
        shift, so rebalancing reacts to current rather than historic
        skew)."""
        self.load.clear()

    # ------------------------------------------------------------------
    # Parking (called from ReactorDatabase.submit and the executor)
    # ------------------------------------------------------------------

    def is_migrating(self, reactor_name: str) -> bool:
        return reactor_name in self.active

    def park_root(self, reactor_name: str, invocation: Any) -> None:
        migration = self.active[reactor_name]
        migration.parked_roots.append(invocation)
        migration.roots_parked_n += 1
        self.stats.roots_parked += 1
        trace = invocation.root.trace
        if trace is not None:
            trace.open_child("park", "migration:parked",
                             self.database.scheduler.now,
                             {"reactor": reactor_name})

    def park_subcall(self, reactor_name: str, invocation: Any) -> None:
        migration = self.active[reactor_name]
        migration.parked_subcalls.append(invocation)
        migration.subcalls_parked_n += 1
        self.stats.subcalls_parked += 1
        trace = invocation.root.trace
        if trace is not None:
            trace.open_child(("park", invocation.subtxn_id),
                             "migration:parked",
                             self.database.scheduler.now,
                             {"reactor": reactor_name})

    # ------------------------------------------------------------------
    # The migration itself
    # ------------------------------------------------------------------

    def migrate(self, reactor_name: str, dst_cid: int,
                on_done: Callable[[Migration], None] | None = None
                ) -> Migration:
        """Start moving ``reactor_name`` to container ``dst_cid``.

        Returns immediately with a :class:`Migration` handle; the
        drain/copy/flip/replay pipeline runs in virtual time (drive the
        scheduler to completion).  ``on_done(migration)`` fires when
        the migration completes or is cancelled.
        """
        database = self.database
        reactor = database.reactor(reactor_name)
        if reactor_name in self.active:
            raise MigrationError(
                f"reactor {reactor_name!r} is already migrating")
        containers = database.containers
        if not 0 <= dst_cid < len(containers):
            raise MigrationError(
                f"destination container {dst_cid} does not exist "
                f"({len(containers)} containers)")
        src = reactor.container
        if src.container_id == dst_cid:
            raise MigrationError(
                f"reactor {reactor_name!r} is already homed in "
                f"container {dst_cid}")
        if src.failed:
            raise MigrationError(
                f"source container {src.container_id} has failed; "
                "promote a replica instead of migrating")
        if containers[dst_cid].failed:
            raise MigrationError(
                f"destination container {dst_cid} has failed")
        # Redo logging anchors the black-box migration certificate
        # (and is already on when replication or durability is).
        from repro.durability.recovery import enable_durability

        enable_durability(database)

        migration = Migration(
            reactor_name=reactor_name,
            src_cid=src.container_id,
            dst_cid=dst_cid,
            requested_at=database.scheduler.now,
            source=reactor,
            on_done=on_done,
        )
        self.active[reactor_name] = migration
        self.stats.started += 1
        reactor.migrating = True

        # Sweep queued-but-unstarted roots targeting the reactor out of
        # the source executors into the migration queue; they replay at
        # the destination.  Queued *sub-calls* stay: their roots either
        # touched the reactor already (they drain) or will touch it now
        # (extending the drain barrier by one transaction).
        swept = src.take_queued_roots(reactor)
        migration.parked_roots.extend(swept)
        migration.roots_parked_n += len(swept)
        self.stats.roots_parked += len(swept)

        database.scheduler.soon(self._poll_drain, migration)
        return migration

    # -- drain ----------------------------------------------------------

    def _poll_drain(self, migration: Migration) -> None:
        if migration.state != DRAINING:
            return
        database = self.database
        reactor = migration.source
        if database.reactor(migration.reactor_name) is not reactor or \
                reactor.container.failed:
            # The source failed over (promotion re-registered a replica
            # shadow) or crashed without a successor: the source copy
            # is gone, so the migration cannot proceed.
            self._cancel(migration, "source container failed")
            return
        if self._drained(migration, reactor):
            self._begin_copy(migration)
            return
        migration.drain_polls += 1
        database.scheduler.after(self.config.drain_poll_us,
                                 self._poll_drain, migration)

    def _drained(self, migration: Migration, reactor: Reactor) -> bool:
        if reactor.inflight_roots:
            return False
        # Sub-transactions register on the reactor at *dispatch* time
        # (Section 2.2.4), so active_count() also covers sub-calls
        # still in transport flight toward the source — invisible to
        # both the in-flight set and the executor queues.
        if reactor.active_count():
            return False
        src = self.database.containers[migration.src_cid]
        return not src.has_queued_work_for(reactor)

    # -- copy -----------------------------------------------------------

    def _begin_copy(self, migration: Migration) -> None:
        database = self.database
        costs = database.costs
        migration.copy_started_at = database.scheduler.now
        reactor = migration.source
        src = reactor.container
        # Snapshot the committed state as synthetic redo after-images,
        # stamped with the source's TID watermark ("state as of every
        # commit up to here") — the copy is then a log replay.  The
        # rows are read as a *version cut at the watermark*, not the
        # live heads: the drain barrier guarantees no local root still
        # writes here, but a snapshot-read root pinned elsewhere could
        # otherwise race the copy with an in-flight commit's install,
        # and under the multi-version engine the as-of read is exact
        # either way.
        watermark = src.concurrency.tids.last
        # Durability barrier: force the source's open group-commit
        # epoch down before its state leaves the container, so every
        # commit below the copy watermark is durable at the source by
        # the time the successor serves it (the copy itself is never
        # logged — the watermark interplay the crash certificate and
        # checkpoint truncation rely on).
        durability = database.durability
        if durability is not None:
            durability.kick_flush(src.container_id)
        rows = 0
        records: list[RedoRecord] = []
        for table in reactor.catalog:
            entries = []
            for row in table.rows_as_of(watermark):
                # rows_as_of yields fresh copies — owned outright, no
                # defensive re-copy.
                entries.append(RedoEntry(
                    reactor=reactor.name, table=table.name,
                    kind=INSERT,
                    pk=table.schema.primary_key_of(row),
                    row=row))
            rows += len(entries)
            if entries:
                records.append(RedoRecord(watermark, tuple(entries)))
        migration.snapshot_records = records
        migration.rows_copied = rows
        migration.watermark = watermark
        # Snapshot readers pinned below the watermark still need
        # pre-watermark versions of this reactor; the flat cut alone
        # (restamped at the watermark) would make every row invisible
        # to them.  Copy the retained history at its true commit TIDs
        # too — replayed before the cut, the destination's own install
        # path rebuilds the chains.
        storage = getattr(database, "storage", None)
        keep = storage.keep_watermark() if storage is not None else None
        if keep is not None:
            migration.history_records = self._collect_history(
                reactor, keep)
        migration.state = COPYING

        copy_cost = costs.mig_copy_base + costs.mig_copy_per_row * rows
        # The snapshot burns CPU at the source, the install at the
        # destination (bookkeeping as for replica applies: the copy is
        # a scheduler event, not an executor task).
        if src.executors:
            src.executors[0].busy_time += copy_cost
        dst = database.containers[migration.dst_cid]
        if dst.executors:
            dst.executors[0].busy_time += copy_cost
        database.scheduler.after(copy_cost + costs.mig_flip_cost,
                                 self._flip, migration, watermark)

    def _collect_history(self, reactor: Reactor,
                         keep: int) -> list[RedoRecord]:
        """Version history a snapshot pinned at ``keep`` (or later,
        below the copy watermark) can still read: for every record,
        its versions from the newest one at or below ``keep`` up to
        the live head, as single-entry redo records at their *true*
        commit TIDs, oldest first.  Tombstones become DELETE entries
        so deleted-after-snapshot keys resolve correctly."""
        events: list[tuple[int, RedoEntry]] = []
        for table in reactor.catalog:
            for record in table.all_records():
                versions = [(record.tid, record.value, record.deleted)]
                node = record.prev
                while node is not None:
                    versions.append((node.tid, node.value,
                                     node.deleted))
                    node = node.prev
                needed = []
                for tid, value, deleted in versions:  # newest first
                    needed.append((tid, value, deleted))
                    if tid <= keep:
                        break
                for tid, value, deleted in reversed(needed):
                    if deleted:
                        if tid == 0:
                            continue  # pristine insert placeholder
                        events.append((tid, RedoEntry(
                            reactor=reactor.name, table=table.name,
                            kind=DELETE, pk=record.key, row=None)))
                    else:
                        events.append((tid, RedoEntry(
                            reactor=reactor.name, table=table.name,
                            kind=INSERT, pk=record.key,
                            row=dict(value))))
        events.sort(key=lambda pair: pair[0])
        return [RedoRecord(tid, (entry,)) for tid, entry in events]

    # -- flip + replay --------------------------------------------------

    def _flip(self, migration: Migration, watermark: int) -> None:
        database = self.database
        old = migration.source
        dst = database.containers[migration.dst_cid]
        if database.reactor(migration.reactor_name) is not old or \
                old.container.failed:
            self._cancel(migration, "source container failed")
            return
        if dst.failed:
            self._cancel(migration, "destination container failed")
            return

        new = Reactor(old.name, old.rtype)
        new.container = dst
        storage = getattr(database, "storage", None)
        if storage is not None:
            storage.adopt(new)
        executor = dst.route(new)
        new.affinity_executor = executor
        if database.deployment.pin_reactors:
            new.pinned_executor = executor
        new.epoch = old.epoch + 1

        def table_for(reactor_name: str, table_name: str):
            return new.table(table_name)

        # Pre-watermark history first (true TIDs, builds the chains
        # pinned snapshot readers resolve through), then the flat
        # watermark cut on top; the history anchors nothing after the
        # flip and is released.
        for record in migration.history_records:
            apply_record_to(table_for, record)
        migration.history_records = []
        for record in migration.snapshot_records:
            apply_record_to(table_for, record)
        # Commits at the destination must exceed every copied TID.
        dst.concurrency.tids.advance_to(watermark)

        recorder = database.history_recorder
        if recorder is not None and hasattr(recorder, "alias_reactor"):
            # The successor continues the same logical reactor: the
            # serializability audit must see one identity across the
            # migration, not two unrelated ones.
            recorder.alias_reactor(old, new)
        if database.replication is not None:
            database.replication.on_reactor_migrated(
                old, new, migration.snapshot_records)

        # Certification anchors: the logs live at the flip instant.
        durability = database.durability
        if durability is not None:
            migration.src_log = durability.logs.get(migration.src_cid)
            migration.dst_log = durability.logs.get(migration.dst_cid)

        # The atomic routing flip: one scheduler event, no transaction
        # can observe a half-moved reactor.
        database._reactors[old.name] = new
        old.retired = True
        old.migrating = False
        old.migrated_to = new
        migration.target = new
        migration.flipped_at = database.scheduler.now
        migration.state = DONE
        del self.active[old.name]
        self.stats.completed += 1
        self.stats.rows_copied += migration.rows_copied
        self.stats.events.append(migration)
        telemetry = self._telemetry
        if telemetry is not None and telemetry.system_tracing:
            # The two phases on the migration track: the drain barrier
            # (request -> last in-flight root gone) and the copy+flip.
            telemetry.system_span(
                "migration:drain", TRACK_MIGRATION, migration.dst_cid,
                migration.requested_at, migration.copy_started_at,
                {"reactor": old.name, "polls": migration.drain_polls})
            telemetry.system_span(
                "migration:copy_flip", TRACK_MIGRATION,
                migration.dst_cid, migration.copy_started_at,
                migration.flipped_at,
                {"reactor": old.name,
                 "rows": migration.rows_copied})

        # Replay parked work at the destination, in arrival order,
        # paying a dispatch cost per replayed request.  The lists are
        # released afterwards (the scheduled events carry the
        # invocations), and a previously completed migration of the
        # same reactor gives up its certification anchors too —
        # certify_migration only state-checks the latest one.
        replay = database.costs.mig_replay_per_txn
        delay = 0.0
        if self.chaos_drop_parked:
            # Bug toggle: the parked roots silently vanish (their
            # ``on_done`` never fires); parked sub-calls still replay
            # so in-flight parents don't wedge the whole scheduler.
            migration.parked_roots = []
        for invocation in migration.parked_roots:
            delay += replay
            database.scheduler.after(delay, self._replay_root,
                                     invocation)
        for invocation in migration.parked_subcalls:
            delay += replay
            database.scheduler.after(delay, self._replay_subcall,
                                     invocation)
        migration.parked_roots = []
        migration.parked_subcalls = []
        superseded = self._last_completed.get(old.name)
        if superseded is not None:
            superseded.snapshot_records = []
            superseded.src_log = None
            superseded.dst_log = None
        self._last_completed[old.name] = migration
        if migration.on_done is not None:
            database.scheduler.soon(migration.on_done, migration)

    def _replay_root(self, invocation: Any) -> None:
        database = self.database
        reactor = database.reactor(invocation.root.reactor_name)
        if reactor.migrating:
            # A back-to-back migration started before this replay ran:
            # keep the invocation parked for the new migration.
            self.park_root(reactor.name, invocation)
            return
        invocation.reactor = reactor
        if reactor.container.failed:
            root = invocation.root
            root.finished = True
            if database.replication is not None:
                database.replication.stats.failover_aborts += 1
            reason = (f"container {reactor.container.container_id} "
                      "failed")
            database.telemetry.note_root_done(
                root, False, reason, database.scheduler.now)
            if invocation.on_root_done is not None:
                database.scheduler.soon(
                    invocation.on_root_done, root, False, reason,
                    None)
            return
        trace = invocation.root.trace
        if trace is not None:
            trace.close_child("park", database.scheduler.now)
        database._route_root(reactor).submit(invocation)

    def _replay_subcall(self, invocation: Any) -> None:
        database = self.database
        reactor = database.reactor(invocation.reactor.name)
        if reactor.migrating:
            self.park_subcall(reactor.name, invocation)
            return
        invocation.reactor = reactor
        trace = invocation.root.trace
        if trace is not None:
            trace.close_child(("park", invocation.subtxn_id),
                              database.scheduler.now)
        # executor.submit fails the result future itself when the
        # container is down, so the caller aborts instead of hanging.
        reactor.container.route(reactor).submit(invocation)

    def _cancel(self, migration: Migration, reason: str) -> None:
        database = self.database
        migration.state = CANCELLED
        migration.reason = reason
        migration.source.migrating = False
        self.active.pop(migration.reactor_name, None)
        self.stats.cancelled += 1
        self.stats.events.append(migration)
        # Parked work is not lost: replay it against current routing
        # (a promoted replica, or an abort report if the home is dead).
        for invocation in migration.parked_roots:
            self._replay_root(invocation)
        for invocation in migration.parked_subcalls:
            current = database.reactor(invocation.reactor.name)
            if current.container.failed:
                invocation.result_future.fail(
                    MigrationAbort(
                        f"migration of {migration.reactor_name!r} "
                        f"cancelled: {reason}"),
                    database.scheduler.now)
            else:
                self._replay_subcall(invocation)
        migration.parked_roots = []
        migration.parked_subcalls = []
        if migration.on_done is not None:
            database.scheduler.soon(migration.on_done, migration)

    # ------------------------------------------------------------------
    # Elastic rebalancing
    # ------------------------------------------------------------------

    def movable_reactors(self) -> list[str]:
        """Reactors eligible to start a migration right now: live on a
        non-failed container and not already mid-migration.  Sorted,
        so randomized fault campaigns can pick deterministically."""
        names = []
        for name in self.database.reactor_names():
            if name in self.active:
                continue
            reactor = self.database.reactor(name)
            if reactor.migrating or reactor.retired or \
                    reactor.container.failed:
                continue
            names.append(name)
        return sorted(names)

    def container_loads(self) -> list[int]:
        """Submissions per container over the current window (load of
        reactors mid-migration counts toward their destination)."""
        database = self.database
        loads = [0] * len(database.containers)
        for name, count in self.load.items():
            if name in self.active:
                loads[self.active[name].dst_cid] += count
                continue
            if name in database:
                cid = database.reactor(name).container.container_id
                loads[cid] += count
        return loads

    def rebalance(self) -> list[Migration]:
        """One elastic check: migrate the hottest reactors off
        overloaded containers.  Returns the migrations started."""
        database = self.database
        self.stats.rebalance_checks += 1
        n_containers = len(database.containers)
        loads = self.container_loads()
        total = sum(loads)
        if n_containers < 2 or total == 0:
            return []
        mean = total / n_containers
        threshold = self.config.imbalance_threshold * mean
        # Hottest reactors per container, from the submission window.
        by_container: dict[int, list[tuple[int, str]]] = {}
        for name, count in sorted(self.load.items()):
            if name in self.active or name not in database:
                continue
            reactor = database.reactor(name)
            if reactor.container.failed:
                continue
            cid = reactor.container.container_id
            by_container.setdefault(cid, []).append((count, name))
        for candidates in by_container.values():
            candidates.sort(reverse=True)

        moves: list[Migration] = []
        # Containers whose overload rebalancing cannot improve
        # (inherent single-reactor skew, no movable candidate): skipped
        # rather than ending the check, so a *different* overloaded
        # container still gets its turn within the move budget.
        unfixable: set[int] = set()
        while len(moves) < self.config.max_moves_per_check:
            sources = [cid for cid in range(n_containers)
                       if cid not in unfixable]
            if not sources:
                break
            src_cid = max(sources, key=loads.__getitem__)
            if loads[src_cid] <= threshold:
                break
            dst_cid = min(
                (cid for cid in range(n_containers)
                 if not database.containers[cid].failed),
                key=loads.__getitem__, default=None)
            if dst_cid is None or dst_cid == src_cid:
                break
            candidates = by_container.get(src_cid, [])
            move = None
            for index, (count, name) in enumerate(candidates):
                # Only move a reactor if that actually reduces the
                # imbalance between the two containers.
                if loads[dst_cid] + count < loads[src_cid]:
                    move = (index, count, name)
                    break
            if move is None:
                unfixable.add(src_cid)
                continue
            index, count, name = move
            candidates.pop(index)
            moves.append(self.migrate(name, dst_cid))
            loads[src_cid] -= count
            loads[dst_cid] += count
            self.stats.rebalance_moves += 1
        self.reset_load_window()
        return moves

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats_dict(self) -> dict[str, Any]:
        stats = self.stats
        telemetry = self._telemetry
        if telemetry is not None:
            value = telemetry.registry.value
            scalars = {
                "started": value("migration_started_total"),
                "completed": value("migration_completed_total"),
                "cancelled": value("migration_cancelled_total"),
                "rows_copied": value("migration_rows_copied_total"),
                "roots_parked":
                    value("migration_roots_parked_total"),
                "subcalls_parked":
                    value("migration_subcalls_parked_total"),
                "rebalance_checks":
                    value("migration_rebalance_checks_total"),
                "rebalance_moves":
                    value("migration_rebalance_moves_total"),
            }
        else:
            scalars = {
                "started": stats.started,
                "completed": stats.completed,
                "cancelled": stats.cancelled,
                "rows_copied": stats.rows_copied,
                "roots_parked": stats.roots_parked,
                "subcalls_parked": stats.subcalls_parked,
                "rebalance_checks": stats.rebalance_checks,
                "rebalance_moves": stats.rebalance_moves,
            }
        return {
            "started": scalars["started"],
            "completed": scalars["completed"],
            "cancelled": scalars["cancelled"],
            "active": sorted(self.active),
            "rows_copied": scalars["rows_copied"],
            "roots_parked": scalars["roots_parked"],
            "subcalls_parked": scalars["subcalls_parked"],
            "rebalance_checks": scalars["rebalance_checks"],
            "rebalance_moves": scalars["rebalance_moves"],
            "events": [
                {
                    "reactor": m.reactor_name,
                    "src": m.src_cid,
                    "dst": m.dst_cid,
                    "state": m.state,
                    "requested_at_us": round(m.requested_at, 3),
                    "flipped_at_us": round(m.flipped_at, 3),
                    "drain_polls": m.drain_polls,
                    "rows_copied": m.rows_copied,
                    "roots_parked": m.roots_parked_n,
                    "subcalls_parked": m.subcalls_parked_n,
                    "reason": m.reason,
                }
                for m in stats.events
            ],
        }
