"""Elastic rebalancing policy: periodic load checks in virtual time.

An :class:`ElasticPolicy` watches per-container load (root submissions
per reactor, aggregated by current placement) and calls
:meth:`~repro.migration.manager.MigrationManager.rebalance` whenever
the most loaded container exceeds the configured imbalance threshold.
Checks run on the discrete-event scheduler every ``check_interval_us``
up to an explicit horizon — a finite horizon keeps simulations
drainable (``scheduler.run()`` terminates), which is why the policy is
armed with :meth:`start` rather than running forever.
"""

from __future__ import annotations

from typing import Any


class ElasticPolicy:
    """Periodic load watcher driving automatic migrations."""

    def __init__(self, manager: Any, config: Any) -> None:
        self.manager = manager
        self.config = config
        self.checks = 0
        self.moves = 0
        self._armed_until = 0.0
        #: A _check event is currently scheduled.  Tracked explicitly:
        #: "armed" (horizon not reached) and "chain alive" are
        #: different things — the chain dies one interval before the
        #: horizon, and re-arming must revive it exactly then.
        self._check_pending = False

    @property
    def armed(self) -> bool:
        scheduler = self.manager.database.scheduler
        return scheduler.now < self._armed_until

    def start(self, until_us: float) -> None:
        """Arm the policy until the absolute virtual time ``until_us``.

        Re-arming with a later horizon extends a live check chain
        without doubling its cadence, and revives a chain that already
        ran out.
        """
        scheduler = self.manager.database.scheduler
        if until_us > self._armed_until:
            self._armed_until = until_us
        if not self._check_pending:
            self._check_pending = True
            scheduler.after(self.config.check_interval_us, self._check)

    def _check(self) -> None:
        scheduler = self.manager.database.scheduler
        self._check_pending = False
        if scheduler.now > self._armed_until:
            return
        self.checks += 1
        self.moves += len(self.manager.rebalance())
        next_at = scheduler.now + self.config.check_interval_us
        if next_at <= self._armed_until:
            self._check_pending = True
            scheduler.at(next_at, self._check)
