"""Relational substrate: schemas, tables, indexes, predicates, queries.

Every reactor encapsulates a private :class:`~repro.relational.catalog.Catalog`
of :class:`~repro.relational.table.Table` instances built from
:class:`~repro.relational.schema.TableSchema` definitions.  Declarative
queries are supported *only within* a reactor (paper Section 2.2.1);
cross-reactor access is always an asynchronous procedure call.

Public exports: schema builders (``make_schema``, the ``*_col``
helpers, :class:`TableSchema`, :class:`IndexSpec`), the storage
objects (:class:`Catalog`, :class:`Table`), the predicate algebra
(``col``, :class:`Comparison`, :class:`Between`, :class:`InSet`,
:class:`Lambda`, :data:`ALWAYS`) and the query pipeline
(:class:`Query` with its aggregates); the SQL front end stays in
:mod:`repro.relational.sql` (``execute`` / ``parse``), reached through
``ctx.sql(...)``.
"""

from repro.relational.catalog import Catalog
from repro.relational.predicate import (
    ALWAYS,
    Between,
    Comparison,
    InSet,
    Lambda,
    Predicate,
    col,
)
from repro.relational.query import (
    Query,
    agg_avg,
    agg_count,
    agg_count_distinct,
    agg_max,
    agg_min,
    agg_sum,
    scalar,
)
from repro.relational.schema import (
    Column,
    ColumnType,
    IndexSpec,
    TableSchema,
    bool_col,
    column,
    float_col,
    int_col,
    make_schema,
    str_col,
)
from repro.relational.table import Table

__all__ = [
    "Catalog",
    "Table",
    "TableSchema",
    "Column",
    "ColumnType",
    "IndexSpec",
    "column",
    "int_col",
    "float_col",
    "str_col",
    "bool_col",
    "make_schema",
    "Predicate",
    "Comparison",
    "Between",
    "InSet",
    "Lambda",
    "ALWAYS",
    "col",
    "Query",
    "agg_sum",
    "agg_count",
    "agg_count_distinct",
    "agg_min",
    "agg_max",
    "agg_avg",
    "scalar",
]
