"""Per-reactor schema catalogs.

A :class:`Catalog` is the set of tables a single reactor encapsulates.
Reactor types declare a *schema creation function* (per Section 2.2.1)
that builds the catalog when the reactor database is instantiated.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import SchemaError
from repro.relational.schema import TableSchema
from repro.relational.table import Table


class Catalog:
    """The private tables of one reactor instance."""

    def __init__(self, schemas: Iterable[TableSchema] = ()) -> None:
        self._tables: dict[str, Table] = {}
        for schema in schemas:
            self.create_table(schema)

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            known = ", ".join(sorted(self._tables)) or "<none>"
            raise SchemaError(
                f"no table {name!r} in this reactor; known tables: {known}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def table_names(self) -> list[str]:
        return sorted(self._tables)
