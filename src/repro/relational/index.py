"""Secondary index structures.

Two index kinds back declarative queries inside a reactor:

* :class:`HashIndex` — equality lookups, ``dict`` of key tuple to the
  set of primary keys.
* :class:`OrderedIndex` — range scans, a sorted list of
  ``(key_tuple, primary_key)`` pairs maintained with ``bisect``.  This
  stands in for the Masstree nodes of Silo; its ``structure_version``
  counter provides the conservative phantom protection described in
  DESIGN.md (scans validate that no insert/delete changed the index
  since they ran).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Mapping

from repro.errors import DuplicateKeyError
from repro.relational.schema import IndexSpec


class _IndexBase:
    """Shared bookkeeping: spec, key extraction, structure version."""

    def __init__(self, spec: IndexSpec) -> None:
        self.spec = spec
        #: Bumped on every insert/delete; scans record it for phantom
        #: validation (conservative, per index).
        self.structure_version = 0

    @property
    def name(self) -> str:
        return self.spec.name

    def key_of(self, row: Mapping[str, Any]) -> tuple:
        return tuple(row[c] for c in self.spec.columns)

    def check_insert(self, key: tuple) -> None:
        """Raise :class:`DuplicateKeyError` if inserting ``key`` would
        violate uniqueness — without mutating the index.  Lets callers
        validate a whole write before applying any part of it."""
        if self.spec.unique and self.lookup(key):
            raise DuplicateKeyError(
                f"unique index {self.name!r} violated for key {key!r}"
            )


class HashIndex(_IndexBase):
    """Equality-only index: key tuple -> set of primary keys."""

    def __init__(self, spec: IndexSpec) -> None:
        super().__init__(spec)
        self._buckets: dict[tuple, set[tuple]] = {}

    def insert(self, key: tuple, pk: tuple) -> None:
        bucket = self._buckets.setdefault(key, set())
        if self.spec.unique and bucket:
            raise DuplicateKeyError(
                f"unique index {self.name!r} violated for key {key!r}"
            )
        bucket.add(pk)
        self.structure_version += 1

    def remove(self, key: tuple, pk: tuple) -> None:
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(pk)
            if not bucket:
                del self._buckets[key]
        self.structure_version += 1

    def lookup(self, key: tuple) -> frozenset[tuple]:
        """Primary keys whose indexed columns equal ``key``."""
        return frozenset(self._buckets.get(key, frozenset()))

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())


class OrderedIndex(_IndexBase):
    """Sorted index supporting range scans over the key columns."""

    def __init__(self, spec: IndexSpec) -> None:
        super().__init__(spec)
        self._entries: list[tuple[tuple, tuple]] = []

    def insert(self, key: tuple, pk: tuple) -> None:
        entry = (key, pk)
        pos = bisect.bisect_left(self._entries, entry)
        if self.spec.unique:
            if pos < len(self._entries) and self._entries[pos][0] == key:
                raise DuplicateKeyError(
                    f"unique index {self.name!r} violated for key {key!r}"
                )
            if pos > 0 and self._entries[pos - 1][0] == key:
                raise DuplicateKeyError(
                    f"unique index {self.name!r} violated for key {key!r}"
                )
        self._entries.insert(pos, entry)
        self.structure_version += 1

    def remove(self, key: tuple, pk: tuple) -> None:
        entry = (key, pk)
        pos = bisect.bisect_left(self._entries, entry)
        if pos < len(self._entries) and self._entries[pos] == entry:
            self._entries.pop(pos)
        self.structure_version += 1

    def lookup(self, key: tuple) -> frozenset[tuple]:
        """Primary keys whose indexed columns equal ``key`` exactly."""
        return frozenset(pk for __, pk in self._range_entries(key, key))

    def range(self, low: tuple | None, high: tuple | None,
              reverse: bool = False) -> list[tuple]:
        """Primary keys with ``low <= key <= high`` in key order.

        ``None`` bounds are open.  Prefix tuples work as expected
        because Python compares tuples lexicographically; a ``high``
        prefix is extended conceptually with +infinity by using
        ``bisect_right`` on ``(high, <max>)``.
        """
        out = [pk for __, pk in self._range_entries(low, high)]
        if reverse:
            out.reverse()
        return out

    def _range_entries(self, low: tuple | None,
                       high: tuple | None) -> list[tuple[tuple, tuple]]:
        lo_pos = 0 if low is None else self._bisect_key_left(low)
        hi_pos = len(self._entries) if high is None else \
            self._bisect_key_right(high)
        return self._entries[lo_pos:hi_pos]

    def _bisect_key_left(self, key: tuple) -> int:
        lo, hi = 0, len(self._entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._entries[mid][0] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _bisect_key_right(self, key: tuple) -> int:
        """First position whose key is > ``key``, treating ``key`` as a
        prefix (entries whose key starts with ``key`` are included)."""
        lo, hi = 0, len(self._entries)
        while lo < hi:
            mid = (lo + hi) // 2
            entry_key = self._entries[mid][0]
            if entry_key[: len(key)] <= key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def __len__(self) -> int:
        return len(self._entries)


def build_index(spec: IndexSpec) -> HashIndex | OrderedIndex:
    """Instantiate the right index structure for a spec."""
    if spec.ordered:
        return OrderedIndex(spec)
    return HashIndex(spec)


def make_spec(name: str, columns: Iterable[str], ordered: bool = False,
              unique: bool = False) -> IndexSpec:
    return IndexSpec(name=name, columns=tuple(columns), ordered=ordered,
                     unique=unique)
