"""Predicate expressions for declarative queries.

Predicates are small composable objects evaluated against row dicts.
The :func:`col` builder gives an expression syntax close to the paper's
pseudo-SQL::

    from repro.relational.predicate import col

    pred = (col("settled") == "N") & (col("value") > 100.0)

Predicates expose their equality constraints (:meth:`equality_bindings`)
so the query planner can route point lookups and scans through indexes
instead of full scans.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping


class Predicate:
    """Base class; subclasses implement :meth:`matches`."""

    def matches(self, row: Mapping[str, Any]) -> bool:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)

    def equality_bindings(self) -> dict[str, Any]:
        """Column -> value constraints implied conjunctively.

        Only top-level AND-combined equality comparisons are reported;
        used for index selection, never for correctness.
        """
        return {}

    def columns(self) -> set[str]:
        """All columns referenced (for validation against schemas)."""
        return set()


class TruePredicate(Predicate):
    """Matches every row (the absent-WHERE-clause predicate)."""

    def matches(self, row: Mapping[str, Any]) -> bool:
        return True

    def __repr__(self) -> str:
        return "TRUE"


ALWAYS = TruePredicate()


class Comparison(Predicate):
    """column <op> literal."""

    _OPS: dict[str, Callable[[Any, Any], bool]] = {
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    __slots__ = ("column", "op", "value")

    def __init__(self, column: str, op: str, value: Any) -> None:
        if op not in self._OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        self.column = column
        self.op = op
        self.value = value

    def matches(self, row: Mapping[str, Any]) -> bool:
        actual = row.get(self.column)
        if actual is None:
            return False
        return self._OPS[self.op](actual, self.value)

    def equality_bindings(self) -> dict[str, Any]:
        if self.op == "==":
            return {self.column: self.value}
        return {}

    def columns(self) -> set[str]:
        return {self.column}

    def __repr__(self) -> str:
        return f"({self.column} {self.op} {self.value!r})"


class Between(Predicate):
    """low <= column <= high (inclusive range, for ordered indexes)."""

    __slots__ = ("column", "low", "high")

    def __init__(self, column: str, low: Any, high: Any) -> None:
        self.column = column
        self.low = low
        self.high = high

    def matches(self, row: Mapping[str, Any]) -> bool:
        actual = row.get(self.column)
        if actual is None:
            return False
        return self.low <= actual <= self.high

    def columns(self) -> set[str]:
        return {self.column}

    def __repr__(self) -> str:
        return f"({self.low!r} <= {self.column} <= {self.high!r})"


class InSet(Predicate):
    """column IN (literal, ...)."""

    __slots__ = ("column", "values")

    def __init__(self, column: str, values: Any) -> None:
        self.column = column
        self.values = frozenset(values)

    def matches(self, row: Mapping[str, Any]) -> bool:
        return row.get(self.column) in self.values

    def columns(self) -> set[str]:
        return {self.column}

    def __repr__(self) -> str:
        return f"({self.column} IN {sorted(self.values)!r})"


class And(Predicate):
    __slots__ = ("parts",)

    def __init__(self, *parts: Predicate) -> None:
        flat: list[Predicate] = []
        for part in parts:
            if isinstance(part, And):
                flat.extend(part.parts)
            else:
                flat.append(part)
        self.parts = tuple(flat)

    def matches(self, row: Mapping[str, Any]) -> bool:
        return all(p.matches(row) for p in self.parts)

    def equality_bindings(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for part in self.parts:
            out.update(part.equality_bindings())
        return out

    def columns(self) -> set[str]:
        out: set[str] = set()
        for part in self.parts:
            out |= part.columns()
        return out

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.parts)) + ")"


class Or(Predicate):
    __slots__ = ("parts",)

    def __init__(self, *parts: Predicate) -> None:
        self.parts = tuple(parts)

    def matches(self, row: Mapping[str, Any]) -> bool:
        return any(p.matches(row) for p in self.parts)

    def columns(self) -> set[str]:
        out: set[str] = set()
        for part in self.parts:
            out |= part.columns()
        return out

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self.parts)) + ")"


class Not(Predicate):
    __slots__ = ("inner",)

    def __init__(self, inner: Predicate) -> None:
        self.inner = inner

    def matches(self, row: Mapping[str, Any]) -> bool:
        return not self.inner.matches(row)

    def columns(self) -> set[str]:
        return self.inner.columns()

    def __repr__(self) -> str:
        return f"(NOT {self.inner!r})"


class Lambda(Predicate):
    """Escape hatch: arbitrary row -> bool function.

    Lambda predicates cannot use indexes and always force a scan.
    """

    __slots__ = ("fn", "_columns")

    def __init__(self, fn: Callable[[Mapping[str, Any]], bool],
                 columns: set[str] | None = None) -> None:
        self.fn = fn
        self._columns = columns or set()

    def matches(self, row: Mapping[str, Any]) -> bool:
        return bool(self.fn(row))

    def columns(self) -> set[str]:
        return set(self._columns)

    def __repr__(self) -> str:
        return f"Lambda({getattr(self.fn, '__name__', 'fn')})"


class ColumnRef:
    """Column reference supporting operator-overloaded comparisons."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __eq__(self, other: Any) -> Comparison:  # type: ignore[override]
        return Comparison(self.name, "==", other)

    def __ne__(self, other: Any) -> Comparison:  # type: ignore[override]
        return Comparison(self.name, "!=", other)

    def __lt__(self, other: Any) -> Comparison:
        return Comparison(self.name, "<", other)

    def __le__(self, other: Any) -> Comparison:
        return Comparison(self.name, "<=", other)

    def __gt__(self, other: Any) -> Comparison:
        return Comparison(self.name, ">", other)

    def __ge__(self, other: Any) -> Comparison:
        return Comparison(self.name, ">=", other)

    def between(self, low: Any, high: Any) -> Between:
        return Between(self.name, low, high)

    def in_(self, values: Any) -> InSet:
        return InSet(self.name, values)

    def __hash__(self) -> int:  # needed because __eq__ is overloaded
        return hash(self.name)

    def __repr__(self) -> str:
        return f"col({self.name!r})"


def col(name: str) -> ColumnRef:
    """Build a column reference: ``col("balance") >= 0``."""
    return ColumnRef(name)
