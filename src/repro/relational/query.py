"""Declarative query helpers.

Queries within a reactor are expressed either through the context's
convenience methods (``ctx.select``, ``ctx.update``...) or through this
module's :class:`Query` builder, which supports projection, filtering,
ordering, grouping and aggregates over the rows produced by the
transactional record manager.  The builder never touches storage
itself — it is a pure pipeline over row dicts, so it composes with any
row source (committed tables during loads, OCC overlays during
transactions).

Example::

    q = (Query()
         .where((col("settled") == "N"))
         .group_by("provider")
         .aggregate(total=agg_sum("value"), n=agg_count()))
    rows = q.run(source_rows)
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.errors import QueryError
from repro.relational.predicate import ALWAYS, Predicate

Row = dict[str, Any]


class Aggregate:
    """An aggregate function specification over a group of rows."""

    def __init__(self, kind: str, column: str | None = None) -> None:
        self.kind = kind
        self.column = column

    def compute(self, rows: Sequence[Mapping[str, Any]]) -> Any:
        if self.kind == "count":
            return len(rows)
        if self.column is None:
            raise QueryError(f"aggregate {self.kind} requires a column")
        values = [
            r[self.column] for r in rows if r.get(self.column) is not None
        ]
        if self.kind == "sum":
            return sum(values) if values else 0
        if not values:
            return None
        if self.kind == "min":
            return min(values)
        if self.kind == "max":
            return max(values)
        if self.kind == "avg":
            return sum(values) / len(values)
        if self.kind == "count_distinct":
            return len(set(values))
        raise QueryError(f"unknown aggregate kind {self.kind!r}")

    def __repr__(self) -> str:
        return f"{self.kind}({self.column or '*'})"


def agg_sum(column: str) -> Aggregate:
    return Aggregate("sum", column)


def agg_count() -> Aggregate:
    return Aggregate("count")


def agg_min(column: str) -> Aggregate:
    return Aggregate("min", column)


def agg_max(column: str) -> Aggregate:
    return Aggregate("max", column)


def agg_avg(column: str) -> Aggregate:
    return Aggregate("avg", column)


def agg_count_distinct(column: str) -> Aggregate:
    return Aggregate("count_distinct", column)


class Query:
    """A composable row pipeline: filter -> group -> aggregate -> order."""

    def __init__(self) -> None:
        self._predicate: Predicate = ALWAYS
        self._projection: tuple[str, ...] | None = None
        self._order_by: tuple[tuple[str, bool], ...] = ()
        self._group_by: tuple[str, ...] = ()
        self._aggregates: dict[str, Aggregate] = {}
        self._limit: int | None = None

    def where(self, predicate: Predicate) -> "Query":
        if self._predicate is ALWAYS:
            self._predicate = predicate
        else:
            self._predicate = self._predicate & predicate
        return self

    def project(self, *columns: str) -> "Query":
        self._projection = columns
        return self

    def order_by(self, *columns: str, descending: bool = False) -> "Query":
        self._order_by += tuple((c, descending) for c in columns)
        return self

    def group_by(self, *columns: str) -> "Query":
        self._group_by = columns
        return self

    def aggregate(self, **aggregates: Aggregate) -> "Query":
        self._aggregates.update(aggregates)
        return self

    def limit(self, n: int) -> "Query":
        if n < 0:
            raise QueryError("limit must be non-negative")
        self._limit = n
        return self

    # ------------------------------------------------------------------

    def run(self, rows: Iterable[Mapping[str, Any]]) -> list[Row]:
        """Execute the pipeline over a row source."""
        filtered = [dict(r) for r in rows if self._predicate.matches(r)]
        if self._aggregates:
            out = self._run_aggregation(filtered)
        else:
            if self._group_by:
                raise QueryError("group_by requires at least one aggregate")
            out = filtered
        out = self._apply_order(out)
        if self._projection is not None:
            out = [self._project_row(r) for r in out]
        if self._limit is not None:
            out = out[: self._limit]
        return out

    def _run_aggregation(self, rows: list[Row]) -> list[Row]:
        if not self._group_by:
            result = {
                name: agg.compute(rows)
                for name, agg in self._aggregates.items()
            }
            return [result]
        groups: dict[tuple, list[Row]] = {}
        for row in rows:
            try:
                key = tuple(row[c] for c in self._group_by)
            except KeyError as exc:
                raise QueryError(
                    f"group_by column {exc.args[0]!r} missing from row"
                ) from exc
            groups.setdefault(key, []).append(row)
        out = []
        for key in sorted(groups, key=repr):
            group_rows = groups[key]
            result = dict(zip(self._group_by, key))
            for name, agg in self._aggregates.items():
                result[name] = agg.compute(group_rows)
            out.append(result)
        return out

    def _apply_order(self, rows: list[Row]) -> list[Row]:
        for column, descending in reversed(self._order_by):
            rows = sorted(
                rows,
                key=lambda r: (r.get(column) is None, r.get(column)),
                reverse=descending,
            )
        return rows

    def _project_row(self, row: Row) -> Row:
        assert self._projection is not None
        try:
            return {c: row[c] for c in self._projection}
        except KeyError as exc:
            raise QueryError(
                f"projection column {exc.args[0]!r} missing from row"
            ) from exc


def scalar(rows: Sequence[Mapping[str, Any]], column: str,
           default: Any = None) -> Any:
    """First row's value for ``column`` (the SELECT ... INTO idiom)."""
    if not rows:
        return default
    return rows[0].get(column, default)
