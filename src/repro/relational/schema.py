"""Relation schemas.

A reactor encapsulates *whole relational schemas* (Section 2.2.1): each
reactor instance owns private tables created from the
:class:`TableSchema` definitions of its reactor type.  Schemas validate
rows on insert/update, define the primary key, and declare secondary
indexes (hash for equality lookups, ordered for range scans).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, Mapping

from repro.errors import SchemaError


class ColumnType(Enum):
    """Supported column types; values are the accepted Python types."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    BOOL = "bool"

    def accepts(self, value: Any) -> bool:
        if value is None:
            return True  # nullability checked separately
        if self is ColumnType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is ColumnType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(
                value, bool
            )
        if self is ColumnType.STR:
            return isinstance(value, str)
        return isinstance(value, bool)


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    type: ColumnType
    nullable: bool = False

    def validate(self, value: Any) -> None:
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is not nullable")
            return
        if not self.type.accepts(value):
            raise SchemaError(
                f"column {self.name!r} expects {self.type.value}, "
                f"got {type(value).__name__} ({value!r})"
            )


@dataclass(frozen=True)
class IndexSpec:
    """A secondary index declaration.

    ``ordered=True`` builds a sorted index supporting range scans (used
    e.g. for TPC-C order lookups); otherwise a hash index supporting
    equality lookups only.
    """

    name: str
    columns: tuple[str, ...]
    ordered: bool = False
    unique: bool = False


@dataclass(frozen=True)
class TableSchema:
    """Schema of one relation: columns, primary key, secondary indexes."""

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...]
    indexes: tuple[IndexSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {self.name!r}")
        if not self.primary_key:
            raise SchemaError(f"table {self.name!r} needs a primary key")
        known = set(names)
        for pk_col in self.primary_key:
            if pk_col not in known:
                raise SchemaError(
                    f"primary key column {pk_col!r} not in table "
                    f"{self.name!r}"
                )
        index_names = set()
        for spec in self.indexes:
            if spec.name in index_names:
                raise SchemaError(f"duplicate index name {spec.name!r}")
            index_names.add(spec.name)
            for col in spec.columns:
                if col not in known:
                    raise SchemaError(
                        f"index {spec.name!r} references unknown column "
                        f"{col!r}"
                    )

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def validate_row(self, row: Mapping[str, Any]) -> dict[str, Any]:
        """Validate and normalize a full row; returns a fresh dict.

        Missing nullable columns are filled with ``None``; missing
        non-nullable columns are an error, as are unknown keys.
        """
        out: dict[str, Any] = {}
        for col in self.columns:
            if col.name in row:
                value = row[col.name]
            else:
                value = None
            col.validate(value)
            out[col.name] = value
        unknown = set(row) - set(out)
        if unknown:
            raise SchemaError(
                f"unknown columns {sorted(unknown)} for table {self.name!r}"
            )
        return out

    def validate_assignments(self, assignments: Mapping[str, Any]) -> None:
        """Validate a partial update (column -> new value)."""
        for name, value in assignments.items():
            col = self.column(name)
            if name in self.primary_key:
                raise SchemaError(
                    f"cannot update primary key column {name!r}"
                )
            col.validate(value)

    def primary_key_of(self, row: Mapping[str, Any]) -> tuple:
        """Extract the primary-key tuple from a row."""
        try:
            return tuple(row[c] for c in self.primary_key)
        except KeyError as exc:
            raise SchemaError(
                f"row missing primary key column {exc.args[0]!r} "
                f"for table {self.name!r}"
            ) from exc


def column(name: str, type_: ColumnType | str,
           nullable: bool = False) -> Column:
    """Convenience constructor accepting type names as strings."""
    if isinstance(type_, str):
        type_ = ColumnType(type_)
    return Column(name=name, type=type_, nullable=nullable)


def int_col(name: str, nullable: bool = False) -> Column:
    return Column(name, ColumnType.INT, nullable)


def float_col(name: str, nullable: bool = False) -> Column:
    return Column(name, ColumnType.FLOAT, nullable)


def str_col(name: str, nullable: bool = False) -> Column:
    return Column(name, ColumnType.STR, nullable)


def bool_col(name: str, nullable: bool = False) -> Column:
    return Column(name, ColumnType.BOOL, nullable)


def make_schema(name: str, columns: Iterable[Column],
                primary_key: Iterable[str],
                indexes: Iterable[IndexSpec] = ()) -> TableSchema:
    """Convenience constructor normalizing iterables to tuples."""
    return TableSchema(
        name=name,
        columns=tuple(columns),
        primary_key=tuple(primary_key),
        indexes=tuple(indexes),
    )
