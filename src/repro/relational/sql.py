"""A small SQL dialect for declarative queries within a reactor.

The paper writes reactor procedures in a stored-procedure style with
embedded SQL (``SELECT g_risk, p_exposure INTO ... FROM
settlement_risk``).  This module provides that surface: a hand-written
tokenizer and recursive-descent parser for a practical SQL subset,
compiled onto the predicate/query pipeline and executed through any
object implementing the context's data methods (``select``,
``insert``, ``update_where``, ``delete_where``).

Supported statements::

    SELECT a, b FROM t WHERE x = ? AND y > 3 ORDER BY a DESC LIMIT 5
    SELECT SUM(v) AS total, COUNT(*) AS n FROM t GROUP BY grp
    INSERT INTO t (a, b) VALUES (1, 'x')
    UPDATE t SET a = 4, b = ? WHERE c <= 9
    DELETE FROM t WHERE settled = 'N'

Placeholders (``?``) bind positionally from the ``params`` sequence.
Identifiers are case-insensitive keywords, case-preserving names.

Parsing is two-phase for stored-procedure efficiency: statement text
parses once into a parameterized template (cached by text), and each
execution binds concrete parameters into a fresh statement.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Any, Sequence

from repro.errors import SQLParseError
from repro.relational.predicate import (
    ALWAYS,
    Between,
    Comparison,
    InSet,
    Not,
    Or,
    Predicate,
)
from repro.relational.query import Aggregate, Query

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>-?\d+\.\d+|-?\d+)"
    r"|(?P<string>'(?:[^']|'')*')"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><>|<=|>=|!=|=|<|>)"
    r"|(?P<punct>[(),*?])"
    r")")

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "LIMIT",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "AND",
    "OR", "NOT", "BETWEEN", "IN", "AS", "DESC", "ASC", "NULL",
    "TRUE", "FALSE", "COUNT", "SUM", "MIN", "MAX", "AVG", "DISTINCT",
}

_AGG_KEYWORDS = {"COUNT", "SUM", "MIN", "MAX", "AVG"}


@dataclass(frozen=True)
class Param:
    """A positional ``?`` placeholder inside a parsed template."""

    index: int

    def __repr__(self) -> str:
        return f"?{self.index}"


@dataclass
class Token:
    kind: str  # number | string | name | keyword | op | punct
    value: Any
    position: int


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            if text[position:].strip() == "":
                break
            raise SQLParseError(
                f"unexpected character {text[position]!r} at "
                f"{position}")
        position = match.end()
        if match.lastgroup == "number":
            raw = match.group("number")
            value = float(raw) if "." in raw else int(raw)
            tokens.append(Token("number", value, match.start()))
        elif match.lastgroup == "string":
            raw = match.group("string")[1:-1].replace("''", "'")
            tokens.append(Token("string", raw, match.start()))
        elif match.lastgroup == "name":
            name = match.group("name")
            if name.upper() in _KEYWORDS:
                tokens.append(Token("keyword", name.upper(),
                                    match.start()))
            else:
                tokens.append(Token("name", name, match.start()))
        elif match.lastgroup == "op":
            tokens.append(Token("op", match.group("op"),
                                match.start()))
        else:
            tokens.append(Token("punct", match.group("punct"),
                                match.start()))
    return tokens


# ----------------------------------------------------------------------
# Statement ASTs
# ----------------------------------------------------------------------

@dataclass
class SelectStatement:
    table: str
    columns: list[str] | None  # None = *
    aggregates: dict[str, Aggregate] = field(default_factory=dict)
    where: Predicate = ALWAYS
    group_by: list[str] = field(default_factory=list)
    order_by: list[tuple[str, bool]] = field(default_factory=list)
    limit: int | None = None


@dataclass
class InsertStatement:
    table: str
    columns: list[str]
    values: list[Any]


@dataclass
class UpdateStatement:
    table: str
    assignments: dict[str, Any]
    where: Predicate = ALWAYS


@dataclass
class DeleteStatement:
    table: str
    where: Predicate = ALWAYS


Statement = SelectStatement | InsertStatement | UpdateStatement | \
    DeleteStatement


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0
        self.param_count = 0

    # -- token plumbing -------------------------------------------------

    def peek(self) -> Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise SQLParseError("unexpected end of statement")
        self.index += 1
        return token

    def expect_keyword(self, *keywords: str) -> str:
        token = self.next()
        if token.kind != "keyword" or token.value not in keywords:
            raise SQLParseError(
                f"expected {' or '.join(keywords)}, got "
                f"{token.value!r} at {token.position}")
        return token.value

    def try_keyword(self, *keywords: str) -> str | None:
        token = self.peek()
        if token is not None and token.kind == "keyword" and \
                token.value in keywords:
            self.index += 1
            return token.value
        return None

    def expect_name(self) -> str:
        token = self.next()
        if token.kind != "name":
            raise SQLParseError(
                f"expected identifier, got {token.value!r} at "
                f"{token.position}")
        return token.value

    def expect_punct(self, punct: str) -> None:
        token = self.next()
        if token.kind != "punct" or token.value != punct:
            raise SQLParseError(
                f"expected {punct!r}, got {token.value!r} at "
                f"{token.position}")

    def try_punct(self, punct: str) -> bool:
        token = self.peek()
        if token is not None and token.kind == "punct" and \
                token.value == punct:
            self.index += 1
            return True
        return False

    def literal(self) -> Any:
        token = self.next()
        if token.kind in ("number", "string"):
            return token.value
        if token.kind == "punct" and token.value == "?":
            param = Param(self.param_count)
            self.param_count += 1
            return param
        if token.kind == "keyword":
            if token.value == "NULL":
                return None
            if token.value == "TRUE":
                return True
            if token.value == "FALSE":
                return False
        raise SQLParseError(
            f"expected literal, got {token.value!r} at "
            f"{token.position}")

    # -- predicates ------------------------------------------------------

    def predicate(self) -> Predicate:
        left = self._pred_term()
        while self.try_keyword("OR"):
            left = Or(left, self._pred_term())
        return left

    def _pred_term(self) -> Predicate:
        left = self._pred_factor()
        while self.try_keyword("AND"):
            left = left & self._pred_factor()
        return left

    def _pred_factor(self) -> Predicate:
        if self.try_keyword("NOT"):
            return Not(self._pred_factor())
        if self.try_punct("("):
            inner = self.predicate()
            self.expect_punct(")")
            return inner
        column = self.expect_name()
        if self.try_keyword("BETWEEN"):
            low = self.literal()
            self.expect_keyword("AND")
            high = self.literal()
            return Between(column, low, high)
        if self.try_keyword("IN"):
            self.expect_punct("(")
            values = [self.literal()]
            while self.try_punct(","):
                values.append(self.literal())
            self.expect_punct(")")
            return InSet(column, values)
        token = self.next()
        if token.kind != "op":
            raise SQLParseError(
                f"expected comparison operator, got {token.value!r} "
                f"at {token.position}")
        operator = {"=": "==", "<>": "!="}.get(token.value,
                                               token.value)
        return Comparison(column, operator, self.literal())

    # -- statements -------------------------------------------------------

    def statement(self) -> Statement:
        keyword = self.expect_keyword("SELECT", "INSERT", "UPDATE",
                                      "DELETE")
        if keyword == "SELECT":
            return self._select()
        if keyword == "INSERT":
            return self._insert()
        if keyword == "UPDATE":
            return self._update()
        return self._delete()

    def _select(self) -> SelectStatement:
        columns: list[str] | None = []
        aggregates: dict[str, Aggregate] = {}
        if self.try_punct("*"):
            columns = None
        else:
            while True:
                item_columns, item_agg = self._select_item()
                if item_agg is not None:
                    aggregates.update(item_agg)
                else:
                    assert columns is not None
                    columns.append(item_columns)
                if not self.try_punct(","):
                    break
        self.expect_keyword("FROM")
        statement = SelectStatement(
            table=self.expect_name(),
            columns=columns if not aggregates else (columns or []),
            aggregates=aggregates)
        if self.try_keyword("WHERE"):
            statement.where = self.predicate()
        if self.try_keyword("GROUP"):
            self.expect_keyword("BY")
            statement.group_by.append(self.expect_name())
            while self.try_punct(","):
                statement.group_by.append(self.expect_name())
        if self.try_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                column = self.expect_name()
                descending = bool(self.try_keyword("DESC"))
                if not descending:
                    self.try_keyword("ASC")
                statement.order_by.append((column, descending))
                if not self.try_punct(","):
                    break
        if self.try_keyword("LIMIT"):
            token = self.next()
            if token.kind != "number" or not isinstance(token.value,
                                                        int):
                raise SQLParseError("LIMIT expects an integer")
            statement.limit = token.value
        self._expect_end()
        return statement

    def _select_item(self):
        token = self.peek()
        if token is not None and token.kind == "keyword" and \
                token.value in _AGG_KEYWORDS:
            agg_kind = self.next().value
            self.expect_punct("(")
            distinct = False
            if agg_kind == "COUNT" and self.try_punct("*"):
                column = None
            else:
                distinct = bool(self.try_keyword("DISTINCT"))
                column = self.expect_name()
            self.expect_punct(")")
            if self.try_keyword("AS"):
                label = self.expect_name()
            else:
                label = f"{agg_kind.lower()}" + \
                    (f"_{column}" if column else "")
            if agg_kind == "COUNT" and column is None:
                aggregate = Aggregate("count")
            elif agg_kind == "COUNT" and distinct:
                aggregate = Aggregate("count_distinct", column)
            elif agg_kind == "COUNT":
                aggregate = Aggregate("count")
            else:
                aggregate = Aggregate(agg_kind.lower(), column)
            return None, {label: aggregate}
        return self.expect_name(), None

    def _insert(self) -> InsertStatement:
        self.expect_keyword("INTO")
        table = self.expect_name()
        self.expect_punct("(")
        columns = [self.expect_name()]
        while self.try_punct(","):
            columns.append(self.expect_name())
        self.expect_punct(")")
        self.expect_keyword("VALUES")
        self.expect_punct("(")
        values = [self.literal()]
        while self.try_punct(","):
            values.append(self.literal())
        self.expect_punct(")")
        if len(values) != len(columns):
            raise SQLParseError(
                f"{len(columns)} columns but {len(values)} values")
        self._expect_end()
        return InsertStatement(table, columns, values)

    def _update(self) -> UpdateStatement:
        table = self.expect_name()
        self.expect_keyword("SET")
        assignments: dict[str, Any] = {}
        while True:
            column = self.expect_name()
            token = self.next()
            if token.kind != "op" or token.value != "=":
                raise SQLParseError("expected = in SET clause")
            assignments[column] = self.literal()
            if not self.try_punct(","):
                break
        statement = UpdateStatement(table, assignments)
        if self.try_keyword("WHERE"):
            statement.where = self.predicate()
        self._expect_end()
        return statement

    def _delete(self) -> DeleteStatement:
        self.expect_keyword("FROM")
        statement = DeleteStatement(self.expect_name())
        if self.try_keyword("WHERE"):
            statement.where = self.predicate()
        self._expect_end()
        return statement

    def _expect_end(self) -> None:
        token = self.peek()
        if token is not None:
            raise SQLParseError(
                f"unexpected trailing input {token.value!r} at "
                f"{token.position}")


# ----------------------------------------------------------------------
# Parameter binding over parsed templates
# ----------------------------------------------------------------------

def _bind_value(value: Any, params: Sequence[Any]) -> Any:
    if isinstance(value, Param):
        return params[value.index]
    return value


def _bind_predicate(predicate: Predicate,
                    params: Sequence[Any]) -> Predicate:
    from repro.relational.predicate import And

    if isinstance(predicate, Comparison):
        return Comparison(predicate.column, predicate.op,
                          _bind_value(predicate.value, params))
    if isinstance(predicate, Between):
        return Between(predicate.column,
                       _bind_value(predicate.low, params),
                       _bind_value(predicate.high, params))
    if isinstance(predicate, InSet):
        return InSet(predicate.column,
                     [_bind_value(v, params)
                      for v in predicate.values])
    if isinstance(predicate, Not):
        return Not(_bind_predicate(predicate.inner, params))
    if isinstance(predicate, And):
        return And(*(_bind_predicate(p, params)
                     for p in predicate.parts))
    if isinstance(predicate, Or):
        return Or(*(_bind_predicate(p, params)
                    for p in predicate.parts))
    return predicate  # TruePredicate / Lambda


def bind(statement: Statement, params: Sequence[Any],
         param_count: int) -> Statement:
    """Bind positional parameters into a parsed template.

    Returns a fresh statement; the (cached) template is not mutated.
    """
    if len(params) != param_count:
        raise SQLParseError(
            f"statement has {param_count} placeholder(s) but "
            f"{len(params)} parameter(s) were supplied")
    if isinstance(statement, SelectStatement):
        return replace(statement,
                       where=_bind_predicate(statement.where, params))
    if isinstance(statement, InsertStatement):
        return replace(statement,
                       values=[_bind_value(v, params)
                               for v in statement.values])
    if isinstance(statement, UpdateStatement):
        return replace(
            statement,
            assignments={k: _bind_value(v, params)
                         for k, v in statement.assignments.items()},
            where=_bind_predicate(statement.where, params))
    return replace(statement,
                   where=_bind_predicate(statement.where, params))


@lru_cache(maxsize=512)
def parse_template(text: str) -> tuple[Statement, int]:
    """Parse statement text into a reusable parameterized template.

    Cached by text: stored procedures re-executing the same statement
    skip tokenization and parsing entirely.
    """
    parser = _Parser(tokenize(text))
    statement = parser.statement()
    return statement, parser.param_count


def parse(text: str, params: Sequence[Any] = ()) -> Statement:
    """Parse one SQL statement, binding ``?`` placeholders."""
    template, param_count = parse_template(text)
    return bind(template, params, param_count)


def execute(ctx: Any, text: str, params: Sequence[Any] = ()) -> Any:
    """Parse and execute a statement against a reactor context.

    Returns SELECT rows as a list of dicts; INSERT returns ``None``;
    UPDATE/DELETE return the number of affected rows.  Statement
    templates are cached by text, so repeated execution of the same
    statement (the stored-procedure pattern) parses once.
    """
    statement = parse(text, params)
    if isinstance(statement, SelectStatement):
        query = Query().where(statement.where)
        if statement.aggregates:
            query.aggregate(**statement.aggregates)
            if statement.group_by:
                query.group_by(*statement.group_by)
        elif statement.columns is not None:
            query.project(*statement.columns)
        for column, descending in statement.order_by:
            query.order_by(column, descending=descending)
        if statement.limit is not None:
            query.limit(statement.limit)
        rows = ctx.select(statement.table)
        return query.run(rows)
    if isinstance(statement, InsertStatement):
        ctx.insert(statement.table,
                   dict(zip(statement.columns, statement.values)))
        return None
    if isinstance(statement, UpdateStatement):
        return ctx.update_where(statement.table, statement.where,
                                statement.assignments)
    return ctx.delete_where(statement.table, statement.where)
