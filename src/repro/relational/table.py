"""In-memory tables of versioned records.

A :class:`Table` holds the *committed* state of one relation inside one
reactor: a primary-key dict of :class:`VersionedRecord` plus secondary
indexes.  All mutation goes through the ``install_*`` methods, which the
concurrency-control layer calls during the write phase of a commit —
application code never touches tables directly (it goes through the
transactional record manager, which overlays uncommitted writes).

The table keeps a per-table primary index structure version and
per-secondary-index versions; range and predicate scans validate these
at commit time for conservative phantom protection.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.errors import DuplicateKeyError, RecordNotFound
from repro.relational.index import HashIndex, OrderedIndex, build_index
from repro.relational.schema import TableSchema
from repro.storage.record import VersionedRecord


class Table:
    """Committed storage for one relation of one reactor."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        #: Name of the reactor owning this table (set at reactor
        #: construction; used by durability/recovery addressing).
        self.owner: str | None = None
        self._records: dict[tuple, VersionedRecord] = {}
        #: Bumped on insert/delete; conservative phantom guard for full
        #: and predicate scans over the primary index.
        self.structure_version = 0
        self.indexes: dict[str, HashIndex | OrderedIndex] = {
            spec.name: build_index(spec) for spec in schema.indexes
        }

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # Committed-state reads (used by the record manager under OCC).
    # ------------------------------------------------------------------

    def get_record(self, pk: tuple) -> VersionedRecord | None:
        """The live record for a primary key, or ``None``."""
        record = self._records.get(pk)
        if record is None or record.deleted:
            return None
        return record

    def iter_records(self) -> Iterator[VersionedRecord]:
        """All live records in primary-key order (deterministic scans)."""
        for pk in sorted(self._records):
            record = self._records[pk]
            if not record.deleted:
                yield record

    def index(self, name: str) -> HashIndex | OrderedIndex:
        try:
            return self.indexes[name]
        except KeyError:
            raise RecordNotFound(
                f"no index {name!r} on table {self.name!r}"
            ) from None

    def records_for_pks(self, pks: Any) -> Iterator[VersionedRecord]:
        """Live records for an iterable of primary keys (sorted)."""
        for pk in sorted(pks):
            record = self._records.get(pk)
            if record is not None and not record.deleted:
                yield record

    # ------------------------------------------------------------------
    # Write-phase installation (called by OCC at commit only).
    # ------------------------------------------------------------------

    def install_insert(self, row: Mapping[str, Any],
                       tid: int) -> VersionedRecord:
        """Create a new committed record (or revive a tombstone).

        All-or-nothing: uniqueness (primary key and unique secondary
        indexes) is validated before any structure is mutated, so a
        refused insert leaves the table exactly as it was.
        """
        validated = self.schema.validate_row(row)
        pk = self.schema.primary_key_of(validated)
        existing = self._records.get(pk)
        if existing is not None and not existing.deleted:
            raise DuplicateKeyError(
                f"duplicate primary key {pk!r} in table {self.name!r}"
            )
        for index in self.indexes.values():
            index.check_insert(index.key_of(validated))
        if existing is not None:
            existing.install(validated, tid)
            record = existing
        else:
            record = VersionedRecord(pk, validated, tid)
            self._records[pk] = record
        self.structure_version += 1
        for index in self.indexes.values():
            index.insert(index.key_of(validated), pk)
        return record

    def install_update(self, record: VersionedRecord,
                       new_value: Mapping[str, Any], tid: int) -> None:
        """Replace a record's committed image, maintaining indexes.

        All-or-nothing, like :meth:`install_insert`: unique-index
        violations are detected before any index is touched.
        """
        validated = self.schema.validate_row(new_value)
        rekeyed = []
        for index in self.indexes.values():
            old_key = index.key_of(record.value)
            new_key = index.key_of(validated)
            if old_key != new_key:
                index.check_insert(new_key)
                rekeyed.append((index, old_key, new_key))
        for index, old_key, new_key in rekeyed:
            index.remove(old_key, record.key)
            index.insert(new_key, record.key)
        record.install(validated, tid)

    def install_delete(self, record: VersionedRecord, tid: int) -> None:
        """Tombstone a record and remove it from indexes."""
        for index in self.indexes.values():
            index.remove(index.key_of(record.value), record.key)
        record.mark_deleted(tid)
        self.structure_version += 1

    def ensure_placeholder(self, pk: tuple) -> VersionedRecord:
        """A lockable tombstone for insert validation.

        Inserting transactions lock a placeholder during 2PC so that two
        concurrent inserters of the same key cannot both pass validation.
        The placeholder is invisible to readers (``deleted`` is set) and
        is revived by :meth:`install_insert` on commit.
        """
        record = self._records.get(pk)
        if record is None:
            record = VersionedRecord(pk, {}, 0)
            record.deleted = True
            self._records[pk] = record
        return record

    def discard_placeholder(self, record: VersionedRecord) -> None:
        """Drop a never-revived insert placeholder (abort cleanup).

        Only a pristine placeholder (still a tombstone, TID 0 — never
        installed over, never a committed row) is removed; anything
        else is live state or a real tombstone and stays.
        """
        existing = self._records.get(record.key)
        if existing is record and record.deleted and record.tid == 0:
            del self._records[record.key]

    # ------------------------------------------------------------------
    # Non-transactional bulk loading (benchmark setup only).
    # ------------------------------------------------------------------

    def load_row(self, row: Mapping[str, Any], tid: int = 0) -> None:
        """Insert without concurrency control; for initial data loads."""
        self.install_insert(row, tid)

    def rows(self) -> list[dict[str, Any]]:
        """Snapshot of all committed rows (testing/inspection)."""
        return [r.snapshot() for r in self.iter_records()]
