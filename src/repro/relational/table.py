"""In-memory tables of versioned records.

A :class:`Table` holds the *committed* state of one relation inside one
reactor: a pluggable :class:`~repro.storage.store.Store` of per-key
:class:`~repro.storage.record.VersionedRecord` version chains plus
secondary indexes.  All mutation goes through the ``install_*``
methods, which the concurrency-control layer calls during the write
phase of a commit — application code never touches tables directly (it
goes through the transactional record manager, which overlays
uncommitted writes).

Multi-versioning: when the owning database has snapshot readers in
flight (``versioning`` — the per-database
:class:`~repro.storage.store.StorageCoordinator` — reports a GC
watermark), installs push superseded images onto the version chains
instead of discarding them, and the snapshot read paths
(:meth:`read_as_of` / :meth:`rows_as_of` / :meth:`all_records`)
resolve visibility against a pinned snapshot TID.  Without snapshot
readers no history is retained.

The table keeps a per-table primary index structure version and
per-secondary-index versions; range and predicate scans validate these
at commit time for conservative phantom protection.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.errors import DuplicateKeyError, RecordNotFound
from repro.relational.index import HashIndex, OrderedIndex, build_index
from repro.relational.schema import TableSchema
from repro.storage.record import VersionedRecord
from repro.storage.store import create_store


class Table:
    """Committed storage for one relation of one reactor."""

    __slots__ = ("schema", "owner", "store", "versioning",
                 "versioning_scope", "structure_version", "indexes")

    def __init__(self, schema: TableSchema,
                 store_kind: str = "versioned") -> None:
        self.schema = schema
        #: Name of the reactor owning this table (set at reactor
        #: construction; used by durability/recovery addressing).
        self.owner: str | None = None
        #: The pluggable committed record map (per-key version chains).
        self.store = create_store(store_kind)
        #: The owning database's storage coordinator, wired at
        #: bootstrap/adoption; ``None`` for standalone tables (no
        #: snapshot readers, no version bookkeeping).
        self.versioning: Any = None
        #: Which pins can read this table (see
        #: :meth:`~repro.storage.store.StorageCoordinator.adopt`):
        #: ``None`` on primaries, the replica container on shadows.
        self.versioning_scope: Any = None
        #: Bumped on insert/delete; conservative phantom guard for full
        #: and predicate scans over the primary index.
        self.structure_version = 0
        self.indexes: dict[str, HashIndex | OrderedIndex] = {
            spec.name: build_index(spec) for spec in schema.indexes
        }

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self.store)

    def _keep_watermark(self) -> int | None:
        """The GC watermark installs retain history down to (``None``
        when no snapshot reader is in flight)."""
        if self.versioning is None:
            return None
        return self.versioning.keep_watermark(self.versioning_scope)

    def _note_versions(self, record: VersionedRecord, created: int,
                       pruned: int) -> None:
        if created:
            self.store.note_chained(record.key)
        if self.versioning is not None:
            self.versioning.note_versions(created, pruned)

    # ------------------------------------------------------------------
    # Committed-state reads (used by the record manager under OCC).
    # ------------------------------------------------------------------

    def get_record(self, pk: tuple) -> VersionedRecord | None:
        """The live record for a primary key, or ``None``."""
        return self.store.get(pk)

    def peek_record(self, pk: tuple) -> VersionedRecord | None:
        """The record for a primary key *including* tombstoned heads
        (snapshot readers resolve visibility themselves)."""
        return self.store.peek(pk)

    def iter_records(self) -> Iterator[VersionedRecord]:
        """All live records in primary-key order (deterministic scans)."""
        return self.store.iter_live()

    def all_records(self) -> Iterator[VersionedRecord]:
        """All records — live *and* tombstoned — in primary-key order.

        Snapshot scans iterate this: a key deleted after a snapshot was
        pinned is invisible to current readers but still resolves
        through its version chain.
        """
        return self.store.iter_all()

    def index(self, name: str) -> HashIndex | OrderedIndex:
        try:
            return self.indexes[name]
        except KeyError:
            raise RecordNotFound(
                f"no index {name!r} on table {self.name!r}"
            ) from None

    def records_for_pks(self, pks: Any) -> list[VersionedRecord]:
        """Live records for an iterable of primary keys (sorted)."""
        records = self.store.record_map()
        if records is None:
            get = self.store.get
            return [record for pk in sorted(pks)
                    if (record := get(pk)) is not None]
        get = records.get
        return [record for pk in sorted(pks)
                if (record := get(pk)) is not None
                and not record.deleted]

    # ------------------------------------------------------------------
    # Snapshot reads (the multi-version visibility surface).
    # ------------------------------------------------------------------

    def read_as_of(self, pk: tuple, as_of_tid: int) -> dict[str, Any] | None:
        """The row image of ``pk`` visible at snapshot ``as_of_tid``."""
        return self.version_at(pk, as_of_tid)[0]

    def version_at(self, pk: tuple,
                   as_of_tid: int) -> tuple[dict[str, Any] | None, int]:
        """The snapshot point-read rule — one definition for every
        caller: ``(visible image, resolving version TID)``.  The
        runtime's snapshot sessions and the inspection surface both
        route through here."""
        return self.store.version_at(pk, as_of_tid)

    def rows_as_of(self, as_of_tid: int) -> list[dict[str, Any]]:
        """Every row visible at snapshot ``as_of_tid``, in primary-key
        order — the consistent version cut migration copies read."""
        out = []
        for record in self.store.iter_all():
            image = record.visible_at(as_of_tid)
            if image is not None:
                out.append(image)
        return out

    def live_version_count(self) -> int:
        """Superseded versions retained across this table's chains."""
        return self.store.live_version_count()

    def gc_versions(self, watermark: int | None) -> int:
        """Prune all chains below ``watermark`` (explicit GC sweep)."""
        dropped = self.store.gc(watermark)
        if dropped and self.versioning is not None:
            self.versioning.note_versions(0, dropped)
        return dropped

    # ------------------------------------------------------------------
    # Write-phase installation (called by the CC layer at commit only).
    # ------------------------------------------------------------------

    def install_insert(self, row: Mapping[str, Any],
                       tid: int) -> VersionedRecord:
        """Create a new committed record (or revive a tombstone).

        All-or-nothing: uniqueness (primary key and unique secondary
        indexes) is validated before any structure is mutated, so a
        refused insert leaves the table exactly as it was.
        """
        validated = self.schema.validate_row(row)
        pk = self.schema.primary_key_of(validated)
        existing = self.store.peek(pk)
        if existing is not None and not existing.deleted:
            raise DuplicateKeyError(
                f"duplicate primary key {pk!r} in table {self.name!r}"
            )
        for index in self.indexes.values():
            index.check_insert(index.key_of(validated))
        if existing is not None:
            created, pruned = existing.install(
                validated, tid, self._keep_watermark())
            self._note_versions(existing, created, pruned)
            record = existing
        else:
            record = VersionedRecord(pk, validated, tid)
            self.store.put(pk, record)
        self.structure_version += 1
        for index in self.indexes.values():
            index.insert(index.key_of(validated), pk)
        return record

    def install_update(self, record: VersionedRecord,
                       new_value: Mapping[str, Any], tid: int) -> None:
        """Install a new committed version of a record, maintaining
        indexes.

        All-or-nothing, like :meth:`install_insert`: unique-index
        violations are detected before any index is touched.
        """
        validated = self.schema.validate_row(new_value)
        rekeyed = []
        for index in self.indexes.values():
            old_key = index.key_of(record.value)
            new_key = index.key_of(validated)
            if old_key != new_key:
                index.check_insert(new_key)
                rekeyed.append((index, old_key, new_key))
        for index, old_key, new_key in rekeyed:
            index.remove(old_key, record.key)
            index.insert(new_key, record.key)
        created, pruned = record.install(validated, tid,
                                         self._keep_watermark())
        self._note_versions(record, created, pruned)

    def install_delete(self, record: VersionedRecord, tid: int) -> None:
        """Tombstone a record and remove it from indexes."""
        for index in self.indexes.values():
            index.remove(index.key_of(record.value), record.key)
        created, pruned = record.mark_deleted(tid, self._keep_watermark())
        self._note_versions(record, created, pruned)
        self.structure_version += 1

    def ensure_placeholder(self, pk: tuple) -> VersionedRecord:
        """A lockable tombstone for insert validation.

        Inserting transactions lock a placeholder during 2PC so that two
        concurrent inserters of the same key cannot both pass validation.
        The placeholder is invisible to readers (``deleted`` is set) and
        is revived by :meth:`install_insert` on commit.
        """
        record = self.store.peek(pk)
        if record is None:
            record = VersionedRecord(pk, {}, 0)
            record.deleted = True
            self.store.put(pk, record)
        return record

    def discard_placeholder(self, record: VersionedRecord) -> None:
        """Drop a never-revived insert placeholder (abort cleanup).

        Only a pristine placeholder (still a tombstone, TID 0 — never
        installed over, never a committed row) is removed; anything
        else is live state or a real tombstone and stays.
        """
        existing = self.store.peek(record.key)
        if existing is record and record.deleted and record.tid == 0:
            self.store.pop(record.key)

    # ------------------------------------------------------------------
    # Non-transactional bulk loading (benchmark setup only).
    # ------------------------------------------------------------------

    def load_row(self, row: Mapping[str, Any], tid: int = 0) -> None:
        """Insert without concurrency control; for initial data loads."""
        self.install_insert(row, tid)

    def rows(self) -> list[dict[str, Any]]:
        """Snapshot of all committed rows (testing/inspection)."""
        return [r.snapshot() for r in self.iter_records()]
