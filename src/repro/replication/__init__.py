"""Replication: WAL log shipping, failover, read-replica routing.

The availability dimension of the paper's deployment-time
virtualization claim: a :class:`ReplicationConfig` inside the
deployment decides whether each container ships its redo log to
replica containers (``sync`` commit acks or ``async`` bounded lag),
whether read-only root transactions are served from replicas, and —
via :class:`ReplicationManager` — how a replica is promoted to primary
when its container fails.  Application code never changes.

Public exports: :class:`ReplicationConfig` (with
:data:`NO_REPLICATION` and the ``SYNC`` / ``ASYNC`` / ``NONE`` mode
constants), :class:`ReplicationManager` with its
:class:`ReplicationStats` / :class:`FailoverEvent`, and
:class:`ReplicaContainer` with the ``ROLE_PRIMARY`` /
``ROLE_REPLICA`` role markers.

Only the config is imported eagerly: :mod:`repro.core.deployment`
imports this package while :mod:`repro.core.database` (which the
manager needs through the durability layer) is still initializing, so
the manager/replica symbols resolve lazily on first attribute access.
"""

from repro.replication.config import (
    ASYNC,
    NO_REPLICATION,
    NONE,
    REPLICATION_MODES,
    SYNC,
    ReplicationConfig,
)

__all__ = [
    "ReplicationConfig",
    "ReplicationManager",
    "ReplicationStats",
    "ReplicaContainer",
    "FailoverEvent",
    "REPLICATION_MODES",
    "NO_REPLICATION",
    "SYNC",
    "ASYNC",
    "NONE",
    "ROLE_PRIMARY",
    "ROLE_REPLICA",
]

_LAZY = {
    "ReplicationManager": "repro.replication.manager",
    "ReplicationStats": "repro.replication.manager",
    "FailoverEvent": "repro.replication.manager",
    "ReplicaContainer": "repro.replication.replica",
    "ROLE_PRIMARY": "repro.replication.replica",
    "ROLE_REPLICA": "repro.replication.replica",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
