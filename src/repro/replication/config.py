"""Replication configuration: availability as a deployment-time knob.

The paper's central claim — database architecture is a deployment
choice, not an application change — extends to replication exactly as
it did to concurrency control (PR 1): a :class:`ReplicationConfig`
inside the :class:`~repro.core.deployment.DeploymentConfig` decides,
per deployment, whether each container ships its redo log to replica
containers, whether commits wait for replica acknowledgement, and
whether read-only root transactions may be served from replicas.
Application code (reactor types and procedures) never changes.

Modes:

* ``"none"`` — no replication (the single-copy default);
* ``"sync"`` — a commit completes only after every replica of every
  participant container has applied and acknowledged its redo record
  (zero committed-transaction loss on failover, priced in virtual time
  via the cost model's ship/apply/ack parameters);
* ``"async"`` — commits complete immediately; redo records apply on
  replicas in the background after a bounded lag (``async_lag_us``),
  so failover may lose a bounded suffix of commits — including one
  container's half of a cross-container transaction (the inherent
  atomicity price of asynchronous replication; the formal audit
  reports such breaks per failover).  Sync mode has neither loss: the
  kill drains the ship channel, so an installed commit either reaches
  the replicas of every participant or was never reported committed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import DeploymentError

SYNC = "sync"
ASYNC = "async"
NONE = "none"

REPLICATION_MODES = (SYNC, ASYNC, NONE)


@dataclass(frozen=True)
class ReplicationConfig:
    """Per-deployment replication choice.

    ``replicas_per_container`` replicas are built for *every* container
    of the deployment; ``mode`` selects commit semantics; when
    ``read_from_replicas`` is set, root transactions marked read-only
    are routed round-robin to a replica of their home container
    (bounded-staleness reads on separate simulated cores).
    """

    replicas_per_container: int = 0
    mode: str = NONE
    read_from_replicas: bool = False
    #: Background apply delay bound for ``async`` mode, in virtual
    #: microseconds (applies land at ship + lag + apply cost).
    async_lag_us: float = 200.0

    def __post_init__(self) -> None:
        if self.replicas_per_container < 0:
            raise DeploymentError(
                "replicas_per_container must be >= 0"
            )
        if self.mode not in REPLICATION_MODES:
            raise DeploymentError(
                f"unknown replication mode {self.mode!r}; expected one "
                f"of {', '.join(REPLICATION_MODES)}"
            )
        if self.mode != NONE and self.replicas_per_container == 0:
            raise DeploymentError(
                f"replication mode {self.mode!r} needs "
                "replicas_per_container >= 1"
            )
        if self.mode == NONE and self.replicas_per_container > 0:
            raise DeploymentError(
                f"replicas_per_container="
                f"{self.replicas_per_container} with mode 'none' "
                "would silently build no replicas; pick 'sync' or "
                "'async'"
            )
        if self.async_lag_us < 0:
            raise DeploymentError("async_lag_us must be >= 0")
        if self.read_from_replicas and not self.enabled:
            raise DeploymentError(
                "read_from_replicas requires replication to be enabled "
                "(replicas_per_container >= 1 and mode != 'none')"
            )

    @property
    def enabled(self) -> bool:
        # Validation guarantees replicas and mode agree, so either
        # field decides.
        return self.replicas_per_container > 0

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "replicas_per_container": self.replicas_per_container,
            "mode": self.mode,
            "read_from_replicas": self.read_from_replicas,
            "async_lag_us": self.async_lag_us,
        }

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "ReplicationConfig":
        known = {"replicas_per_container", "mode", "read_from_replicas",
                 "async_lag_us"}
        for key in data:
            if key not in known:
                raise DeploymentError(
                    f"unknown replication key {key!r}; expected one of "
                    f"{', '.join(sorted(known))}"
                )
        return ReplicationConfig(
            replicas_per_container=int(
                data.get("replicas_per_container", 0)),
            mode=data.get("mode", NONE),
            read_from_replicas=bool(
                data.get("read_from_replicas", False)),
            async_lag_us=float(data.get("async_lag_us", 200.0)),
        )


#: The single-copy default every deployment starts from.
NO_REPLICATION = ReplicationConfig()
