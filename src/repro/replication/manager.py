"""The replication manager: log shipping, acks, failover, read routing.

Wires the pieces together for one database:

* **shipping** — every container's redo log (durability is enabled
  implicitly) gets a listener; each appended :class:`RedoRecord` is
  recorded in the per-container ``shipped`` sequence (the reference
  commit order the formal audit certifies against) and scheduled to
  apply on every replica after the simulated ship latency;
* **ack accounting** — for ``sync`` mode the executor's commit path
  asks :meth:`on_commit_installed` for the acknowledgement delay and
  defers root completion (releasing its core) until every replica of
  every participant container acked;
* **read-replica routing** — :meth:`route_read` hands read-only root
  transactions to a replica's shadow reactor, round-robin;
* **failover** — :meth:`kill_primary` fails a container (queued and
  in-flight transactions abort, none of them reported committed) and
  :meth:`promote` re-registers the most advanced replica as the new
  primary, seeding its redo log with the applied prefix and catching
  up the remaining replicas.

Replica executors model *other machines*: their simulated cores do not
count against the primary machine's hardware-thread budget, which is
exactly why routing reads to replicas adds capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.concurrency.base import create_cc_scheme
from repro.core.reactor import Reactor
from repro.durability.wal import RedoLog, RedoRecord
from repro.errors import ReplicationError, TransactionAbort
from repro.replication.config import ReplicationConfig
from repro.replication.replica import ROLE_PRIMARY, ReplicaContainer
from repro.telemetry.spans import TRACK_REPLICATION


@dataclass
class FailoverEvent:
    """One promotion: which replica took over which container when."""

    container_id: int
    replica_id: int
    at_us: float
    applied_records: int
    #: Acked-but-not-applied commit TIDs at promotion.  Sync mode
    #: guarantees this is empty (zero committed-transaction loss).
    lost_acked: list[int] = field(default_factory=list)
    #: Shipped-but-not-applied records at promotion: the bounded async
    #: lag-window loss.  Always 0 under sync — the kill drains the
    #: ship channel into the replicas before they disconnect.
    lost_records: int = 0
    #: Commit TIDs of lost records that survive in *another*
    #: container's shipped order — cross-container transactions whose
    #: atomicity the failover broke (async only; empty under sync).
    atomicity_breaks: list[int] = field(default_factory=list)


@dataclass
class ReplicationStats:
    """Counters the benchmark reports and ``abort_counts()`` exposes."""

    records_shipped: int = 0
    records_applied: int = 0
    acked_records: int = 0
    sync_commit_waits: int = 0
    sync_ack_wait_us: float = 0.0
    #: Lag is sampled only on channel-shipped applies — kill-drain and
    #: promotion catch-up applies have no meaningful ship latency and
    #: must not deflate the average.
    lag_samples: int = 0
    lag_us_sum: float = 0.0
    max_lag_us: float = 0.0
    reads_routed_to_replicas: int = 0
    #: Commits/roots aborted because a participant container failed.
    failover_aborts: int = 0
    failovers: list[FailoverEvent] = field(default_factory=list)

    @property
    def avg_lag_us(self) -> float:
        if not self.lag_samples:
            return 0.0
        return self.lag_us_sum / self.lag_samples


class ReplicationManager:
    """Owns the replicas of one database and drives log shipping."""

    def __init__(self, database: Any, config: ReplicationConfig) -> None:
        if not config.enabled:
            raise ReplicationError(
                "ReplicationManager needs an enabled ReplicationConfig")
        self.database = database
        self.config = config
        self.stats = ReplicationStats()
        #: container id -> replicas still in the "replica" role.
        self.replicas: dict[int, list[ReplicaContainer]] = {}
        #: container id -> full shipped record sequence (the primary's
        #: commit order; survives checkpoint log truncation).
        self.shipped: dict[int, list[RedoRecord]] = {}
        #: container id -> commit TIDs acknowledged by all replicas
        #: (sync mode only; the zero-loss set the audit checks).
        self.acked_tids: dict[int, set[int]] = {}
        #: Records appended during the install phase of the commit
        #: currently executing (drained by on_commit_installed).
        self._inflight: list[tuple[int, RedoRecord]] = []
        #: container id -> shipping epoch; a kill bumps it, so apply
        #: and ack events scheduled against the dead primary are
        #: dropped when they fire (the replica "disconnected").
        self.ship_epoch: dict[int, int] = {}
        #: container id -> virtual time of the last scheduled apply:
        #: the ship channel is FIFO, so a small record shipped after a
        #: large one must not overtake it (applies would otherwise
        #: land out of commit order and break prefix consistency).
        self._pipe: dict[int, float] = {}
        #: container id -> (reactor, table) -> bulk-loaded base rows
        #: (the replay baseline of the formal replica audit).
        self.base_rows: dict[int, dict[tuple[str, str],
                                       list[dict[str, Any]]]] = {}
        self._read_route: dict[int, int] = {}
        self._next_replica_id = 0
        #: Deliberate-bug toggle (chaos self-test only): silently drop
        #: one shipped record per container mid-stream — a lost-update
        #: bug the replica prefix-consistency certificate must catch.
        self.chaos_drop_ship = False
        self._chaos_dropped: dict[int, bool] = {}

        # Deferred: durability.recovery imports core.database, which
        # builds this manager — importing it at module scope would be
        # circular.
        from repro.durability.recovery import enable_durability

        self.durability = enable_durability(database)
        telemetry = getattr(database, "telemetry", None)
        self._telemetry = telemetry
        self._lag_hist = (telemetry.histogram("replication_lag_us")
                          if telemetry is not None else None)
        if telemetry is not None:
            telemetry.register_replication(self)
        self._build_replicas()

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------

    def _build_replicas(self) -> None:
        database = self.database
        deployment = database.deployment
        core_id = database.first_worker_core
        for cid, container in enumerate(database.containers):
            self.shipped[cid] = []
            self.acked_tids[cid] = set()
            self.replicas[cid] = []
            self.ship_epoch[cid] = 0
            self._pipe[cid] = 0.0
            self.base_rows[cid] = {}
            self._read_route[cid] = 0
            log = self.durability.logs[cid]
            log.listener = self._listener_for(cid)
            spec = deployment.containers[cid]
            primaries = [r for r in database._reactors.values()
                         if r.container is container]
            for __ in range(self.config.replicas_per_container):
                concurrency = create_cc_scheme(
                    deployment.cc_scheme, cid, database.epochs)
                replica = ReplicaContainer(
                    self._next_replica_id, container, database,
                    concurrency)
                self._next_replica_id += 1
                for ___ in range(spec.executors):
                    replica.add_executor(core_id, spec.mpl)
                    core_id += 1
                for reactor in primaries:
                    replica.add_shadow(reactor,
                                       pin=deployment.pin_reactors)
                self.replicas[cid].append(replica)
        database.first_worker_core = core_id

    def _listener_for(self, cid: int):
        def on_append(record: RedoRecord) -> None:
            self.shipped[cid].append(record)
            self.stats.records_shipped += 1
            if self.replicas.get(cid):
                self._inflight.append((cid, record))
        return on_append

    # ------------------------------------------------------------------
    # Shipping and ack accounting (called from the executor commit path)
    # ------------------------------------------------------------------

    def on_commit_installed(self) -> float:
        """Ship the records the just-installed commit appended; return
        the sync-ack delay the executor must wait before reporting
        completion (0.0 in async mode or for read-only commits)."""
        if not self._inflight:
            return 0.0
        inflight, self._inflight = self._inflight, []
        scheduler = self.database.scheduler
        costs = self.database.costs
        sync = self.config.mode == "sync"
        commit_time = scheduler.now
        ack_delay = 0.0
        for cid, record in inflight:
            epoch = self.ship_epoch[cid]
            if self.chaos_drop_ship and \
                    not self._chaos_dropped.get(cid) and \
                    len(self.shipped[cid]) >= 3:
                # Bug toggle: lose this record on the wire (it stays
                # in ``shipped``, the reference order, so the replica
                # prefix check sees the hole once a later record
                # lands).
                self._chaos_dropped[cid] = True
                continue
            apply_delay = (costs.repl_ship_delay
                           + costs.repl_apply_per_write
                           * len(record.entries))
            if not sync:
                apply_delay += self.config.async_lag_us
            # FIFO channel: never overtake an earlier ship (equal
            # times keep insertion order in the scheduler).
            apply_at = max(commit_time + apply_delay, self._pipe[cid])
            self._pipe[cid] = apply_at
            for replica in self.replicas[cid]:
                scheduler.at(apply_at, self._apply, cid, epoch,
                             replica, record, commit_time)
            if sync:
                ack_at = apply_at + costs.repl_ack_delay
                ack_delay = max(ack_delay, ack_at - commit_time)
                scheduler.at(ack_at, self._record_ack, cid, epoch,
                             record.commit_tid)
        if sync and ack_delay > 0.0:
            self.stats.sync_commit_waits += 1
            self.stats.sync_ack_wait_us += ack_delay
        return ack_delay

    def _apply(self, cid: int, epoch: int, replica: ReplicaContainer,
               record: RedoRecord, commit_time: float) -> None:
        if epoch != self.ship_epoch[cid]:
            # Shipped by a primary that has since failed: the replica
            # is disconnected from it; promotion catch-up (or the new
            # primary's own shipping) is the only legitimate source.
            return
        replica.apply_record(record)
        lag = self.database.scheduler.now - commit_time
        self.stats.records_applied += 1
        self.stats.lag_samples += 1
        self.stats.lag_us_sum += lag
        if lag > self.stats.max_lag_us:
            self.stats.max_lag_us = lag
        if self._lag_hist is not None:
            self._lag_hist.observe(lag)
        telemetry = self._telemetry
        if telemetry is not None and telemetry.system_tracing:
            # Ship -> apply as one span on the replication track, one
            # per (record, replica); the ack ride-along is the
            # executor-side replication:ack_wait span.
            telemetry.system_span(
                "rep:ship_apply", TRACK_REPLICATION,
                replica.replica_id, commit_time,
                self.database.scheduler.now,
                {"container": cid, "tid": record.commit_tid,
                 "lag_us": round(lag, 3)})

    def _record_ack(self, cid: int, epoch: int,
                    commit_tid: int) -> None:
        if epoch != self.ship_epoch[cid]:
            return
        self.acked_tids[cid].add(commit_tid)
        self.stats.acked_records += 1

    def on_bulk_load(self, reactor_name: str, table_name: str,
                     rows: list[dict[str, Any]]) -> None:
        """Mirror a non-transactional bulk load to every replica of the
        loaded reactor's container (loads bypass the redo log)."""
        reactor = self.database.reactor(reactor_name)
        cid = reactor.container.container_id
        base = self.base_rows[cid].setdefault(
            (reactor_name, table_name), [])
        # Callers pass fresh row dicts and tables never alias caller
        # dicts (install copies), so the audit baseline can keep the
        # rows by reference instead of re-copying the whole dataset.
        base.extend(rows)
        for replica in self.replicas.get(cid, []):
            replica.mirror_load(reactor_name, table_name, rows)

    # ------------------------------------------------------------------
    # Online migration (called by repro.migration at the routing flip)
    # ------------------------------------------------------------------

    def on_reactor_migrated(self, old_reactor: Any, new_reactor: Any,
                            snapshot_records: list[RedoRecord]) -> None:
        """Re-home a migrated reactor's replica shards.

        Every replica of the destination container gains a shadow of
        the successor, seeded with the migration's snapshot
        after-images; the snapshot becomes the audit's replay baseline
        for the reactor at its new home, fenced so that stale entries
        from a previous residence in the same container cannot replay
        over it.  The source replicas keep their applied history — a
        replica mirrors its primary's full shipped order — but the
        shard is no longer served (or promoted into routing) there.
        """
        dst_cid = new_reactor.container.container_id
        pin = self.database.deployment.pin_reactors
        base = self.base_rows.setdefault(dst_cid, {})
        # Every table gets a (possibly empty) snapshot baseline: a
        # table that emptied since a previous residence here must
        # overwrite its stale base rows, not keep them.
        by_table: dict[str, list[dict[str, Any]]] = {
            table.name: [] for table in new_reactor.catalog}
        for record in snapshot_records:
            for entry in record.entries:
                assert entry.row is not None
                by_table.setdefault(entry.table, []).append(
                    dict(entry.row))
        for table_name, rows in by_table.items():
            base[(new_reactor.name, table_name)] = rows
        # Seeds carry the migration watermark, not tid 0: a replica-
        # pinned snapshot below the watermark must not resolve
        # migrated-in rows from its future.
        watermark = max((record.commit_tid
                         for record in snapshot_records), default=0)
        for replica in self.replicas.get(dst_cid, []):
            replica.add_shadow(new_reactor, pin=pin)
            replica.reactor_fences[new_reactor.name] = \
                len(replica.applied_records)
            replica.snapshot_floor = max(replica.snapshot_floor,
                                         watermark)
            for table_name, rows in by_table.items():
                replica.mirror_load(new_reactor.name, table_name, rows,
                                    tid=watermark)
        # A *promoted* destination serves the migrated-in reactor as a
        # live primary reactor — there is no shadow to seed — but the
        # audit replays its re-anchored shipped order, so the same
        # fence applies: entries for this name from a previous
        # residence in the container must not replay over the
        # snapshot baseline installed above.
        dst = self.database.containers[dst_cid]
        if getattr(dst, "role", None) == ROLE_PRIMARY and \
                hasattr(dst, "reactor_fences"):
            dst.reactor_fences[new_reactor.name] = \
                len(self.shipped[dst_cid])

    # ------------------------------------------------------------------
    # Read-replica routing
    # ------------------------------------------------------------------

    def route_read(self, reactor: Reactor) -> Reactor | None:
        """A replica shadow to serve a read-only root on ``reactor``,
        or ``None`` to keep it on the primary."""
        if not self.config.read_from_replicas:
            return None
        cid = reactor.container.container_id
        group = self.replicas.get(cid)
        if not group:
            return None
        index = self._read_route[cid] % len(group)
        self._read_route[cid] += 1
        shadow = group[index].shadow(reactor.name)
        if shadow is not None:
            self.stats.reads_routed_to_replicas += 1
        return shadow

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def inject_lag(self, cid: int, extra_us: float) -> None:
        """Stall container ``cid``'s ship channel: everything shipped
        from now on applies no earlier than ``now + extra_us``.

        Models a transient network/apply hiccup.  The channel stays
        FIFO (the spike only advances the pipe watermark), so prefix
        consistency is preserved — what changes is the observable lag
        window, which async-mode certification reports and sync-mode
        commits wait out."""
        if extra_us <= 0.0:
            return
        now = self.database.scheduler.now
        self._pipe[cid] = max(self._pipe.get(cid, 0.0), now + extra_us)

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------

    def kill_primary(self, cid: int) -> None:
        """Fail a primary container mid-run.

        Queued invocations abort immediately; tasks already executing
        keep consuming virtual time but abort at commit (their
        concurrency manager is marked failed), so *no* transaction is
        reported committed after the kill without replica coverage.
        """
        container = self.database.containers[cid]
        container.failed = True
        container.concurrency.failed = True
        if self.config.mode == "sync":
            # Sync semantics: a record enters the (reliable, FIFO)
            # ship channel at install time, before anything is
            # reported — the crash cannot destroy channel content, so
            # replicas drain it before disconnecting.  This is what
            # makes cross-container commits atomic across failover:
            # an installed transfer either reaches the replica of
            # every participant or was never reported committed.
            for replica in self.replicas.get(cid, []):
                behind = self.shipped[cid][
                    len(replica.applied_records):]
                for record in behind:
                    replica.apply_record(record)
                    self.stats.records_applied += 1
        # Disconnect the replicas: in-flight apply/ack events shipped
        # by the dead primary are dropped when they fire (they are
        # duplicates after a sync drain, losses under async), and the
        # ship channel restarts empty for the next primary.
        self.ship_epoch[cid] += 1
        self._pipe[cid] = 0.0
        scheduler = self.database.scheduler
        for executor in container.executors:
            while executor.queue:
                invocation = executor.queue.popleft()
                abort = TransactionAbort(
                    f"container {cid} failed")
                if invocation.result_future is not None:
                    invocation.result_future.fail(abort, scheduler.now)
                else:
                    invocation.root.finished = True
                    self.stats.failover_aborts += 1
                    if self._telemetry is not None:
                        self._telemetry.note_root_done(
                            invocation.root, False, str(abort),
                            scheduler.now)
                    if invocation.on_root_done is not None:
                        scheduler.soon(invocation.on_root_done,
                                       invocation.root, False,
                                       str(abort), None)

    def promote(self, cid: int) -> ReplicaContainer:
        """Promote the most advanced replica of container ``cid``.

        The replica's applied log prefix becomes the new primary redo
        log (so recovery and the audit keep working across the
        failover), remaining replicas are caught up to that prefix and
        re-pointed at the new log, and the shadow reactors are
        re-registered in the database's routing tables.
        """
        if not self.database.containers[cid].failed:
            raise ReplicationError(
                f"container {cid} is still alive: promoting over a "
                "serving primary would fork the shipped order (call "
                "kill_primary first, or kill_and_promote)"
            )
        group = self.replicas.get(cid)
        if not group:
            raise ReplicationError(
                f"container {cid} has no replica to promote")
        target = max(group,
                     key=lambda r: (len(r.applied_records),
                                    -r.replica_id))
        group.remove(target)
        target.role = ROLE_PRIMARY
        database = self.database
        scheduler = database.scheduler

        # Loss accounting against the old primary's shipped order:
        # sync acks are only recorded after every replica applied (and
        # the kill drained the channel), so lost_acked and lost_records
        # are provably empty under sync; under async the lag window is
        # lost, and any lost record whose commit TID also appears in a
        # surviving container's order is a broken cross-container
        # transaction — reported, because it is the inherent atomicity
        # price of async replication.
        old_shipped = self.shipped[cid]
        lost_acked = sorted(self.acked_tids[cid]
                            - target.applied_tids)
        lost_suffix = old_shipped[len(target.applied_records):]
        lost_records = len(lost_suffix)
        surviving_tids = {
            record.commit_tid
            for other_cid, records in self.shipped.items()
            if other_cid != cid
            for record in records
        }
        atomicity_breaks = sorted(
            {record.commit_tid for record in lost_suffix}
            & surviving_tids)

        # Catch the remaining replicas up to the promoted prefix (a
        # replica is always a prefix of the shipped order, so the
        # missing records are exactly the promoted suffix).  Applied
        # synchronously within the promotion event so no stale
        # in-flight ship can interleave out of order.
        for sibling in group:
            behind = target.applied_records[len(sibling.applied_records):]
            for record in behind:
                sibling.apply_record(record)
                self.stats.records_applied += 1

        # The survivor's TID generator only ever saw the TIDs it
        # applied; a lagging replica is behind the dead primary's
        # generator — and behind any pinned multi-version snapshot
        # (pins advance every primary generator, the dead one
        # included).  Advance it past the global watermark so
        # post-promotion commits exceed every issued TID and every
        # pinned snapshot, preserving both TID uniqueness and the
        # snapshot-isolation prefix invariant across failover.
        target.concurrency.tids.advance_to(
            max(c.concurrency.tids.last
                for c in database.containers))

        # The applied prefix *is* the new primary's redo log — the
        # "replay" of promotion; state was materialized incrementally
        # as records arrived, the log seed re-anchors durability and
        # the audit on the survivor.  on_log_replaced re-registers the
        # group-commit flush pipeline on the new log (the shared
        # batched flush path) with the seeded prefix counted durable —
        # the replica had materialized it.
        new_log = RedoLog(cid)
        new_log.records = list(target.applied_records)
        new_log.listener = self._listener_for(cid)
        target.concurrency.redo_log = new_log
        self.durability.on_log_replaced(cid, new_log)
        self.shipped[cid] = list(target.applied_records)
        self.acked_tids[cid] = set(target.applied_tids)

        # Re-register routing: the shadows become the reactors.  The
        # dead primary's CC counters move to the survivor so
        # abort_counts() stays monotonic across the failover.  The
        # promoted executors stay OUT of database.executors — that
        # list means "primary-machine cores" to the measurement
        # harness, whose busy-time snapshots would mis-attribute the
        # replica's pre-promotion work if new cores appeared mid-run.
        old = database.containers[cid]
        target.concurrency.stats.merge(old.concurrency.stats)
        database.containers[cid] = target
        for name in list(database._reactors):
            if database._reactors[name].container is old:
                shadow = target.shadow(name)
                assert shadow is not None
                database._reactors[name] = shadow
                # The shadow's tables now serve primary traffic:
                # re-scope them so primary-prefix pins (not this
                # ex-replica's) govern their version retention.
                database.storage.adopt(shadow)
        # Snapshot readers still in flight on the promoted replica
        # follow their tables into the primary scope — otherwise the
        # next install would GC versions they can still reach.
        database.storage.rescope(target)

        self.stats.failovers.append(FailoverEvent(
            container_id=cid,
            replica_id=target.replica_id,
            at_us=scheduler.now,
            applied_records=len(target.applied_records),
            lost_acked=lost_acked,
            lost_records=lost_records,
            atomicity_breaks=atomicity_breaks,
        ))
        return target

    def kill_and_promote(self, cid: int) -> ReplicaContainer:
        """Atomic (single-event) crash + failover of one container."""
        self.kill_primary(cid)
        return self.promote(cid)

    def commit_survived(self, root: Any) -> bool:
        """Did an installed commit's writes survive every failed
        participant's failover?

        Consulted by the executor when a sync ack window was cut short
        by a kill: if each failed participant has a promoted successor
        whose applied prefix contains this commit (guaranteed by the
        sync channel drain once promotion ran), the outcome can be
        truthfully reported as committed instead of in-doubt.
        """
        for manager, session in root.participants():
            if not manager.failed or session.write_count == 0:
                continue
            cid = manager.container_id
            survivor = self.database.containers[cid]
            applied = getattr(survivor, "applied_tids", None)
            if applied is not None and root.commit_tid in applied:
                continue  # already promoted with the record
            # Not promoted yet: the record survives any future
            # promotion iff every remaining replica holds it (the
            # promotion target is one of them).
            group = self.replicas.get(cid)
            if group and all(root.commit_tid in replica.applied_tids
                             for replica in group):
                continue
            return False
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def lag_snapshot(self) -> dict[int, list[dict[str, Any]]]:
        """Per-replica lag in records and applied TID watermark."""
        out: dict[int, list[dict[str, Any]]] = {}
        for cid, group in self.replicas.items():
            out[cid] = [
                {
                    "replica_id": replica.replica_id,
                    "lag_records": len(self.shipped[cid])
                    - len(replica.applied_records),
                    "applied_tid": replica.applied_tid,
                }
                for replica in group
            ]
        return out

    def stats_dict(self) -> dict[str, Any]:
        stats = self.stats
        telemetry = self._telemetry
        if telemetry is not None:
            value = telemetry.registry.value
            scalars = {
                "records_shipped":
                    value("replication_records_shipped_total"),
                "records_applied":
                    value("replication_records_applied_total"),
                "acked_records":
                    value("replication_acked_records_total"),
                "sync_commit_waits":
                    value("replication_sync_commit_waits_total"),
                "sync_ack_wait_us":
                    value("replication_sync_ack_wait_us"),
                "max_lag_us": value("replication_max_lag_us"),
                "reads_routed_to_replicas":
                    value("replication_reads_routed_total"),
                "failover_aborts":
                    value("replication_failover_aborts_total"),
            }
        else:
            scalars = {
                "records_shipped": stats.records_shipped,
                "records_applied": stats.records_applied,
                "acked_records": stats.acked_records,
                "sync_commit_waits": stats.sync_commit_waits,
                "sync_ack_wait_us": round(stats.sync_ack_wait_us, 3),
                "max_lag_us": round(stats.max_lag_us, 3),
                "reads_routed_to_replicas":
                    stats.reads_routed_to_replicas,
                "failover_aborts": stats.failover_aborts,
            }
        return {
            "mode": self.config.mode,
            "replicas_per_container":
                self.config.replicas_per_container,
            "read_from_replicas": self.config.read_from_replicas,
            **scalars,
            "avg_lag_us": round(stats.avg_lag_us, 3),
            "failovers": [
                {
                    "container_id": e.container_id,
                    "replica_id": e.replica_id,
                    "at_us": round(e.at_us, 3),
                    "applied_records": e.applied_records,
                    "lost_acked": list(e.lost_acked),
                    "lost_records": e.lost_records,
                    "atomicity_breaks": list(e.atomicity_breaks),
                }
                for e in stats.failovers
            ],
        }
