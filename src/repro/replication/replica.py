"""Replica containers: passive log-applying copies of a primary.

A :class:`ReplicaContainer` is a full :class:`~repro.runtime.container.
Container` — its own concurrency manager and transaction executors on
separate simulated cores (a log-shipping replica models another
machine) — holding *shadow reactors*: same names and types as the
primary container's reactors, with private table state materialized
exclusively from the primary's shipped redo records (plus the mirrored
non-transactional bulk load).

While in the ``"replica"`` role it serves only read-only root
transactions (bounded-staleness reads; the runtime refuses writes of
read-only roots at buffering time).  On failover it is promoted: its
applied log prefix becomes the new primary redo log, its shadow
reactors are re-registered in the database's routing tables, and it
starts accepting read-write transactions.
"""

from __future__ import annotations

from typing import Any

from repro.concurrency.base import ConcurrencyControl
from repro.core.reactor import Reactor
from repro.durability.wal import RedoRecord, apply_record_to
from repro.runtime.container import Container

ROLE_REPLICA = "replica"
ROLE_PRIMARY = "primary"


class ReplicaContainer(Container):
    """One replica of one primary container."""

    def __init__(self, replica_id: int, primary: Container,
                 database: Any, concurrency: ConcurrencyControl) -> None:
        super().__init__(primary.container_id, database, concurrency)
        #: Globally unique replica index (for routing/debug).
        self.replica_id = replica_id
        self.primary = primary
        self.role = ROLE_REPLICA
        #: Redo records applied so far, in arrival order — by
        #: construction a prefix of the primary's shipped sequence
        #: (the formal audit certifies exactly that).
        self.applied_records: list[RedoRecord] = []
        self.applied_tids: set[int] = set()
        #: Highest commit TID applied (0 when nothing arrived yet).
        self.applied_tid = 0
        #: Floor for snapshot pins: migration re-homing seeds shadows
        #: at the source watermark, so the replica's materialized
        #: position is max(applied_tid, snapshot_floor) — a fresh pin
        #: below the floor would miss the seeded state.
        self.snapshot_floor = 0
        self._shadows: dict[str, Reactor] = {}
        #: reactor name -> applied-record index before which shipped
        #: entries for that reactor are skipped.  Set when an online
        #: migration re-homes a reactor here: the shadow is seeded from
        #: the migration snapshot, and any *older* entries for the same
        #: name still in the primary's history (the reactor lived here
        #: before) must not replay over it.
        self.reactor_fences: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Shadow reactors
    # ------------------------------------------------------------------

    def add_shadow(self, primary_reactor: Reactor,
                   pin: bool) -> Reactor:
        """Create this replica's shadow of one primary reactor.

        Shadow tables join the database's storage coordinator: log
        applies then install *versions*, so snapshot reads pinned at
        this replica's applied watermark stay stable while newer
        records keep applying underneath them.
        """
        shadow = Reactor(primary_reactor.name, primary_reactor.rtype)
        shadow.container = self
        storage = getattr(self.database, "storage", None)
        if storage is not None:
            # Scoped to this replica: only reads pinned *here* (at the
            # applied watermark) retain shadow history, and replica
            # pins keep no unreachable history on primaries.
            storage.adopt(shadow, scope=self)
        executor = self.executors[
            primary_reactor.affinity_executor.executor_id
            % len(self.executors)]
        shadow.affinity_executor = executor
        if pin:
            shadow.pinned_executor = executor
        self._shadows[shadow.name] = shadow
        return shadow

    def shadow(self, name: str) -> Reactor | None:
        """The shadow reactor for ``name``, or ``None`` if the reactor
        is not hosted by this replica's primary container."""
        return self._shadows.get(name)

    def shadow_names(self) -> list[str]:
        return sorted(self._shadows)

    # ------------------------------------------------------------------
    # Log apply
    # ------------------------------------------------------------------

    def _table_for(self, reactor_name: str, table_name: str):
        shadow = self._shadows[reactor_name]
        return shadow.table(table_name)

    def apply_record(self, record: RedoRecord) -> None:
        """Install one shipped redo record into the shadow tables.

        One apply is a single scheduler event: readers on this replica
        never observe a torn record, and OCC read sessions that
        overlapped the apply fail validation — replica reads are always
        a consistent prefix of the primary's commit order.

        Entries for a reactor re-homed here by a migration are skipped
        while this replica's applied position is below the reactor's
        fence (the record itself still joins ``applied_records``, so
        the prefix invariant the audit certifies is untouched).
        """
        if self.reactor_fences:
            position = len(self.applied_records)
            kept = tuple(
                entry for entry in record.entries
                if position >= self.reactor_fences.get(
                    entry.reactor, 0))
            if len(kept) != len(record.entries):
                apply_record_to(
                    self._table_for,
                    RedoRecord(record.commit_tid, kept))
            else:
                apply_record_to(self._table_for, record)
        else:
            apply_record_to(self._table_for, record)
        self.applied_records.append(record)
        self.applied_tids.add(record.commit_tid)
        if record.commit_tid > self.applied_tid:
            self.applied_tid = record.commit_tid
        # Post-promotion commits must exceed everything applied.
        self.concurrency.tids.advance_to(record.commit_tid)
        # Apply CPU is burned on the replica's first core (bookkeeping
        # only: applies are events, not executor tasks).
        if self.executors:
            costs = self.database.costs
            self.executors[0].busy_time += \
                costs.repl_apply_per_write * len(record.entries)

    def mirror_load(self, reactor_name: str, table_name: str,
                    rows: list[dict[str, Any]], tid: int = 0) -> None:
        """Mirror a non-transactional bulk load (benchmark setup) —
        bulk loads bypass the redo log, so they are copied directly.
        ``load_row`` copies each row image, so no defensive copy.
        Migration re-homing passes the snapshot watermark as ``tid``
        so the seeded rows carry their true as-of position: a snapshot
        reader pinned below the watermark must not see migrated-in
        state from its future."""
        table = self._table_for(reactor_name, table_name)
        for row in rows:
            table.load_row(row, tid=tid)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ReplicaContainer(primary={self.container_id}, "
                f"replica_id={self.replica_id}, role={self.role}, "
                f"applied={len(self.applied_records)})")
