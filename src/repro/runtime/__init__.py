"""Execution runtime: executors, containers, tasks, futures.

This package realizes ReactDB's architecture (paper Section 3): a
collection of isolated containers, each with transaction executors
(request queue + cooperative thread pool pinned to a core), transaction
routing, asynchronous sub-transaction dispatch with asymmetric
communication costs, and the dynamic intra-transaction safety
condition.

Public exports: :class:`Container`, :class:`TransactionExecutor` with
its :class:`Invocation` request envelope, :class:`SimFuture` /
:class:`ThreadSafeFuture`, the procedure effects (:class:`CallEffect`,
:class:`GetEffect`, :class:`ChargeEffect`), the root-transaction
bookkeeping (:class:`RootTransaction`, :class:`TxnStats`,
:data:`CATEGORIES`), and the execution-backend registry
(:func:`create_backend`, :func:`backend_names`, :class:`SimBackend`,
:class:`ThreadsBackend`).
"""

from repro.runtime.backend import SimBackend, backend_names, create_backend
from repro.runtime.container import Container
from repro.runtime.effects import CallEffect, ChargeEffect, GetEffect
from repro.runtime.executor import Invocation, TransactionExecutor
from repro.runtime.futures import SimFuture, ThreadSafeFuture
from repro.runtime.threads import ThreadsBackend
from repro.runtime.transaction import CATEGORIES, RootTransaction, TxnStats

__all__ = [
    "Container",
    "TransactionExecutor",
    "Invocation",
    "SimFuture",
    "ThreadSafeFuture",
    "SimBackend",
    "ThreadsBackend",
    "create_backend",
    "backend_names",
    "CallEffect",
    "GetEffect",
    "ChargeEffect",
    "RootTransaction",
    "TxnStats",
    "CATEGORIES",
]
