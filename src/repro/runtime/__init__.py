"""Execution runtime: executors, containers, tasks, futures.

This package realizes ReactDB's architecture (paper Section 3): a
collection of isolated containers, each with transaction executors
(request queue + cooperative thread pool pinned to a core), transaction
routing, asynchronous sub-transaction dispatch with asymmetric
communication costs, and the dynamic intra-transaction safety
condition.

Public exports: :class:`Container`, :class:`TransactionExecutor` with
its :class:`Invocation` request envelope, :class:`SimFuture`, the
procedure effects (:class:`CallEffect`, :class:`GetEffect`,
:class:`ChargeEffect`), and the root-transaction bookkeeping
(:class:`RootTransaction`, :class:`TxnStats`, :data:`CATEGORIES`).
"""

from repro.runtime.container import Container
from repro.runtime.effects import CallEffect, ChargeEffect, GetEffect
from repro.runtime.executor import Invocation, TransactionExecutor
from repro.runtime.futures import SimFuture
from repro.runtime.transaction import CATEGORIES, RootTransaction, TxnStats

__all__ = [
    "Container",
    "TransactionExecutor",
    "Invocation",
    "SimFuture",
    "CallEffect",
    "GetEffect",
    "ChargeEffect",
    "RootTransaction",
    "TxnStats",
    "CATEGORIES",
]
