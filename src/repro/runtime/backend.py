"""Pluggable execution backends behind the reactor API.

Every component of the runtime — executors, workers, the durability
flush pipeline, replication, telemetry collectors — drives itself by
scheduling callbacks on ``database.scheduler``.  That object is the
*execution backend*: the thing that decides what "time" means, where
callbacks run, and what (if anything) must be locked.  Two backends
exist:

* ``sim`` (the default, :class:`SimBackend`): the discrete-event
  scheduler of :mod:`repro.sim.scheduler`.  Virtual microseconds,
  one serial event loop, full determinism — the certification oracle
  every formal audit and chaos campaign runs against.
* ``threads`` (:class:`~repro.runtime.threads.ThreadsBackend`): one
  OS thread per container, ``time.monotonic_ns`` clocks, lock-based
  futures — the same deployments measured in wall-clock time on real
  hardware (see ``docs/backends.md`` for the certify-then-measure
  workflow).

The backend *protocol* is the event-loop surface plus a handful of
hooks, duck-typed rather than ABC-enforced so the sim hot path pays
zero indirection:

==================  ==================================================
``now``             current time in microseconds (virtual or wall)
``at/after/soon``   schedule a callback (returns a cancellable handle)
``run(until=None)`` drive to quiescence; events due by ``until``
                    (inclusive) run before the call returns
``pending()``       live scheduled work (O(1))
``events_dispatched``  callbacks executed so far (telemetry gauge)
``post(cid, fn, *a)``  run ``fn`` on container ``cid``'s context
``busy(us, fn, *a)``   occupy the calling executor's CPU for ``us``
                    microseconds, then continue with ``fn``
``add_waiter(fut, cb, *a, container=...)``  wake a parked task on its
                    owning container's context when ``fut`` resolves
``commit_guard(cids)``  context manager serializing a cross-container
                    commit/abort against the named participants
``state_guard()``   context manager serializing shared database
                    bookkeeping (txn counters, snapshot pins, ...)
``future_class``    future type the runtime allocates (``None`` means
                    the plain single-threaded :class:`SimFuture`)
``name``            ``"sim"`` or ``"threads"`` (stamped into bench
                    meta blocks and telemetry exports)
``is_virtual``      ``True`` when timestamps are simulated
``lock``            the backend's shared-state lock (``None`` on sim)
==================  ==================================================

Deployment configs select a backend by name (``backend: sim|threads``
in :class:`~repro.core.deployment.DeploymentConfig`);
:func:`create_backend` maps the name to an instance during
``ReactorDatabase.__init__``.
"""

from __future__ import annotations

from typing import Any

from repro.errors import DeploymentError
from repro.sim.scheduler import SimScheduler

#: The backend registry: names accepted by ``DeploymentConfig.backend``.
BACKEND_SIM = "sim"
BACKEND_THREADS = "threads"


def backend_names() -> tuple[str, ...]:
    """Every backend name a deployment config may select."""
    return (BACKEND_SIM, BACKEND_THREADS)


class SimBackend(SimScheduler):
    """The virtual-time execution backend (the default).

    :class:`~repro.sim.scheduler.SimScheduler` already implements the
    whole backend protocol — its hook methods are exact restatements
    of the pre-backend call sites, so histories are byte-identical and
    the ``harness_speed`` gate sees no new hot-path work.  This
    subclass exists to give the default backend its protocol name in
    the registry; constructing a plain ``SimScheduler`` remains
    equivalent (tests and tools that predate the backend split do).
    """

    __slots__ = ()


def create_backend(deployment: Any) -> SimScheduler:
    """Instantiate the execution backend a deployment selects.

    ``deployment`` only needs a ``backend`` attribute (absent means
    ``sim``), so callers can pass a full ``DeploymentConfig`` or any
    config-shaped stand-in.
    """
    name = getattr(deployment, "backend", BACKEND_SIM)
    if name == BACKEND_SIM:
        return SimBackend()
    if name == BACKEND_THREADS:
        from repro.runtime.threads import ThreadsBackend

        return ThreadsBackend()
    raise DeploymentError(
        f"unknown execution backend {name!r}; expected one of "
        f"{', '.join(backend_names())}"
    )


__all__ = [
    "BACKEND_SIM",
    "BACKEND_THREADS",
    "SimBackend",
    "backend_names",
    "create_backend",
]
