"""Database containers.

A container (paper Section 3.1) abstracts a portion of a machine with
its own storage and transactional consistency mechanism — the
deployment-selected concurrency-control scheme (OCC, 2PL, or
passthrough; see :mod:`repro.concurrency.base`).  Containers
are isolated: they never share data, and each owns disjoint compute
resources (transaction executors).  Reactors map to exactly one
container; within it, they are either served by any executor
(shared-everything) or pinned to one (shared-nothing).
"""

from __future__ import annotations

from typing import Any

from repro.concurrency.base import ConcurrencyControl
from repro.runtime.executor import TransactionExecutor


class Container:
    """One shared-memory region plus its transaction executors."""

    def __init__(self, container_id: int, database: Any,
                 concurrency: ConcurrencyControl) -> None:
        self.container_id = container_id
        self.database = database
        self.concurrency = concurrency
        self.executors: list[TransactionExecutor] = []
        self._route_counter = 0
        #: Set by failure injection / replication failover: a failed
        #: container accepts no new work, and transactions holding a
        #: session here abort at commit instead of installing.
        self.failed = False

    def add_executor(self, core_id: int, mpl: int) -> TransactionExecutor:
        executor = TransactionExecutor(
            executor_id=len(self.executors),
            core_id=core_id,
            container=self,
            scheduler=self.database.scheduler,
            costs=self.database.costs,
            mpl=mpl,
        )
        self.executors.append(executor)
        return executor

    def route(self, reactor: Any) -> TransactionExecutor:
        """Executor serving a sub-call on ``reactor`` in this container.

        Pinned reactors go to their executor; otherwise requests are
        load-balanced round-robin.
        """
        if reactor.pinned_executor is not None:
            return reactor.pinned_executor
        executor = self.executors[self._route_counter
                                  % len(self.executors)]
        self._route_counter += 1
        return executor

    # -- online migration support (repro.migration) --------------------

    def take_queued_roots(self, reactor: Any) -> list:
        """Remove and return queued-but-unstarted root invocations
        targeting ``reactor`` from this container's executors.

        The migration sweep parks these in the migration queue so they
        replay at the destination instead of racing the drain barrier.
        """
        taken: list = []
        for executor in self.executors:
            kept = []
            for invocation in executor.queue:
                if invocation.is_root and invocation.reactor is reactor:
                    taken.append(invocation)
                else:
                    kept.append(invocation)
            if len(kept) != len(executor.queue):
                executor.queue.clear()
                executor.queue.extend(kept)
        return taken

    def has_queued_work_for(self, reactor: Any) -> bool:
        """Is any queued invocation (root or sub-call) still targeting
        ``reactor``?  Part of the migration drain barrier."""
        return any(invocation.reactor is reactor
                   for executor in self.executors
                   for invocation in executor.queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Container({self.container_id}, "
                f"executors={len(self.executors)})")
