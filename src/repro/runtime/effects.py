"""Effects yielded by reactor procedures to the runtime.

Reactor procedures are Python generators; time-consuming or
cross-reactor actions are expressed by *yielding* effect objects that
the transaction executor interprets:

* ``yield ctx.call(name, proc, *args)`` — :class:`CallEffect`; the
  runtime sends back a :class:`~repro.runtime.futures.SimFuture`.
* ``yield ctx.get(future)`` — :class:`GetEffect`; the runtime sends
  back the result (or throws the sub-transaction's abort into the
  procedure).
* ``yield ctx.compute(micros)`` — :class:`ChargeEffect`; pure simulated
  CPU work (e.g. the ``sim_risk`` Monte-Carlo kernel).

Declarative queries (``ctx.select`` etc.) are *not* effects: they
execute immediately for data purposes and accrue simulated CPU cost
that the executor charges at the next yield point.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.futures import SimFuture


class Effect:
    """Marker base class for objects the executor interprets."""

    __slots__ = ()


class CallEffect(Effect):
    """Asynchronous procedure call on a (possibly different) reactor."""

    __slots__ = ("reactor_name", "proc_name", "args", "kwargs")

    def __init__(self, reactor_name: str, proc_name: str,
                 args: tuple, kwargs: dict[str, Any]) -> None:
        self.reactor_name = reactor_name
        self.proc_name = proc_name
        self.args = args
        self.kwargs = kwargs

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CallEffect({self.proc_name} on reactor "
                f"{self.reactor_name!r})")


class GetEffect(Effect):
    """Wait for (and consume) the result of a future."""

    __slots__ = ("future", "implicit")

    def __init__(self, future: SimFuture, implicit: bool = False) -> None:
        self.future = future
        #: True for the runtime-generated frame-end synchronization.
        self.implicit = implicit

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GetEffect({self.future!r}, implicit={self.implicit})"


class ChargeEffect(Effect):
    """Consume simulated CPU time (application compute kernels)."""

    __slots__ = ("micros", "category")

    def __init__(self, micros: float, category: str = "exec") -> None:
        if micros < 0:
            raise ValueError("cannot charge negative time")
        self.micros = micros
        self.category = category

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ChargeEffect({self.micros:.3f}us, {self.category})"
