"""Transaction executors: the compute resources of ReactDB.

A transaction executor (paper Section 3.1) abstracts one core pinned
thread pool with a request queue.  Requests are asynchronous procedure
calls — root transactions routed by the database's transaction router
and sub-transactions arriving from other executors.

The executor drives procedures as generator *tasks* over the
discrete-event scheduler:

* at most one task consumes CPU at any instant (the executor is pinned
  to one simulated hardware thread);
* a configurable multiprogramming level (MPL) bounds how many
  *non-blocked* tasks are admitted; a task that blocks on a remote
  future releases its slot and the executor cooperatively switches to
  the next ready task or admits a new request — exactly the paper's
  cooperative multitasking with thread handoff (Section 3.2.3);
* a call to a reactor served by this same executor is executed inline
  (synchronously), avoiding migration-of-control overhead; calls to
  reactors on other executors are dispatched with send cost ``Cs`` and
  their results consumed with receive cost ``Cr``.

Latency of root transactions is broken down into the paper's Figure 6
categories as charges and waits are attributed (see
:mod:`repro.runtime.transaction`).
"""

from __future__ import annotations

import inspect
from collections import deque
from typing import Any, Callable

from repro.concurrency.coordinator import TwoPhaseCommit
from repro.errors import (
    CCAbort,
    DangerousStructureAbort,
    ReactorError,
    SimulationError,
    TransactionAbort,
    UnknownReactorError,
    UserAbort,
)
from repro.runtime.effects import CallEffect, ChargeEffect, GetEffect
from repro.runtime.futures import SimFuture
from repro.runtime.transaction import RootTransaction

_NOTHING = object()

_READY = "ready"
_RUNNING = "running"
_BLOCKED = "blocked"
_DONE = "done"

#: Lazily-cached :class:`repro.core.context.ReactorContext`.  The
#: import is deferred (core.context yields runtime effect objects, so a
#: module-scope import would be circular) but resolving it once instead
#: of per frame keeps ``_push_frame`` off the import machinery.
_ReactorContext: type | None = None


class Invocation:
    """A queued request: root transaction or sub-transaction call."""

    __slots__ = ("root", "reactor", "proc_name", "args", "kwargs",
                 "subtxn_id", "result_future", "on_root_done")

    def __init__(self, root: RootTransaction, reactor: Any,
                 proc_name: str, args: tuple, kwargs: dict,
                 subtxn_id: int = 0,
                 result_future: SimFuture | None = None,
                 on_root_done: Callable[..., None] | None = None) -> None:
        self.root = root
        self.reactor = reactor
        self.proc_name = proc_name
        self.args = args
        self.kwargs = kwargs
        self.subtxn_id = subtxn_id
        self.result_future = result_future
        self.on_root_done = on_root_done

    @property
    def is_root(self) -> bool:
        return self.subtxn_id == 0


class Frame:
    """One procedure activation on a reactor within a task."""

    __slots__ = ("gen", "reactor", "subtxn_id", "pending", "entered",
                 "inline_future")

    def __init__(self, gen: Any, reactor: Any, subtxn_id: int,
                 entered: bool) -> None:
        self.gen = gen
        self.reactor = reactor
        self.subtxn_id = subtxn_id
        self.pending: list[SimFuture] = []
        self.entered = entered
        #: For inline child frames: the future the parent received.
        self.inline_future: SimFuture | None = None


class Task:
    """An executing (sub-)transaction on one executor."""

    __slots__ = ("invocation", "root", "frames", "state", "executor",
                 "pending_charge", "blocked_on", "block_start",
                 "block_category", "wake_future")

    def __init__(self, invocation: Invocation, executor:
                 "TransactionExecutor") -> None:
        self.invocation = invocation
        self.root = invocation.root
        self.frames: list[Frame] = []
        self.state = _READY
        self.executor = executor
        #: Simulated CPU accrued by data operations since last flush.
        self.pending_charge = 0.0
        self.blocked_on: SimFuture | None = None
        self.block_start = 0.0
        self.block_category = "async_execution"
        self.wake_future: SimFuture | None = None

    @property
    def is_root(self) -> bool:
        return self.invocation.is_root


def _frame_body(proc: Callable, ctx: Any, args: tuple,
                kwargs: dict, frame: Frame):
    """Driver generator around a procedure.

    Forwards the procedure's effects and, when it finishes, implicitly
    synchronizes on every future it left outstanding: a transaction or
    sub-transaction completes only when all its nested sub-transactions
    complete (paper Section 2.2.3).
    """
    try:
        result = proc(ctx, *args, **kwargs)
        if inspect.isgenerator(result):
            result = yield from result
    except Exception:
        # Even on abort, outstanding sub-transactions must finish
        # before this frame completes — otherwise orphaned executions
        # would race the rollback.  Their own failures are subsumed by
        # the abort already in flight.
        for future in list(frame.pending):
            if not future.consumed:
                try:
                    yield GetEffect(future, implicit=True)
                except Exception:
                    pass
        raise
    for future in list(frame.pending):
        if not future.consumed:
            yield GetEffect(future, implicit=True)
    return result


class TransactionExecutor:
    """One simulated core's worth of transaction processing."""

    __slots__ = ("executor_id", "core_id", "container", "scheduler",
                 "costs", "mpl", "queue", "ready", "running",
                 "_dispatch_scheduled", "busy_time", "requests_served",
                 "_shadow_of", "_cid", "_future_cls")

    def __init__(self, executor_id: int, core_id: int, container: Any,
                 scheduler: Any, costs: Any, mpl: int = 1) -> None:
        if mpl < 1:
            raise SimulationError("MPL must be at least 1")
        self.executor_id = executor_id
        self.core_id = core_id
        self.container = container
        #: The execution backend (see :mod:`repro.runtime.backend`);
        #: the attribute keeps its historical name because the whole
        #: runtime schedules through it.
        self.scheduler = scheduler
        #: Backend-chosen future type (thread-safe under ``threads``).
        self._future_cls = getattr(scheduler, "future_class", None) \
            or SimFuture
        self._cid = container.container_id
        self.costs = costs
        self.mpl = mpl
        self.queue: deque[Invocation] = deque()
        self.ready: deque[Task] = deque()
        self.running: Task | None = None
        self._dispatch_scheduled = False
        #: Cumulative busy virtual time, for utilization reporting.
        self.busy_time = 0.0
        self.requests_served = 0
        #: Replica containers expose ``shadow`` (a class-level method);
        #: bound once so the call hot path skips a getattr per effect.
        self._shadow_of = getattr(container, "shadow", None)

    # ------------------------------------------------------------------
    # Request intake and dispatch
    # ------------------------------------------------------------------

    def submit(self, invocation: Invocation) -> None:
        """Enqueue a request (thread-safe by construction: the event
        loop is single-threaded)."""
        if self.container.failed and \
                invocation.result_future is not None:
            # Sub-call arriving at a crashed container: fail the
            # future so the caller aborts instead of waiting forever.
            invocation.result_future.fail(
                TransactionAbort(
                    f"container {self.container.container_id} failed"),
                self.scheduler.now)
            return
        self.queue.append(invocation)
        self._kick()

    def _kick(self) -> None:
        # post() targets this executor's container context: on the sim
        # backend that is soon(); on the threads backend it routes the
        # dispatch onto this container's worker thread even when the
        # kick came from another thread (cross-container submit).  The
        # _dispatch_scheduled flag is a best-effort dampener — a racy
        # double-post only runs _dispatch twice, which is idempotent.
        if self.running is None and not self._dispatch_scheduled:
            self._dispatch_scheduled = True
            self.scheduler.post(self._cid, self._dispatch)

    def _dispatch(self) -> None:
        self._dispatch_scheduled = False
        if self.running is not None:
            return
        if self.ready:
            task = self.ready.popleft()
            self._resume_woken(task)
            return
        if self.queue and self._admitted_nonblocked() < self.mpl:
            invocation = self.queue.popleft()
            self._start_invocation(invocation)

    def _admitted_nonblocked(self) -> int:
        count = len(self.ready)
        if self.running is not None:
            count += 1
        return count

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------

    def _start_invocation(self, invocation: Invocation) -> None:
        if invocation.reactor.retired and \
                self._forward_stale(invocation):
            # The reactor migrated away while this request waited in a
            # queue the migration sweep did not cover; it was handed to
            # the successor's executor instead of running here.
            self._kick()
            return
        self.requests_served += 1
        root = invocation.root
        reactor = invocation.reactor
        task = Task(invocation, self)

        # Dynamic intra-transaction safety (Section 2.2.4): refuse a
        # sub-transaction when another sub-transaction of the same root
        # is active on this reactor.
        if not reactor.try_enter(root.txn_id, invocation.subtxn_id):
            abort = DangerousStructureAbort(
                f"sub-transaction {invocation.subtxn_id} of txn "
                f"{root.txn_id} raced another sub-transaction on "
                f"reactor {reactor.name!r}"
            )
            if invocation.result_future is not None:
                invocation.result_future.fail(abort, self.scheduler.now)
                self._kick()
                return
            raise abort  # a root invocation can never race itself

        self.running = task
        task.state = _RUNNING
        self._touch_reactor(task, reactor)
        self._push_frame(task, reactor, invocation.subtxn_id,
                         entered=True,
                         proc_name=invocation.proc_name,
                         args=invocation.args,
                         kwargs=invocation.kwargs)
        # Root admissions pay the executor wake-up (thread switch from
        # the request queue), part of the containerization overhead.
        if invocation.subtxn_id == 0:
            trace = root.trace
            if trace is not None:
                trace.close_child("sched", self.scheduler.now,
                                  {"core": self.core_id})
            self._busy(task, self.costs.executor_wake, "commit",
                       self._step, task, _NOTHING, None)
        else:
            self._step(task, _NOTHING, None)

    def _forward_stale(self, invocation: Invocation) -> bool:
        """Re-target an invocation whose reactor was retired by an
        online migration; returns ``True`` when it was re-submitted to
        another executor (and must not start here)."""
        reactor = invocation.reactor
        while reactor.retired and reactor.migrated_to is not None:
            reactor = reactor.migrated_to
        invocation.reactor = reactor
        database = self.container.database
        if reactor.migrating:
            # The successor is itself mid-migration (back-to-back):
            # the request belongs in that migration's parked queue.
            migration = database.migration
            if invocation.is_root:
                migration.park_root(reactor.name, invocation)
            else:
                migration.park_subcall(reactor.name, invocation)
            return True
        if invocation.is_root:
            target = database._route_root(reactor)
        else:
            target = self._sub_call_target(reactor)
        if target is not self:
            target.submit(invocation)
            return True
        return False

    def _push_frame(self, task: Task, reactor: Any, subtxn_id: int,
                    entered: bool, proc_name: str, args: tuple,
                    kwargs: dict) -> Frame:
        global _ReactorContext
        context_cls = _ReactorContext
        if context_cls is None:
            from repro.core.context import ReactorContext
            context_cls = _ReactorContext = ReactorContext

        proc = reactor.rtype.get_procedure(proc_name)
        frame = Frame(None, reactor, subtxn_id, entered)
        ctx = context_cls(reactor, task.root, task, self.costs)
        frame.gen = _frame_body(proc, ctx, args, kwargs, frame)
        task.frames.append(frame)
        task.pending_charge += self.costs.proc_base_cost
        return frame

    def _touch_reactor(self, task: Task, reactor: Any) -> None:
        """Cache-affinity bookkeeping: the first touch of a reactor in
        a transaction fixes the data-operation cost multiplier from
        the core's warmth (1.0 when fully warm, up to
        ``cold_access_factor`` when fully cold)."""
        root = task.root
        if reactor.name not in root.touched_reactors:
            warmth = reactor.touch(self.core_id)
            factor = 1.0 + (self.costs.cold_access_factor - 1.0) * \
                (1.0 - warmth)
            root.touched_reactors[reactor.name] = factor
            # Online migration drains on this set: the reactor cannot
            # be copied away while a root that touched it is in flight.
            reactor.inflight_roots.add(root.txn_id)
            root.reactor_refs.append(reactor)

    # ------------------------------------------------------------------
    # The trampoline
    # ------------------------------------------------------------------

    def _step(self, task: Task, send_value: Any,
              throw: BaseException | None) -> None:
        """Advance the top frame one effect; handle completion/abort."""
        gen = task.frames[-1].gen
        try:
            if throw is not None:
                effect = gen.throw(throw)
            elif send_value is _NOTHING:
                effect = next(gen)
            else:
                effect = gen.send(send_value)
        except StopIteration as stop:
            self._after_charge(task, self._frame_done, task, stop.value)
            return
        except SimulationError:
            raise  # a runtime bug, not an application condition
        except ReactorError as error:
            # Application-level failures (user aborts, missing records,
            # duplicate keys, unknown reactors...) abort the root
            # transaction; anything else is a bug and propagates.
            if isinstance(error, TransactionAbort):
                exc: TransactionAbort = error
            else:
                exc = UserAbort(f"{type(error).__name__}: {error}")
            self._after_charge(task, self._frame_aborted, task, exc)
            return
        self._after_charge(task, self._process_effect, task, effect)

    def _after_charge(self, task: Task, fn: Callable[..., None],
                      *args: Any) -> None:
        """Convert accrued data-operation cost into busy time first.

        Continuations are ``(fn, *args)`` pairs, never closures: the
        trampoline runs once per effect, and allocating a lambda per
        hop dominated its profile.
        """
        pending = task.pending_charge
        if pending > 0.0:
            task.pending_charge = 0.0
            self._busy(task, pending, "exec", fn, *args)
        else:
            fn(*args)

    def _busy(self, task: Task, micros: float, category: str,
              fn: Callable[..., None], *args: Any) -> None:
        """Occupy this executor's core for ``micros``, then continue
        with ``fn(*args)``."""
        self.busy_time += micros
        if task.invocation.subtxn_id == 0:
            task.root.charge(_BREAKDOWN[category], micros)
        if micros > 0.0:
            # Backend hook: a virtual sleep on sim (byte-identical to
            # the historical after()), an inline continuation on the
            # threads backend where real CPU work subsumes the charge.
            self.scheduler.busy(micros, fn, *args)
        else:
            fn(*args)

    # ------------------------------------------------------------------
    # Effect handlers
    # ------------------------------------------------------------------

    def _process_effect(self, task: Task, effect: Any) -> None:
        if task.invocation.subtxn_id == 0:
            task.root.effect_seq += 1
        # Calls and gets dominate the yielded-effect mix (data
        # operations never yield); test for them first.
        if isinstance(effect, CallEffect):
            self._handle_call(task, effect)
        elif isinstance(effect, GetEffect):
            self._handle_get(task, effect)
        elif isinstance(effect, ChargeEffect):
            self._busy(task, effect.micros, effect.category,
                       self._step, task, None, None)
        else:
            self._step(task, None, SimulationError(
                f"procedure yielded a non-effect: {effect!r}"))

    def _handle_call(self, task: Task, call: CallEffect) -> None:
        database = self.container.database
        try:
            reactor = database.reactor(call.reactor_name)
        except UnknownReactorError as exc:
            self._step(task, None, exc)
            return
        # On a *serving* replica container, calls to reactors of the
        # same primary container resolve to the local shadows (the
        # whole read-only transaction stays on the replica's cores).
        # Calls that would *leave* a serving replica are refused: the
        # replica's shadows are a consistent prefix of its own primary
        # only, so mixing them with another container's live primary
        # could read a torn cross-container state no validation
        # detects.  A *promoted* replica is a primary: it must resolve
        # through the database registry like any other container, or a
        # later migration off it would keep routing writes into the
        # abandoned local copy.
        shadow_of = self._shadow_of
        if shadow_of is not None and \
                getattr(self.container, "role", None) == "replica":
            shadow = shadow_of(call.reactor_name)
            if shadow is not None:
                reactor = shadow
            else:
                self._step(task, None, UserAbort(
                    f"replica-served read-only transaction cannot "
                    f"call reactor {call.reactor_name!r} outside its "
                    f"container"))
                return
        current = task.frames[-1].reactor
        root = task.root

        if reactor is current:
            # Self-call: executed synchronously, same logical thread of
            # control, no new sub-transaction identity (Section 2.2.4).
            self._run_inline(task, reactor, call,
                             subtxn_id=task.frames[-1].subtxn_id,
                             entered=False)
            return

        migration = database.migration
        if migration is not None and reactor.migrating and \
                root.txn_id not in reactor.inflight_roots:
            # The callee is mid-migration and this transaction holds no
            # stake in the source copy (a transaction that already
            # touched it keeps running there and drains).  Park the
            # sub-call: it replays on the destination container after
            # the routing flip, so the transaction spans the migration
            # and commits through 2PC like any cross-container one.
            subtxn_id = root.next_subtxn_id()
            future = self._future_cls(remote=True, subtxn_id=subtxn_id,
                                      target_reactor=reactor.name)
            future.birth_seq = root.effect_seq
            task.frames[-1].pending.append(future)
            root.remote_calls += 1
            invocation = Invocation(root, reactor, call.proc_name,
                                    call.args, call.kwargs,
                                    subtxn_id=subtxn_id,
                                    result_future=future)
            trace = root.trace
            if trace is not None:
                trace.open_child(subtxn_id, f"subcall:{reactor.name}",
                                 self.scheduler.now,
                                 {"proc": call.proc_name,
                                  "parked": True})
            migration.park_subcall(reactor.name, invocation)
            self._busy(task, self.costs.cs, "cs",
                       self._step, task, future, None)
            return

        target = self._sub_call_target(reactor)
        if target is self:
            subtxn_id = root.next_subtxn_id()
            if not reactor.try_enter(root.txn_id, subtxn_id):
                self._step(task, None, DangerousStructureAbort(
                    f"inline sub-transaction on reactor {reactor.name!r} "
                    f"raced txn {root.txn_id}"
                ))
                return
            self._run_inline(task, reactor, call, subtxn_id=subtxn_id,
                             entered=True)
            return

        # Remote dispatch: charge Cs, enqueue at the target executor,
        # hand the (pending) future back to the caller immediately.
        # The active set is entered *at invocation* (paper Section
        # 2.2.4: "invoked, but have not completed"), so a second
        # asynchronous sub-transaction racing the same reactor within
        # this root is refused even if their executions would not
        # physically overlap.
        subtxn_id = root.next_subtxn_id()
        if not reactor.try_enter(root.txn_id, subtxn_id):
            self._step(task, None, DangerousStructureAbort(
                f"asynchronous sub-transactions of txn {root.txn_id} "
                f"race on reactor {reactor.name!r}"
            ))
            return
        future = self._future_cls(remote=True, subtxn_id=subtxn_id,
                                  target_reactor=reactor.name)
        future.birth_seq = root.effect_seq
        task.frames[-1].pending.append(future)
        root.remote_calls += 1
        invocation = Invocation(root, reactor, call.proc_name, call.args,
                                call.kwargs, subtxn_id=subtxn_id,
                                result_future=future)
        trace = root.trace
        if trace is not None:
            trace.open_child(subtxn_id, f"subcall:{reactor.name}",
                             self.scheduler.now,
                             {"proc": call.proc_name})
        self.scheduler.after(
            self.costs.cs + self.costs.transport_delay,
            target.submit, invocation)
        self._busy(task, self.costs.cs, "cs",
                   self._step, task, future, None)

    def _sub_call_target(self, reactor: Any) -> "TransactionExecutor":
        """Which executor serves a sub-call on ``reactor``?

        Same-container reactors with no pinned executor are served
        inline (shared-everything: direct memory access, no migration
        of control).  Pinned reactors are served by their executor.
        """
        pinned = reactor.pinned_executor
        if pinned is not None:
            return pinned
        if reactor.container is self.container:
            return self
        return reactor.container.route(reactor)

    def _run_inline(self, task: Task, reactor: Any, call: CallEffect,
                    subtxn_id: int, entered: bool) -> None:
        future = self._future_cls(remote=False, subtxn_id=subtxn_id,
                                  target_reactor=reactor.name)
        future.birth_seq = task.root.effect_seq
        self._touch_reactor(task, reactor)
        frame = self._push_frame(task, reactor, subtxn_id, entered,
                                 call.proc_name, call.args, call.kwargs)
        frame.inline_future = future
        self._step(task, _NOTHING, None)

    def _handle_get(self, task: Task, get: GetEffect) -> None:
        future = get.future
        if future.resolved:
            cost = self.costs.cr_ready if future.remote else 0.0
            self._busy(task, cost, "cr", self._deliver, task, future)
            return
        # Block; release the executor to other tasks.
        task.state = _BLOCKED
        task.blocked_on = future
        task.block_start = self.scheduler.now
        root = task.root
        if task.is_root and root.effect_seq == future.birth_seq + 1:
            # The get immediately followed the call: this wait is the
            # synchronous execution of the sub-transaction.
            task.block_category = "sync_execution"
        else:
            task.block_category = "async_execution"
        # Backend hook: under threads the resolver may live on another
        # OS thread, so the wake-up is relayed onto this container's
        # work queue instead of running on the resolver's thread.
        self.scheduler.add_waiter(future, self._on_future_ready, task,
                                  container=self._cid)
        self.running = None
        self._kick()

    def _on_future_ready(self, task: Task, future: SimFuture) -> None:
        if task.is_root:
            wait = self.scheduler.now - task.block_start
            task.root.charge(task.block_category, wait)
        trace = task.root.trace
        if trace is not None:
            parent = (None if task.is_root
                      else task.invocation.subtxn_id)
            trace.span("wait:" + task.block_category,
                       task.block_start, self.scheduler.now,
                       {"on": future.target_reactor},
                       parent_key=parent)
        task.state = _READY
        task.blocked_on = None
        task.wake_future = future
        self.ready.append(task)
        self._kick()

    def _resume_woken(self, task: Task) -> None:
        future = task.wake_future
        task.wake_future = None
        task.state = _RUNNING
        self.running = task
        assert future is not None
        cost = self.costs.cr if future.remote else 0.0
        self._busy(task, cost, "cr", self._deliver, task, future)

    def _deliver(self, task: Task, future: SimFuture) -> None:
        try:
            value = future.result()
        except TransactionAbort as abort:
            self._step(task, None, abort)
            return
        self._step(task, value, None)

    # ------------------------------------------------------------------
    # Frame completion / abort
    # ------------------------------------------------------------------

    def _frame_done(self, task: Task, result: Any) -> None:
        frame = task.frames.pop()
        if frame.entered:
            frame.reactor.exit(task.root.txn_id, frame.subtxn_id)
        if task.frames:
            # Inline child finished: resolve its future and hand it to
            # the parent synchronously.
            assert frame.inline_future is not None
            frame.inline_future.resolve(result, self.scheduler.now)
            self._step(task, frame.inline_future, None)
            return
        invocation = task.invocation
        if invocation.result_future is not None:
            # Remote sub-transaction finished on this executor.
            invocation.result_future.resolve(result, self.scheduler.now)
            trace = task.root.trace
            if trace is not None:
                trace.close_child(invocation.subtxn_id,
                                  self.scheduler.now)
            self._finish_task(task)
            return
        self._commit_root(task, result)

    def _frame_aborted(self, task: Task, abort: TransactionAbort) -> None:
        frame = task.frames.pop()
        if frame.entered:
            frame.reactor.exit(task.root.txn_id, frame.subtxn_id)
        if task.frames:
            if frame.inline_future is not None:
                frame.inline_future.consumed = True
                frame.inline_future.fail(abort, self.scheduler.now)
            self._step(task, None, abort)
            return
        invocation = task.invocation
        if invocation.result_future is not None:
            invocation.result_future.fail(abort, self.scheduler.now)
            trace = task.root.trace
            if trace is not None:
                trace.close_child(invocation.subtxn_id,
                                  self.scheduler.now,
                                  {"aborted": True})
            self._finish_task(task)
            return
        self._abort_root(task, abort)

    def _finish_task(self, task: Task) -> None:
        task.state = _DONE
        if self.running is task:
            self.running = None
        self._kick()

    # ------------------------------------------------------------------
    # Root commit / abort
    # ------------------------------------------------------------------

    def _commit_root(self, task: Task, result: Any) -> None:
        root = task.root
        participants = root.participants()
        trace = root.trace
        if trace is not None:
            trace.open_child("commit", "commit", self.scheduler.now,
                             {"participants": len(participants)})
        # The container's CC manager prices the commit phase.  Every
        # built-in scheme currently uses the same footprint-shaped
        # formula (see the pricing note in repro.concurrency.locking),
        # but the hook lets a scheme price its commit differently.
        # Snapshot sessions report zero validation reads — their reads
        # pin versions and are never re-checked, so a snapshot-served
        # read-only commit pays only the base fee.
        cost = self.container.concurrency.commit_cost(
            self.costs, root.total_validation_reads(),
            root.total_writes())
        if len(participants) > 1:
            cost += self.costs.tpc_prepare_per_container * \
                len(participants)
        self._busy(task, cost, "commit", self._do_commit, task, result)

    def _do_commit(self, task: Task, result: Any) -> None:
        root = task.root
        participants = root.participants()
        if not participants:
            # A transaction that touched no data commits trivially
            # (e.g. pure-compute procedures, empty transactions).
            self._complete_root(task, True, None, result)
            return
        database = self.container.database
        if any(manager.failed for manager, __ in participants):
            # A participant container crashed under this transaction
            # (replication failover): its writes would land in dead
            # storage, so the commit must not be reported.
            with self.scheduler.commit_guard(root.sessions):
                TwoPhaseCommit(participants).abort(reason=None)
            if database.replication is not None:
                database.replication.stats.failover_aborts += 1
            self._complete_root(task, False, "container failed", None)
            return
        # Backend hook: a no-op guard on sim; under threads it holds
        # the state lock plus every participant container's lock, so
        # validate+install (and the flusher appends / replication ship
        # it triggers) are atomic against the other containers'
        # executing transactions.
        with self.scheduler.commit_guard(root.sessions):
            outcome = TwoPhaseCommit(participants).commit(
                self.scheduler.now)
            root.commit_tid = outcome.commit_tid
            ack_delay = 0.0
            if outcome.committed and database.replication is not None:
                ack_delay = database.replication.on_commit_installed()
            flush_wait = None
            if outcome.committed and database.durability is not None:
                # Group/sync durability: the commit installed, but the
                # client may only see it once its epoch's flush lands.
                flush_wait = database.durability.commit_ack_future(root)
                if flush_wait is not None and flush_wait.resolved:
                    flush_wait = None
        trace = root.trace
        if trace is not None:
            # Commit-phase markers synthesized from the engine-neutral
            # outcome: the batched and reference commit engines return
            # identical CommitOutcomes (the hot-path equivalence
            # contract), so a seeded trace is byte-identical under
            # both.
            now = self.scheduler.now
            if outcome.containers > 1:
                trace.instant("2pc:prepare", now,
                              {"participants": outcome.containers},
                              parent_key="commit")
            if outcome.committed:
                trace.instant("cc:validate", now,
                              {"participants": outcome.containers},
                              parent_key="commit")
                trace.instant("cc:install", now,
                              {"tid": outcome.commit_tid,
                               "writes": outcome.writes},
                              parent_key="commit")
            else:
                trace.instant("cc:abort", now,
                              {"reason": outcome.reason},
                              parent_key="commit")
        if ack_delay <= 0.0 and flush_wait is None:
            self._complete_root(task, outcome.committed, outcome.reason,
                                result if outcome.committed else None)
            return
        # Deferred completion: the client sees the commit only after
        # every replica acked *and* the log flush landed.  The
        # executor core is released while waiting — another admitted
        # task may run, exactly like a block on a remote future.
        if ack_delay > 0.0:
            root.charge("commit_input_gen", ack_delay)
        if self.running is task:
            self.running = None
            self._kick()
        wait_start = self.scheduler.now
        if trace is not None:
            if ack_delay > 0.0:
                # The replica ack window is priced up-front, so the
                # span's extent is known now.
                trace.span("replication:ack_wait", wait_start,
                           wait_start + ack_delay,
                           parent_key="commit")
            if flush_wait is not None:
                trace.open_child("flush_wait", "durability:ack_wait",
                                 wait_start)
        pending = {"n": (1 if ack_delay > 0.0 else 0)
                   + (1 if flush_wait is not None else 0)}

        def signal_done() -> None:
            pending["n"] -= 1
            if pending["n"] == 0:
                self._finish_deferred_commit(task, result)

        if ack_delay > 0.0:
            self.scheduler.after(ack_delay, signal_done)
        if flush_wait is not None:
            def flush_done(fut: SimFuture) -> None:
                # Charge only the flush wait beyond the replication
                # ack window (the waits overlap on the wall clock).
                extra = (self.scheduler.now - wait_start) - ack_delay
                if extra > 0.0:
                    root.charge("commit_input_gen", extra)
                if root.trace is not None:
                    root.trace.close_child("flush_wait",
                                           self.scheduler.now)
                signal_done()
            # Relayed through the backend: the flusher resolves on the
            # client thread, but signal_done touches this executor.
            self.scheduler.add_waiter(flush_wait, flush_done,
                                      container=self._cid)

    def _finish_deferred_commit(self, task: Task, result: Any) -> None:
        """Deferred completion of a sync-replicated or group-commit
        durable transaction.

        If a participant container died during the wait window, the
        replication manager resolves the in-doubt outcome: when every
        failed participant's promoted successor holds this commit's
        record (the sync channel drain guarantees it once promotion
        ran), it is reported committed; otherwise conservatively as an
        abort rather than as a commit that failover could lose.
        """
        root = task.root
        database = self.container.database
        if any(manager.failed for manager, __ in root.participants()):
            replication = database.replication
            if replication is not None and \
                    replication.commit_survived(root):
                self._complete_root(task, True, None, result)
                return
            if replication is not None:
                replication.stats.failover_aborts += 1
            self._complete_root(
                task, False, "container failed before replication ack",
                None)
            return
        self._complete_root(task, True, None, result)

    def _abort_root(self, task: Task, abort: TransactionAbort) -> None:
        root = task.root
        root.user_abort = not isinstance(
            abort, (DangerousStructureAbort, CCAbort))
        participants = root.participants()
        if participants:
            # CC-initiated aborts (lock conflicts, wounds...) were
            # already counted at their raise site; attribute only
            # application/safety aborts here.
            if isinstance(abort, CCAbort):
                reason = None
            elif isinstance(abort, DangerousStructureAbort):
                reason = "dangerous_structure"
            else:
                reason = "user"
            with self.scheduler.commit_guard(root.sessions):
                TwoPhaseCommit(participants).abort(reason)
        self._busy(task, self.costs.abort_cost, "commit",
                   self._complete_root, task, False, str(abort), None)

    def _complete_root(self, task: Task, committed: bool,
                       reason: str | None, result: Any) -> None:
        root = task.root
        root.finished = True
        for reactor in root.reactor_refs:
            reactor.inflight_roots.discard(root.txn_id)
        database = self.container.database
        # Backend hook: telemetry counters, durability ack sets, the
        # snapshot-pin watermark and the history recorder are shared
        # across containers — a no-op guard on sim, the state lock on
        # the threads backend.
        with self.scheduler.state_guard():
            database.telemetry.note_root_done(root, committed, reason,
                                              self.scheduler.now)
            if database.durability is not None:
                # This is the acknowledgement instant: the set of
                # commits clients saw is what crash certification
                # holds recovery to (acked => durable for sync/group;
                # async reports its loss window instead).
                if committed:
                    database.durability.note_acked(root)
                else:
                    database.durability.note_unacked(root)
            # Release the root's pinned snapshot (if any): the storage
            # GC watermark advances with the in-flight snapshot set,
            # so the next install can prune versions only this root
            # could see.
            database.storage.unpin(root.txn_id)
            if not committed and root.read_only:
                database.storage.note_read_only_abort(
                    database.deployment.cc_scheme)
            recorder = database.history_recorder
            if recorder is not None:
                if committed:
                    recorder.record_commit(root.txn_id)
                else:
                    recorder.record_abort(root.txn_id)
        self._finish_task(task)
        callback = task.invocation.on_root_done
        if callback is not None:
            self.scheduler.after(self.costs.transport_delay, callback,
                                 root, committed, reason, result)


#: Charge-category -> Figure 6 breakdown bucket.
_BREAKDOWN = {
    "exec": "sync_execution",
    "cs": "cs",
    "cr": "cr",
    "commit": "commit_input_gen",
}
