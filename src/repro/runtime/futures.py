"""Futures (promises) for asynchronous procedure calls.

Invoking a procedure on another reactor returns a :class:`SimFuture`
(the paper's promise, after Liskov & Shrira).  The calling code can
wait on it, call other procedures first, or never touch it — the
runtime implicitly synchronizes on all outstanding futures when the
enclosing (sub-)transaction completes.

``remote`` records whether the call crossed transaction executors,
which determines whether consuming the result pays the expensive
receive-path cost Cr (a thread switch) or only a flag check.

:class:`SimFuture` is single-threaded (the simulation's event loop is
serial); :class:`ThreadSafeFuture` is the drop-in used by the
``threads`` execution backend, where resolver and waiter live on
different OS threads — state transitions run under a per-future
condition variable and a blocking :meth:`ThreadSafeFuture.wait` is
added for code that genuinely parks an OS thread.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.errors import SimulationError

_PENDING = "pending"
_RESOLVED = "resolved"
_FAILED = "failed"


class SimFuture:
    """Result placeholder for an asynchronous sub-transaction."""

    __slots__ = ("state", "value", "error", "remote", "consumed",
                 "birth_seq", "resolved_at", "_waiter", "_waiter_args",
                 "subtxn_id", "target_reactor")

    def __init__(self, remote: bool, subtxn_id: int,
                 target_reactor: str) -> None:
        self.state = _PENDING
        self.value: Any = None
        self.error: BaseException | None = None
        self.remote = remote
        #: Set when application code (or the implicit frame-end sync)
        #: consumed the result.
        self.consumed = False
        #: Task effect counter at creation; used to classify waits as
        #: sync-execution vs async-execution in latency breakdowns.
        self.birth_seq = 0
        self.resolved_at: float | None = None
        self._waiter: Callable[..., None] | None = None
        self._waiter_args: tuple = ()
        self.subtxn_id = subtxn_id
        self.target_reactor = target_reactor

    @property
    def resolved(self) -> bool:
        return self.state != _PENDING

    @property
    def failed(self) -> bool:
        return self.state == _FAILED

    def resolve(self, value: Any, now: float) -> None:
        if self.state != _PENDING:
            raise SimulationError("future resolved twice")
        self.state = _RESOLVED
        self.value = value
        self.resolved_at = now
        self._notify()

    def fail(self, error: BaseException, now: float) -> None:
        if self.state != _PENDING:
            raise SimulationError("future resolved twice")
        self.state = _FAILED
        self.error = error
        self.resolved_at = now
        self._notify()

    def add_waiter(self, callback: Callable[..., None],
                   *args: Any) -> None:
        """At most one waiter: the task blocked on this future.

        Extra ``args`` are passed through to the callback as
        ``callback(*args, future)`` — bound arguments instead of a
        fresh closure per wait (the executor's hot path).  With no
        extra args the callback is invoked as ``callback(future)``,
        preserving the original single-argument contract.
        """
        if self._waiter is not None:
            raise SimulationError(
                "two waiters on one future: a sub-transaction result can "
                "only be awaited by its calling transaction"
            )
        self._waiter = callback
        self._waiter_args = args
        if self.state != _PENDING:
            self._notify()

    def _notify(self) -> None:
        waiter = self._waiter
        if waiter is not None and self.state != _PENDING:
            args = self._waiter_args
            self._waiter = None
            self._waiter_args = ()
            if args:
                waiter(*args, self)
            else:
                waiter(self)

    def result(self) -> Any:
        """The resolved value; raises the sub-transaction's error."""
        if not self.resolved:
            raise SimulationError("result() on unresolved future")
        self.consumed = True
        if self.state == _FAILED:
            assert self.error is not None
            raise self.error
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SimFuture({self.state}, sub={self.subtxn_id}, "
                f"target={self.target_reactor!r}, remote={self.remote})")


class ThreadSafeFuture(SimFuture):
    """A :class:`SimFuture` whose resolver and waiter may be on
    different OS threads (the ``threads`` execution backend).

    The state transition (pending → resolved/failed) and the waiter
    handoff are serialized under a per-future condition variable; the
    waiter callback itself is invoked *outside* the lock, so a
    callback that re-enters the future (or takes backend locks) cannot
    deadlock against a concurrent ``resolve``.
    """

    __slots__ = ("_cond",)

    def __init__(self, remote: bool, subtxn_id: int,
                 target_reactor: str) -> None:
        super().__init__(remote, subtxn_id, target_reactor)
        self._cond = threading.Condition(threading.Lock())

    def resolve(self, value: Any, now: float) -> None:
        with self._cond:
            if self.state != _PENDING:
                raise SimulationError("future resolved twice")
            self.state = _RESOLVED
            self.value = value
            self.resolved_at = now
            waiter, args = self._take_waiter()
            self._cond.notify_all()
        self._invoke(waiter, args)

    def fail(self, error: BaseException, now: float) -> None:
        with self._cond:
            if self.state != _PENDING:
                raise SimulationError("future resolved twice")
            self.state = _FAILED
            self.error = error
            self.resolved_at = now
            waiter, args = self._take_waiter()
            self._cond.notify_all()
        self._invoke(waiter, args)

    def add_waiter(self, callback: Callable[..., None],
                   *args: Any) -> None:
        with self._cond:
            if self._waiter is not None:
                raise SimulationError(
                    "two waiters on one future: a sub-transaction "
                    "result can only be awaited by its calling "
                    "transaction"
                )
            if self.state == _PENDING:
                self._waiter = callback
                self._waiter_args = args
                return
        # Already resolved: notify immediately, outside the lock.
        self._invoke(callback, args)

    def wait(self, timeout: float | None = None) -> bool:
        """Block the calling OS thread until resolution; ``True`` when
        the future resolved within ``timeout`` seconds."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self.state != _PENDING, timeout)

    def _take_waiter(self) -> tuple[Callable[..., None] | None, tuple]:
        waiter = self._waiter
        args = self._waiter_args
        self._waiter = None
        self._waiter_args = ()
        return waiter, args

    def _invoke(self, waiter: Callable[..., None] | None,
                args: tuple) -> None:
        if waiter is None:
            return
        if args:
            waiter(*args, self)
        else:
            waiter(self)
