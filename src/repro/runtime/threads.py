"""The ``threads`` execution backend: real hardware, wall-clock time.

One OS thread per container plus a *client* thread (root completion
callbacks, workload workers, timer expirations) and a *timer* thread
(a heap of wall-clock deadlines).  Timestamps are
``time.monotonic_ns`` readings converted to microseconds since the
backend's construction, so the runtime's cost charges map to real CPU
work instead of virtual sleeps — the modeled microseconds are still
accounted (utilization breakdowns keep working) but never slept.

Threading model (see ``docs/backends.md`` for the full argument):

* every callback posted to a container runs on that container's one
  worker thread, under that container's re-entrant lock — all data
  operations on a reactor therefore run serialized on its container's
  thread, mirroring the paper's "one executor pins one core";
* client-queue callbacks run under the backend's global *state* lock
  (``self.lock``), which also guards shared database bookkeeping
  (transaction counters, snapshot pins, telemetry counters) via
  :meth:`state_guard`;
* a cross-container commit/abort takes :meth:`commit_guard`: release
  the caller's own container lock, acquire the state lock, then every
  participant's container lock in sorted order.  No thread ever waits
  for the state lock while holding a container lock (the guards
  release first), and participant locks are only acquired under the
  state lock — the classic ordering argument that makes the protocol
  deadlock-free;
* tiny scheduling delays (at most :data:`INLINE_DELAY_US`) execute
  inline on the calling thread with a depth bound — they model CPU
  costs already subsumed by real execution overhead, and keeping them
  off the timer thread keeps the hot path queue-free.  Longer delays
  (group-commit flush intervals, fsync completions, measurement
  warmup marks) go to the timer thread and fire on the client queue.

Work queues are bounded at *root admission*: :meth:`admit_root`
refuses new root transactions when an executor's backlog exceeds
``root_admission_bound`` (load shedding, counted in ``shed_roots``).
Shedding only roots — never internal continuations — keeps memory
bounded without ever wedging an in-flight commit.

Free threading: under a free-threaded build (PEP 703, ``3.13t``)
container threads execute truly in parallel and wall-clock throughput
scales with container count.  Under the GIL the backend is correct
but serialized — scale-up numbers are report-only there (the bench
meta block records :func:`gil_enabled`).
"""

from __future__ import annotations

import sys
import threading
import time
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Iterable

from repro.errors import SimulationError
from repro.runtime.futures import ThreadSafeFuture

#: Delays at or below this many microseconds execute inline on the
#: calling thread instead of arming a wall-clock timer.  Every
#: modeled per-hop cost (Cs=3, Cr=9, client_receive=12, ...) sits
#: below it; every real pipeline timer (fsync=30, flush interval=50)
#: sits above it.
INLINE_DELAY_US = 25.0

#: Inline continuations deeper than this bounce to a queue instead of
#: growing the C stack (a whole transaction can otherwise execute as
#: one recursive inline chain).
MAX_INLINE_DEPTH = 64

_CLIENT = -1


def gil_enabled() -> bool:
    """Is the GIL active in this interpreter?  ``False`` only on a
    free-threaded build running with the GIL disabled."""
    checker = getattr(sys, "_is_gil_enabled", None)
    if checker is None:
        return True
    return bool(checker())


class _QueueItem:
    """One posted callback; cancellable until executed."""

    __slots__ = ("fn", "args", "cancelled")

    def __init__(self, fn: Callable[..., Any], args: tuple) -> None:
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        # The worker checks the flag right before invoking; a cancel
        # racing the execution may still run the callback, exactly
        # like a sim Event cancelled from within its own dispatch.
        self.cancelled = True


class _TimerHandle:
    """A wall-clock deadline on the timer heap; cancellable."""

    __slots__ = ("fn", "args", "state", "backend")

    def __init__(self, backend: "ThreadsBackend",
                 fn: Callable[..., Any], args: tuple) -> None:
        self.backend = backend
        self.fn = fn
        self.args = args
        self.state = "queued"

    @property
    def cancelled(self) -> bool:
        return self.state == "cancelled"

    def cancel(self) -> None:
        backend = self.backend
        with backend._timer_cond:
            if self.state != "queued":
                return
            self.state = "cancelled"
            self.fn = None  # type: ignore[assignment]
            self.args = ()
            backend._timer_cond.notify()
        backend._retire()


class _WorkQueue:
    """One thread's FIFO of posted callbacks."""

    __slots__ = ("items", "cond", "max_depth")

    def __init__(self) -> None:
        self.items: deque[Any] = deque()
        self.cond = threading.Condition(threading.Lock())
        self.max_depth = 0

    def put(self, item: Any) -> None:
        with self.cond:
            self.items.append(item)
            depth = len(self.items)
            if depth > self.max_depth:
                self.max_depth = depth
            self.cond.notify()

    def take(self) -> Any:
        with self.cond:
            while not self.items:
                self.cond.wait()
            return self.items.popleft()

    def __len__(self) -> int:
        return len(self.items)


class _Relay:
    """Future-waiter shim: hop the wake-up onto the owner's queue."""

    __slots__ = ("backend", "container", "callback")

    def __init__(self, backend: "ThreadsBackend", container: int,
                 callback: Callable[..., None]) -> None:
        self.backend = backend
        self.container = container
        self.callback = callback

    def __call__(self, *args: Any) -> None:
        self.backend.post(self.container, self.callback, *args)


class _Stop:
    pass


_STOP = _Stop()


class ThreadsBackend:
    """Wall-clock execution backend: one OS thread per container."""

    name = "threads"
    is_virtual = False
    future_class = ThreadSafeFuture

    def __init__(self, root_admission_bound: int = 10_000) -> None:
        #: The global state lock; guard for client-queue callbacks and
        #: :meth:`state_guard` / :meth:`commit_guard` critical regions.
        self.lock = threading.RLock()
        #: Refuse new roots when an executor's backlog exceeds this.
        self.root_admission_bound = root_admission_bound
        #: Roots refused by :meth:`admit_root` (load shedding).
        self.shed_roots = 0
        self._origin_ns = time.monotonic_ns()
        self._tls = threading.local()
        self._container_locks: list[threading.RLock] = []
        self._queues: dict[int, _WorkQueue] = {
            _CLIENT: _WorkQueue()}
        self._threads: list[threading.Thread] = []
        self._busy_ns: dict[int, int] = {_CLIENT: 0}
        # Quiesce accounting: one unit per queued callback or armed
        # timer, retired after execution/cancellation.  `_acct` is a
        # leaf lock — never held while acquiring any other.
        self._acct = threading.Condition(threading.Lock())
        self._outstanding = 0
        self._dispatched = 0
        self._error: BaseException | None = None
        self._running = False
        self._stopping = False
        # Timer heap: (deadline_ns, seq, handle), guarded by its own
        # condition; a dedicated thread sleeps until the head is due.
        self._timer_heap: list[tuple[int, int, _TimerHandle]] = []
        self._timer_cond = threading.Condition(threading.Lock())
        self._timer_seq = 0
        self._started = False

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Wall-clock microseconds since backend construction."""
        return (time.monotonic_ns() - self._origin_ns) / 1_000.0

    @property
    def events_dispatched(self) -> int:
        return self._dispatched

    def pending(self) -> int:
        """Outstanding scheduled work: queued callbacks plus armed
        timers (in-flight callbacks count until they finish)."""
        return self._outstanding

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self, n_containers: int) -> None:
        """Start the per-container worker threads plus the client and
        timer threads; called once by ``ReactorDatabase._build``."""
        if self._started:
            raise SimulationError("threads backend already attached")
        self._started = True
        for cid in range(n_containers):
            self._container_locks.append(threading.RLock())
            self._queues[cid] = _WorkQueue()
            self._busy_ns[cid] = 0
            thread = threading.Thread(
                target=self._worker_loop,
                args=(cid, self._queues[cid],
                      self._container_locks[cid]),
                name=f"repro-container-{cid}", daemon=True)
            self._threads.append(thread)
        self._threads.append(threading.Thread(
            target=self._worker_loop,
            args=(_CLIENT, self._queues[_CLIENT], self.lock),
            name="repro-client", daemon=True))
        self._threads.append(threading.Thread(
            target=self._timer_loop, name="repro-timer", daemon=True))
        for thread in self._threads:
            thread.start()

    def shutdown(self) -> None:
        """Stop every backend thread (idempotent).  Pending work is
        abandoned; call after :meth:`run` has quiesced."""
        if not self._started or self._stopping:
            return
        self._stopping = True
        with self._timer_cond:
            self._timer_cond.notify()
        for queue in self._queues.values():
            queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=2.0)

    # ------------------------------------------------------------------
    # Scheduling surface (the SimScheduler-compatible event-loop API)
    # ------------------------------------------------------------------

    def at(self, timestamp: float, fn: Callable[..., Any],
           *args: Any) -> Any:
        """Schedule ``fn(*args)`` at an absolute wall timestamp
        (microseconds on this backend's clock)."""
        return self.after(timestamp - self.now, fn, *args)

    def after(self, delay: float, fn: Callable[..., Any],
              *args: Any) -> Any:
        if delay < -1e-9:
            raise SimulationError(f"negative delay: {delay}")
        if delay <= INLINE_DELAY_US:
            return self._inline(fn, args)
        handle = _TimerHandle(self, fn, args)
        deadline = time.monotonic_ns() + int(delay * 1_000)
        self._admit()
        with self._timer_cond:
            self._timer_seq += 1
            heappush(self._timer_heap,
                     (deadline, self._timer_seq, handle))
            self._timer_cond.notify()
        return handle

    def soon(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn(*args)`` on the calling thread's own context —
        the current container's queue on a worker thread, the client
        queue elsewhere."""
        return self.post(getattr(self._tls, "container_id", _CLIENT),
                         fn, *args)

    def post(self, container_id: int, fn: Callable[..., Any],
             *args: Any) -> _QueueItem:
        """Enqueue ``fn(*args)`` on ``container_id``'s worker thread
        (``-1``/client for non-container work).  Never blocks."""
        item = _QueueItem(fn, args)
        self._admit()
        self._queues[container_id].put(item)
        return item

    def busy(self, micros: float, fn: Callable[..., Any],
             *args: Any) -> Any:
        """Continue with ``fn(*args)`` immediately: on real hardware
        the modeled occupancy is subsumed by actual CPU work (the
        caller still accounts the modeled microseconds)."""
        return self._inline(fn, args)

    def _inline(self, fn: Callable[..., Any], args: tuple) -> None:
        tls = self._tls
        depth = getattr(tls, "depth", 0)
        if depth >= MAX_INLINE_DEPTH:
            self.post(getattr(tls, "container_id", _CLIENT),
                      fn, *args)
            return None
        tls.depth = depth + 1
        try:
            fn(*args)
        finally:
            tls.depth = depth
        return None

    # ------------------------------------------------------------------
    # Backend hooks
    # ------------------------------------------------------------------

    def add_waiter(self, future: Any, callback: Callable[..., None],
                   *args: Any, container: int | None = None) -> None:
        """Register a waiter whose wake-up is relayed onto the owning
        container's queue — the resolver may be any thread, but the
        callback mutates executor state that belongs to one thread."""
        target = _CLIENT if container is None else container
        future.add_waiter(_Relay(self, target, callback), *args)

    def state_guard(self) -> Any:
        return _StateGuard(self)

    def commit_guard(self, container_ids: Iterable[int]) -> Any:
        return _CommitGuard(self, sorted(set(container_ids)))

    def admit_root(self, executor: Any) -> bool:
        """Bounded intake: may this executor accept another root?"""
        if len(executor.queue) + len(executor.ready) \
                < self.root_admission_bound:
            return True
        self.shed_roots += 1
        return False

    # ------------------------------------------------------------------
    # Quiesce
    # ------------------------------------------------------------------

    def run(self, until: float | None = None,
            max_events: int | None = None) -> None:
        """Block until the system quiesces.

        Quiescence means no queued or in-flight callbacks and no armed
        timers (with ``until``: none due at or before ``until`` — the
        same inclusive boundary contract as the sim scheduler; later
        timers stay armed).  ``max_events`` is accepted for interface
        compatibility but unenforced — wall-clock runs are bounded by
        real time, not event counts.
        """
        if self._running:
            raise SimulationError("backend run() is not re-entrant")
        if not self._started:
            raise SimulationError(
                "threads backend not attached to a database")
        self._running = True
        try:
            deadline_ns = None
            if until is not None:
                self._origin_check(until)
                deadline_ns = self._origin_ns + int(until * 1_000)
            while True:
                with self._acct:
                    if self._error is not None:
                        error, self._error = self._error, None
                        raise error
                    if self._outstanding == 0:
                        break
                    if deadline_ns is not None and \
                            self._outstanding == self._timers_after(
                                deadline_ns):
                        break
                    self._acct.wait(timeout=0.05)
            if deadline_ns is not None:
                remaining = deadline_ns - time.monotonic_ns()
                if remaining > 0:
                    time.sleep(remaining / 1e9)
        finally:
            self._running = False

    def _origin_check(self, until: float) -> None:
        if until < 0:
            raise SimulationError(
                f"cannot run until a negative timestamp: {until}")

    def _timers_after(self, deadline_ns: int) -> int:
        """Armed timers strictly beyond ``deadline_ns`` — outstanding
        work that must *not* hold up a bounded ``run(until=...)``."""
        with self._timer_cond:
            return sum(1 for when, __, handle in self._timer_heap
                       if when > deadline_ns
                       and handle.state == "queued")

    def _admit(self) -> None:
        with self._acct:
            self._outstanding += 1

    def _retire(self) -> None:
        with self._acct:
            self._outstanding -= 1
            # Every retirement may complete quiescence — including the
            # timers-only state a bounded run(until=...) waits on.
            self._acct.notify_all()

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------

    def _worker_loop(self, cid: int, queue: _WorkQueue,
                     lock: Any) -> None:
        tls = self._tls
        if cid != _CLIENT:
            tls.container_id = cid
            tls.container_lock = lock
        tls.depth = 0
        busy_ns = self._busy_ns
        while True:
            item = queue.take()
            if item is _STOP:
                return
            if item.cancelled:
                self._retire()
                continue
            start = time.monotonic_ns()
            lock.acquire()
            tls.lock_held = True
            try:
                item.fn(*item.args)
            except BaseException as error:  # noqa: BLE001
                with self._acct:
                    if self._error is None:
                        self._error = error
            finally:
                tls.lock_held = False
                lock.release()
            busy_ns[cid] += time.monotonic_ns() - start
            self._dispatched += 1
            self._retire()

    def _timer_loop(self) -> None:
        heap = self._timer_heap
        cond = self._timer_cond
        while True:
            fire: _TimerHandle | None = None
            with cond:
                if self._stopping:
                    return
                if not heap:
                    cond.wait(timeout=0.5)
                    continue
                deadline, __, handle = heap[0]
                if handle.state == "cancelled":
                    heappop(heap)
                    continue
                wait_ns = deadline - time.monotonic_ns()
                if wait_ns > 0:
                    cond.wait(timeout=wait_ns / 1e9)
                    continue
                heappop(heap)
                handle.state = "fired"
                fire = handle
            # Outside the timer lock: enqueue on the client thread
            # (admits a new unit), then retire the timer's own unit.
            self._queues[_CLIENT].put(
                _QueueItem(fire.fn, fire.args))
            self._admit_transfer()

    def _admit_transfer(self) -> None:
        # A fired timer converts 1:1 into a queued callback; the
        # outstanding count is unchanged but run(until=...) waiters
        # must re-examine the timers-only condition.
        with self._acct:
            self._acct.notify_all()

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def container_busy_us(self) -> dict[int, float]:
        """Measured wall-clock busy time per container thread (the
        client thread reports under id ``-1``); feeds
        :func:`repro.costmodel.calibration.fit_measured_costs`."""
        return {cid: ns / 1_000.0
                for cid, ns in sorted(self._busy_ns.items())}

    def queue_depths(self) -> dict[int, int]:
        """High-water mark of each work queue (diagnostics)."""
        return {cid: queue.max_depth
                for cid, queue in sorted(self._queues.items())}


class _StateGuard:
    """Acquire the backend state lock; release the calling worker's
    own container lock first (re-acquired on exit) so no thread ever
    waits for the state lock while holding a container lock."""

    __slots__ = ("backend", "_released")

    def __init__(self, backend: ThreadsBackend) -> None:
        self.backend = backend
        self._released: Any = None

    def __enter__(self) -> "_StateGuard":
        tls = self.backend._tls
        own = getattr(tls, "container_lock", None)
        if own is not None and getattr(tls, "lock_held", False):
            own.release()
            tls.lock_held = False
            self._released = own
        self.backend.lock.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.backend.lock.release()
        own = self._released
        if own is not None:
            own.acquire()
            self.backend._tls.lock_held = True


class _CommitGuard(_StateGuard):
    """State lock plus every participant's container lock, acquired
    in sorted container-id order.  Only one commit/abort is in flight
    at a time (the state lock is exclusive), so the per-guard sorted
    order can never interleave into a cycle."""

    __slots__ = ("container_ids",)

    def __init__(self, backend: ThreadsBackend,
                 container_ids: list[int]) -> None:
        super().__init__(backend)
        self.container_ids = container_ids

    def __enter__(self) -> "_CommitGuard":
        super().__enter__()
        for cid in self.container_ids:
            self.backend._container_locks[cid].acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        for cid in reversed(self.container_ids):
            self.backend._container_locks[cid].release()
        super().__exit__(*exc)


__all__ = [
    "INLINE_DELAY_US",
    "MAX_INLINE_DEPTH",
    "ThreadsBackend",
    "gil_enabled",
]
