"""Root-transaction bookkeeping.

A :class:`RootTransaction` tracks everything the runtime needs about
one top-level procedure invocation: per-container CC sessions,
sub-transaction numbering, cache-warmth of touched reactors, the
latency breakdown by cost-model category, and the commit outcome.

Latency breakdown categories follow Figure 6 of the paper:

* ``sync_execution`` — processing logic and synchronous
  sub-transactions (the first two cost-equation components);
* ``cs`` / ``cr`` — communication costs to send invocations and
  receive results;
* ``async_execution`` — time blocked on overlapped asynchronous
  sub-transactions (the ``max(...)`` component);
* ``commit_input_gen`` — commit protocol (OCC + 2PC), input generation
  and client dispatch overheads (applies to root transactions only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.concurrency.base import CCSession, ConcurrencyControl

CATEGORIES = (
    "sync_execution",
    "cs",
    "cr",
    "async_execution",
    "commit_input_gen",
)


@dataclass(slots=True)
class TxnStats:
    """Measurement record for one finished root transaction."""

    txn_id: int
    procedure: str
    reactor: str
    committed: bool
    abort_reason: str | None
    start: float
    end: float
    breakdown: dict[str, float] = field(default_factory=dict)
    containers: int = 1
    remote_calls: int = 0
    reads: int = 0
    writes: int = 0
    user_abort: bool = False
    commit_tid: int = 0

    @property
    def latency(self) -> float:
        return self.end - self.start


class RootTransaction:
    """Runtime state of one in-flight root transaction."""

    __slots__ = (
        "txn_id", "procedure", "reactor_name", "start_time",
        "sessions", "_subtxn_counter", "touched_reactors",
        "breakdown", "remote_calls", "on_complete", "finished",
        "user_abort", "client_worker", "effect_seq", "commit_tid",
        "doomed", "read_only", "reactor_refs", "snapshot_tid",
        "trace",
    )

    def __init__(self, txn_id: int, procedure: str, reactor_name: str,
                 start_time: float,
                 on_complete: Callable[["RootTransaction", TxnStats], None]
                 | None = None) -> None:
        self.txn_id = txn_id
        self.procedure = procedure
        self.reactor_name = reactor_name
        self.start_time = start_time
        #: container id -> (manager, session)
        self.sessions: dict[int, tuple[ConcurrencyControl, CCSession]] = {}
        self._subtxn_counter = 0
        #: reactor name -> data-operation cost multiplier fixed at the
        #: transaction's first touch (cache-affinity model: 1.0 warm,
        #: up to cold_access_factor when fully cold).
        self.touched_reactors: dict[str, float] = {}
        #: The reactor *instances* behind ``touched_reactors``: online
        #: migration drains on per-instance in-flight root sets, which
        #: the executor clears through these references at completion.
        self.reactor_refs: list[Any] = []
        self.breakdown: dict[str, float] = {c: 0.0 for c in CATEGORIES}
        self.remote_calls = 0
        self.on_complete = on_complete
        self.finished = False
        self.user_abort = False
        #: Set when a CC scheme condemned this transaction in *any*
        #: container (2PL wound): its sessions everywhere observe it.
        self.doomed = False
        #: Declared read-only (procedure annotation or submit flag):
        #: eligible for read-replica routing; writes abort at
        #: buffering time.
        self.read_only = False
        #: Begin-TID snapshot pinned for this root (multi-version
        #: snapshot reads); ``None`` until the first data operation of
        #: a snapshot-served read-only root, and forever for everything
        #: else.
        self.snapshot_tid: int | None = None
        self.commit_tid = 0
        self.client_worker: Any = None
        #: :class:`~repro.telemetry.spans.TraceHandle` when this root
        #: was sampled for tracing; ``None`` otherwise (the common
        #: case — every instrumentation site guards on it).
        self.trace: Any = None
        #: Monotonic effect counter of the root task; used to classify
        #: future waits as sync vs async execution.
        self.effect_seq = 0

    def next_subtxn_id(self) -> int:
        self._subtxn_counter += 1
        return self._subtxn_counter

    def session_for(self, container: Any) -> CCSession:
        """The CC session in ``container``, created on first touch.

        Read-only roots get a snapshot session (pinned at their begin
        snapshot, no locks, no validation) when the deployment
        snapshots reads; everything else gets the container scheme's
        regular session.
        """
        entry = self.sessions.get(container.container_id)
        if entry is None:
            manager = container.concurrency
            session = None
            if self.read_only:
                database = getattr(container, "database", None)
                if database is not None:
                    session = database.begin_snapshot_session(
                        self, container)
            if session is None:
                session = manager.begin_session(self.txn_id)
            session.owner = self
            self.sessions[container.container_id] = (manager, session)
            return session
        return entry[1]

    def participants(self) -> list[tuple[ConcurrencyControl, CCSession]]:
        return [self.sessions[cid] for cid in sorted(self.sessions)]

    def charge(self, category: str, micros: float) -> None:
        self.breakdown[category] = self.breakdown.get(category, 0.0) \
            + micros

    def total_reads(self) -> int:
        return sum(s.read_count for __, s in self.sessions.values())

    def total_validation_reads(self) -> int:
        """Reads the commit phase must re-validate (0 per snapshot
        session — the pricing behind mvocc's cheap read-only commit)."""
        return sum(s.validation_read_count
                   for __, s in self.sessions.values())

    def total_writes(self) -> int:
        return sum(s.write_count for __, s in self.sessions.values())

    def make_stats(self, end_time: float, committed: bool,
                   abort_reason: str | None) -> TxnStats:
        return TxnStats(
            txn_id=self.txn_id,
            procedure=self.procedure,
            reactor=self.reactor_name,
            committed=committed,
            abort_reason=abort_reason,
            start=self.start_time,
            end=end_time,
            breakdown=dict(self.breakdown),
            containers=len(self.sessions),
            remote_calls=self.remote_calls,
            reads=self.total_reads(),
            writes=self.total_writes(),
            user_abort=self.user_abort,
            commit_tid=self.commit_tid,
        )
