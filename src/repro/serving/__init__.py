"""The networked serving layer: clients on the other side of a wire.

Everything below this package fronts a
:class:`~repro.core.database.ReactorDatabase` to *remote* clients over
asyncio TCP, so transactions originate outside the process — the
black-box setting the snapshot-isolation checking literature assumes,
and the boundary ROADMAP item 1 asks for on the path to "millions of
clients".

* :mod:`repro.serving.protocol` — length-prefixed frames, typed
  request/response/error messages, version + codec negotiation
  (msgpack when available, JSON always);
* :mod:`repro.serving.server` — the asyncio TCP server: session
  multiplexing (many logical sessions per connection, out-of-order
  responses matched by request id) and wire-level admission control
  (bounded in-flight requests; excess load is shed with a typed
  ``overloaded`` response carrying a retry-after hint, never parked
  unboundedly);
* :mod:`repro.serving.loadgen` — the open-loop load generator:
  Poisson/fixed-rate arrival schedules with coordinated-omission-aware
  latency recording (latency measured from *intended* send time).

The client half of the wire lives in :mod:`repro.client`
(:class:`~repro.client.TcpClient`); see ``docs/serving.md`` for the
protocol spec and methodology notes.
"""

from repro.serving.loadgen import (
    ArrivalSchedule,
    OpenLoopResult,
    run_open_loop,
)
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    FrameDecoder,
    Overloaded,
    TornFrameError,
    WireProtocolError,
)
from repro.serving.server import ReactorServer, ServerThread, serve_in_thread

__all__ = [
    "PROTOCOL_VERSION",
    "ArrivalSchedule",
    "FrameDecoder",
    "OpenLoopResult",
    "Overloaded",
    "ReactorServer",
    "ServerThread",
    "TornFrameError",
    "WireProtocolError",
    "run_open_loop",
    "serve_in_thread",
]
