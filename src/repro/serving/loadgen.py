"""Open-loop load generation with coordinated-omission-aware recording.

Closed-loop benchmarks (``repro.bench``) measure what N captive
workers experience: each worker waits for its previous transaction
before issuing the next, so a slow server *slows the clients down* and
the recorded latencies silently exclude the requests that were never
sent.  That artifact is *coordinated omission*, and it makes tail
latencies look far better than what an independent client population
would see.

The open-loop generator here avoids it by construction:

* an :class:`ArrivalSchedule` fixes every request's *intended* send
  time before the run starts (fixed-interval or Poisson arrivals at a
  target rate) — arrivals do not react to the server;
* each request's latency is measured from its **intended** send time
  to its completion, not from when the sender thread actually got
  around to writing it.  If the sender falls behind, the queueing delay
  it induced is charged to the requests, exactly as a real independent
  client would experience it;
* the sender never re-anchors the schedule — a stall makes subsequent
  requests late (and their recorded latency larger), it does not
  quietly stretch the experiment.

Percentiles are exact nearest-rank over every recorded sample — no
histogram bucketing error at the p999 tail.
"""

from __future__ import annotations

import math
import random
import threading
import time
from typing import Any, Callable

#: A request factory: index -> (reactor, proc, args).
SpecFor = Callable[[int], tuple[str, str, tuple]]


class ArrivalSchedule:
    """Intended send times (seconds from run start) for one run.

    Built ahead of the run so arrivals are independent of server
    behavior — the defining property of an open-loop workload.
    """

    __slots__ = ("kind", "rate_tps", "offsets_s")

    def __init__(self, kind: str, rate_tps: float,
                 offsets_s: list[float]) -> None:
        self.kind = kind
        self.rate_tps = rate_tps
        self.offsets_s = offsets_s

    def __len__(self) -> int:
        return len(self.offsets_s)

    @classmethod
    def fixed(cls, rate_tps: float, count: int) -> "ArrivalSchedule":
        """Deterministic arrivals every ``1/rate`` seconds."""
        if rate_tps <= 0:
            raise ValueError("arrival rate must be positive")
        gap = 1.0 / rate_tps
        return cls("fixed", rate_tps,
                   [i * gap for i in range(count)])

    @classmethod
    def poisson(cls, rate_tps: float, count: int,
                seed: int = 42) -> "ArrivalSchedule":
        """Memoryless arrivals: exponential gaps at mean ``1/rate``."""
        if rate_tps <= 0:
            raise ValueError("arrival rate must be positive")
        rng = random.Random(seed)
        offsets: list[float] = []
        at = 0.0
        for _ in range(count):
            at += rng.expovariate(rate_tps)
            offsets.append(at)
        return cls("poisson", rate_tps, offsets)


def _nearest_rank(sorted_us: list[float], pct: float) -> float:
    """Exact nearest-rank percentile of an ascending sample list."""
    if not sorted_us:
        return 0.0
    # The epsilon keeps an exact rank exact: 99.9% of 1000 computes
    # to 999.0000000000001 in floats, which must not ceil to 1000.
    rank = math.ceil(pct / 100.0 * len(sorted_us) - 1e-9)
    return sorted_us[min(max(rank, 1), len(sorted_us)) - 1]


class OpenLoopResult:
    """What one open-loop run produced, percentiles included."""

    __slots__ = ("schedule", "offered", "committed", "shed", "failed",
                 "duration_s", "latencies_us", "max_send_lag_us")

    def __init__(self, schedule: ArrivalSchedule, offered: int,
                 committed: int, shed: int, failed: int,
                 duration_s: float, latencies_us: list[float],
                 max_send_lag_us: float) -> None:
        self.schedule = schedule
        self.offered = offered
        self.committed = committed
        self.shed = shed
        self.failed = failed
        self.duration_s = duration_s
        #: Ascending intended-send-to-completion latencies of
        #: *successful* requests, microseconds.
        self.latencies_us = latencies_us
        #: Worst observed actual-minus-intended send lag — how far the
        #: sender itself fell behind the schedule.
        self.max_send_lag_us = max_send_lag_us

    def percentile_us(self, pct: float) -> float:
        return _nearest_rank(self.latencies_us, pct)

    @property
    def p50_us(self) -> float:
        return self.percentile_us(50.0)

    @property
    def p99_us(self) -> float:
        return self.percentile_us(99.0)

    @property
    def p999_us(self) -> float:
        return self.percentile_us(99.9)

    @property
    def mean_us(self) -> float:
        if not self.latencies_us:
            return 0.0
        return sum(self.latencies_us) / len(self.latencies_us)

    @property
    def achieved_tps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.committed / self.duration_s

    @property
    def shed_fraction(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered

    def summary(self) -> dict[str, Any]:
        """One BENCH_*.json row fragment for this run."""
        return {
            "arrival_rate": self.schedule.rate_tps,
            "arrival_process": self.schedule.kind,
            "offered": self.offered,
            "committed": self.committed,
            "shed": self.shed,
            "failed": self.failed,
            "shed_fraction": round(self.shed_fraction, 6),
            "throughput_tps": round(self.achieved_tps, 3),
            "latency_us": round(self.mean_us, 3),
            "p50_us": round(self.p50_us, 3),
            "p99_us": round(self.p99_us, 3),
            "p999_us": round(self.p999_us, 3),
            "max_send_lag_us": round(self.max_send_lag_us, 3),
        }


def run_open_loop(client: Any, schedule: ArrivalSchedule,
                  spec_for: SpecFor, *,
                  read_only: bool | None = None,
                  timeout: float = 60.0) -> OpenLoopResult:
    """Drive ``client`` through one open-loop run of ``schedule``.

    ``client`` is anything with the :class:`repro.client.Client`
    surface (submissions resolve asynchronously — in practice a
    ``TcpClient``, where the server's reply resolves them).  Latency is
    recorded from each request's *intended* send time; a shed request
    (typed ``overloaded``) counts in ``shed`` and contributes no
    latency sample, any other failure counts in ``failed``.
    """
    n = len(schedule.offsets_s)
    lock = threading.Lock()
    latencies: list[float] = []
    counts = {"committed": 0, "shed": 0, "failed": 0}
    pending = threading.Semaphore(0)

    start = time.perf_counter()
    max_lag_s = 0.0
    for index, offset in enumerate(schedule.offsets_s):
        intended = start + offset
        delay = intended - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        else:
            max_lag_s = max(max_lag_s, -delay)
        reactor, proc, args = spec_for(index)

        def _done(outcome: Any, _intended: float = intended) -> None:
            elapsed_us = (time.perf_counter() - _intended) * 1e6
            with lock:
                if outcome.committed:
                    counts["committed"] += 1
                    latencies.append(elapsed_us)
                elif getattr(outcome, "shed", False):
                    counts["shed"] += 1
                else:
                    counts["failed"] += 1
            pending.release()

        client.submit(reactor, proc, *args, read_only=read_only,
                      on_done=_done)

    deadline = time.monotonic() + timeout
    for _ in range(n):
        remaining = deadline - time.monotonic()
        if remaining <= 0 or not pending.acquire(timeout=remaining):
            raise TimeoutError(
                "open-loop run did not drain within "
                f"{timeout:.1f}s ({n} offered)")
    duration = time.perf_counter() - start

    latencies.sort()
    return OpenLoopResult(
        schedule, n, counts["committed"], counts["shed"],
        counts["failed"], duration, latencies, max_lag_s * 1e6)


__all__ = ["ArrivalSchedule", "OpenLoopResult", "SpecFor",
           "run_open_loop"]
