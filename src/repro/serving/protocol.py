"""The wire protocol: length-prefixed frames and typed messages.

Framing
-------

Every message travels as one *frame*: a 4-byte big-endian unsigned
payload length followed by the payload bytes, which decode — under the
connection's negotiated codec — to one message dict.  Frames carry no
alignment or padding; any number of frames may be coalesced into one
TCP segment and one frame may be split across arbitrarily many reads,
so :class:`FrameDecoder` is an incremental parser fed raw bytes.

A declared length above :data:`MAX_FRAME_BYTES` is a protocol error
(the peer is confused or hostile — reading on would buffer without
bound), an undecodable payload is a protocol error, and bytes left in
the buffer at connection EOF are a *torn frame*
(:class:`TornFrameError`) — typed, so servers and clients can report
exactly what went wrong instead of a generic disconnect.

Codecs and negotiation
----------------------

Payload encoding is negotiated per connection.  The ``hello`` /
``hello_ok`` exchange itself is always JSON (the bootstrap has to be
readable before any negotiation): the client offers the protocol
versions it speaks and its codecs in preference order; the server
picks the highest common version and the first offered codec it has,
or answers ``hello_error`` and closes.  ``json`` is always available;
``msgpack`` is offered only when the optional dependency is importable
(the container image may not ship it — nothing here imports it
unconditionally).

Messages
--------

Every message is a dict with a ``"type"`` key:

=============  ========================================================
``hello``      ``versions`` (list), ``codecs`` (list) — client opener
``hello_ok``   ``version``, ``codec`` — server's negotiated choice
``hello_error``  ``detail`` — negotiation failed, connection closes
``request``    ``id``, ``session``, ``reactor``, ``proc``, ``args``,
               optional ``read_only`` — one root transaction
``response``   ``id``, ``session``, ``committed``, ``result`` /
               ``reason`` — terminal answer, matched by request id
``error``      ``id``, ``session``, ``code``, ``detail``, optional
               ``retry_after_us`` — typed refusal (``overloaded``,
               ``bad_request``, ``unknown_reactor``, ``internal``)
``goodbye``    clean client shutdown of a connection
=============  ========================================================

Responses are matched to requests by ``(session, id)`` and may arrive
in any order — the server answers in completion order, which is the
whole point of multiplexing many logical sessions over one connection.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Callable

from repro.errors import ReactorError

try:  # optional: the image may not ship msgpack.
    import msgpack as _msgpack
except ImportError:  # pragma: no cover - absent in the CI image
    _msgpack = None

#: Protocol versions this implementation speaks, newest first.
PROTOCOL_VERSION = 1
SUPPORTED_VERSIONS = (1,)

#: Hard bound on one frame's payload; a longer declared length is a
#: protocol error, not a buffering request.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_LEN = struct.Struct(">I")

#: Error codes an ``error`` message may carry.
ERR_OVERLOADED = "overloaded"
ERR_BAD_REQUEST = "bad_request"
ERR_UNKNOWN_REACTOR = "unknown_reactor"
ERR_INTERNAL = "internal"


class WireProtocolError(ReactorError):
    """The peer violated the framing or message contract."""


class TornFrameError(WireProtocolError):
    """The connection ended mid-frame (bytes left in the buffer)."""


class Overloaded(ReactorError):
    """The server shed this request at the wire (admission control).

    ``retry_after_us`` is the server's hint: how long the client
    should back off before resubmitting.
    """

    def __init__(self, detail: str, retry_after_us: float = 0.0) -> None:
        super().__init__(detail)
        self.retry_after_us = retry_after_us


# ----------------------------------------------------------------------
# Codecs
# ----------------------------------------------------------------------

def _json_encode(obj: Any) -> bytes:
    return json.dumps(obj, separators=(",", ":")).encode("utf-8")


def _json_decode(data: bytes) -> Any:
    try:
        return json.loads(data)
    except (ValueError, UnicodeDecodeError) as error:
        raise WireProtocolError(
            f"undecodable json payload: {error}") from None


#: codec name -> (encode, decode).  ``json`` is the always-available
#: floor; ``msgpack`` joins when the optional dependency is present.
CODECS: dict[str, tuple[Callable[[Any], bytes],
                        Callable[[bytes], Any]]] = {
    "json": (_json_encode, _json_decode),
}

if _msgpack is not None:  # pragma: no cover - absent in the CI image
    def _msgpack_decode(data: bytes) -> Any:
        try:
            return _msgpack.unpackb(data, raw=False)
        except Exception as error:  # noqa: BLE001 - lib-specific roots
            raise WireProtocolError(
                f"undecodable msgpack payload: {error}") from None

    CODECS["msgpack"] = (
        lambda obj: _msgpack.packb(obj, use_bin_type=True),
        _msgpack_decode,
    )


def available_codecs() -> tuple[str, ...]:
    """Codec names this process can speak, preference order first
    (msgpack beats JSON when both sides have it)."""
    return tuple(name for name in ("msgpack", "json")
                 if name in CODECS)


def negotiate(versions: Any, codecs: Any) -> tuple[int, str]:
    """The server's side of the hello exchange: pick the highest
    common protocol version and the client's most-preferred codec we
    have.  Raises :class:`WireProtocolError` when no overlap exists."""
    if not isinstance(versions, (list, tuple)) or not versions:
        raise WireProtocolError("hello carries no versions list")
    common = [v for v in versions if v in SUPPORTED_VERSIONS]
    if not common:
        raise WireProtocolError(
            f"no common protocol version: client speaks {versions}, "
            f"server speaks {list(SUPPORTED_VERSIONS)}")
    if not isinstance(codecs, (list, tuple)) or not codecs:
        raise WireProtocolError("hello carries no codecs list")
    for name in codecs:
        if name in CODECS:
            return max(common), name
    raise WireProtocolError(
        f"no common codec: client offers {codecs}, server has "
        f"{list(available_codecs())}")


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

def encode_frame(message: Any, codec: str = "json") -> bytes:
    """One message as a length-prefixed frame under ``codec``."""
    encode, __ = CODECS[codec]
    payload = encode(message)
    if len(payload) > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte bound")
    return _LEN.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte stream.

    Feed it whatever the socket produced — half a length prefix, three
    coalesced frames, one byte at a time — and it yields every complete
    message while buffering the tail.  Call :meth:`check_eof` when the
    stream ends: leftover bytes mean the peer died mid-frame and raise
    :class:`TornFrameError`.
    """

    __slots__ = ("codec", "max_frame_bytes", "_buffer")

    def __init__(self, codec: str = "json",
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        if codec not in CODECS:
            raise WireProtocolError(f"unknown codec {codec!r}")
        self.codec = codec
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes held back waiting for the rest of a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[Any]:
        """Absorb ``data``; return every now-complete message."""
        self._buffer.extend(data)
        __, decode = CODECS[self.codec]
        messages: list[Any] = []
        buffer = self._buffer
        while True:
            if len(buffer) < _LEN.size:
                break
            (length,) = _LEN.unpack_from(buffer)
            if length > self.max_frame_bytes:
                raise WireProtocolError(
                    f"declared frame length {length} exceeds the "
                    f"{self.max_frame_bytes}-byte bound")
            end = _LEN.size + length
            if len(buffer) < end:
                break
            payload = bytes(buffer[_LEN.size:end])
            del buffer[:end]
            messages.append(decode(payload))
        return messages

    def check_eof(self) -> None:
        """The stream ended; reject a partially buffered frame."""
        if self._buffer:
            raise TornFrameError(
                f"connection ended mid-frame with "
                f"{len(self._buffer)} buffered bytes")


# ----------------------------------------------------------------------
# Message constructors and validation
# ----------------------------------------------------------------------

def hello(versions: tuple[int, ...] = SUPPORTED_VERSIONS,
          codecs: tuple[str, ...] | None = None) -> dict[str, Any]:
    return {"type": "hello", "versions": list(versions),
            "codecs": list(codecs or available_codecs())}


def hello_ok(version: int, codec: str) -> dict[str, Any]:
    return {"type": "hello_ok", "version": version, "codec": codec}


def hello_error(detail: str) -> dict[str, Any]:
    return {"type": "hello_error", "detail": detail}


def request(request_id: int, session: int, reactor: str, proc: str,
            args: tuple, read_only: bool | None = None
            ) -> dict[str, Any]:
    message: dict[str, Any] = {
        "type": "request", "id": request_id, "session": session,
        "reactor": reactor, "proc": proc, "args": list(args),
    }
    if read_only is not None:
        message["read_only"] = bool(read_only)
    return message


def response(request_id: int, session: int, committed: bool,
             result: Any = None, reason: str | None = None
             ) -> dict[str, Any]:
    message: dict[str, Any] = {
        "type": "response", "id": request_id, "session": session,
        "committed": bool(committed),
    }
    if committed:
        message["result"] = result
    else:
        message["reason"] = reason
    return message


def error(request_id: int | None, session: int | None, code: str,
          detail: str, retry_after_us: float | None = None
          ) -> dict[str, Any]:
    message: dict[str, Any] = {
        "type": "error", "id": request_id, "session": session,
        "code": code, "detail": detail,
    }
    if retry_after_us is not None:
        message["retry_after_us"] = retry_after_us
    return message


def goodbye() -> dict[str, Any]:
    return {"type": "goodbye"}


#: Fields a request must carry, with their accepted types.
_REQUEST_FIELDS = (
    ("id", int), ("session", int), ("reactor", str), ("proc", str),
    ("args", (list, tuple)),
)


def validate_request(message: Any) -> str | None:
    """Why ``message`` is not a well-formed request, or ``None``."""
    if not isinstance(message, dict):
        return "request is not a mapping"
    for field, types in _REQUEST_FIELDS:
        if field not in message:
            return f"request missing field {field!r}"
        if not isinstance(message[field], types):
            return (f"request field {field!r} has type "
                    f"{type(message[field]).__name__}")
    read_only = message.get("read_only")
    if read_only is not None and not isinstance(read_only, bool):
        return "request field 'read_only' must be a bool"
    return None


__all__ = [
    "CODECS",
    "ERR_BAD_REQUEST",
    "ERR_INTERNAL",
    "ERR_OVERLOADED",
    "ERR_UNKNOWN_REACTOR",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "SUPPORTED_VERSIONS",
    "FrameDecoder",
    "Overloaded",
    "TornFrameError",
    "WireProtocolError",
    "available_codecs",
    "encode_frame",
    "error",
    "goodbye",
    "hello",
    "hello_error",
    "hello_ok",
    "negotiate",
    "request",
    "response",
    "validate_request",
]
