"""The asyncio TCP server fronting a :class:`ReactorDatabase`.

One :class:`ReactorServer` serves one database on either execution
backend:

* ``sim`` — the discrete-event scheduler has no thread of its own, so
  the server runs a *pump* task: whenever requests have been submitted,
  it drives ``scheduler.run()`` to quiescence on the event-loop thread.
  Requests that arrive coalesced (one TCP segment, several frames) are
  all submitted before the pump runs, so they genuinely overlap in
  virtual time — a burst behaves like a burst, not like a sequence of
  solo transactions.
* ``threads`` — the backend's own worker threads execute transactions;
  completion callbacks hop back onto the event loop via
  ``call_soon_threadsafe``.  No pump, no polling.

Admission control happens *at the wire*: the server bounds its
in-flight request count (``max_inflight``) and answers excess load
with a typed ``overloaded`` error carrying a ``retry_after_us`` hint
instead of parking requests without bound.  The same typed response
covers roots the execution backend itself refuses (the ``threads``
backend's bounded per-container queues report "backpressure" — see
:meth:`ReactorDatabase.submit`), so a client sees one shed surface
regardless of which layer refused.

Sessions are purely logical: a request carries a ``session`` id, the
response echoes it, and responses are written in *completion* order —
many sessions multiplex one connection and match answers by
``(session, id)``.

Telemetry: accepted/shed/in-flight counts and a wire-latency histogram
register on the database's catalog-checked metrics registry
(``serving_*``), and — under system tracing — every served request
emits a ``wait:wire`` span on the ``serving`` track covering its
submit-to-completion window.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any

from repro.core.database import ReactorDatabase
from repro.serving import protocol
from repro.telemetry.spans import TRACK_SERVING

#: Default bound on requests admitted but not yet answered.
DEFAULT_MAX_INFLIGHT = 256

#: Default retry-after hint (microseconds) attached to sheds; the
#: actual hint scales with how far past the bound the server is.
DEFAULT_RETRY_AFTER_US = 1_000.0


class _Connection:
    """Per-connection state: negotiated codec, decoder, sessions."""

    __slots__ = ("reader", "writer", "codec", "decoder", "sessions",
                 "closed")

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self.codec = "json"
        self.decoder: protocol.FrameDecoder | None = None
        self.sessions: set[int] = set()
        self.closed = False

    def send(self, message: dict[str, Any]) -> None:
        if self.closed or self.writer.is_closing():
            return
        self.writer.write(protocol.encode_frame(message, self.codec))


class ReactorServer:
    """Serve one database over asyncio TCP (see module docstring)."""

    def __init__(self, database: ReactorDatabase,
                 host: str = "127.0.0.1", port: int = 0,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT,
                 retry_after_us: float = DEFAULT_RETRY_AFTER_US
                 ) -> None:
        self.database = database
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.retry_after_us = retry_after_us
        self.inflight = 0
        #: (host, port) actually bound, known after :meth:`start`.
        self.address: tuple[str, int] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._pump_task: asyncio.Task | None = None
        self._work = asyncio.Event()
        self._stopping = False
        self._is_sim = getattr(database.scheduler, "is_virtual", True)
        telemetry = database.telemetry
        registry = telemetry.registry if telemetry.enabled else None
        if registry is not None:
            self._accepted = registry.counter("serving_accepted_total")
            self._shed = registry.counter("serving_shed_total")
            self._connections = registry.counter(
                "serving_connections_total")
            self._sessions = registry.counter("serving_sessions_total")
            registry.gauge_fn("serving_inflight",
                              lambda: self.inflight)
        else:
            self._accepted = self._shed = None
            self._connections = self._sessions = None
        self._wire_hist = telemetry.histogram("serving_wire_latency_us")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound address."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        if self._is_sim:
            self._pump_task = asyncio.ensure_future(self._pump())
        return self.address

    async def stop(self) -> None:
        """Stop accepting, close connections, cancel the pump."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._pump_task is not None:
            self._work.set()  # wake it so it observes _stopping
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass

    # ------------------------------------------------------------------
    # The sim pump
    # ------------------------------------------------------------------

    async def _pump(self) -> None:
        """Drive the virtual-time scheduler whenever work is pending.

        The extra ``sleep(0)`` lets already-readable connections decode
        and submit their whole burst first, so coalesced requests run
        concurrently in virtual time instead of one pump each.
        """
        scheduler = self.database.scheduler
        while not self._stopping:
            await self._work.wait()
            self._work.clear()
            await asyncio.sleep(0)
            scheduler.run()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        conn = _Connection(reader, writer)
        if self._connections is not None:
            self._connections.inc()
        try:
            if not await self._handshake(conn):
                return
            await self._read_loop(conn)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            conn.closed = True
            writer.close()

    async def _handshake(self, conn: _Connection) -> bool:
        """Run the JSON hello exchange; pick version and codec."""
        decoder = protocol.FrameDecoder("json")
        opener: Any = None
        while opener is None:
            data = await conn.reader.read(65536)
            if not data:
                return False
            messages = decoder.feed(data)
            if messages:
                opener = messages[0]
        if not isinstance(opener, dict) or \
                opener.get("type") != "hello":
            conn.send(protocol.hello_error(
                "expected a hello message first"))
            await conn.writer.drain()
            return False
        try:
            version, codec = protocol.negotiate(
                opener.get("versions"), opener.get("codecs"))
        except protocol.WireProtocolError as err:
            conn.send(protocol.hello_error(str(err)))
            await conn.writer.drain()
            return False
        conn.send(protocol.hello_ok(version, codec))
        await conn.writer.drain()
        conn.codec = codec
        conn.decoder = protocol.FrameDecoder(codec)
        # Bytes the client pipelined behind its hello frame belong to
        # the negotiated stream.
        leftover = bytes(decoder._buffer)
        if leftover:
            for message in conn.decoder.feed(leftover):
                self._handle_message(conn, message)
        return True

    async def _read_loop(self, conn: _Connection) -> None:
        while not self._stopping:
            data = await conn.reader.read(65536)
            if not data:
                try:
                    conn.decoder.check_eof()
                except protocol.TornFrameError:
                    pass  # peer died mid-frame; nothing to answer
                return
            try:
                messages = conn.decoder.feed(data)
            except protocol.WireProtocolError as err:
                conn.send(protocol.error(
                    None, None, protocol.ERR_BAD_REQUEST, str(err)))
                await conn.writer.drain()
                return
            for message in messages:
                if isinstance(message, dict) and \
                        message.get("type") == "goodbye":
                    await conn.writer.drain()
                    return
                self._handle_message(conn, message)
            await conn.writer.drain()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def _handle_message(self, conn: _Connection,
                        message: Any) -> None:
        problem = protocol.validate_request(message)
        if problem is not None:
            rid = message.get("id") if isinstance(message, dict) \
                else None
            session = message.get("session") \
                if isinstance(message, dict) else None
            conn.send(protocol.error(rid, session,
                                     protocol.ERR_BAD_REQUEST, problem))
            return
        rid = message["id"]
        session = message["session"]
        if session not in conn.sessions:
            conn.sessions.add(session)
            if self._sessions is not None:
                self._sessions.inc()
        if self.inflight >= self.max_inflight:
            self._shed_request(conn, rid, session,
                               "admission bound reached: "
                               f"{self.inflight} requests in flight")
            return
        database = self.database
        if message["reactor"] not in database:
            conn.send(protocol.error(
                rid, session, protocol.ERR_UNKNOWN_REACTOR,
                f"no reactor named {message['reactor']!r}"))
            return
        loop = self._loop
        t_wire = loop.time()
        self.inflight += 1
        if self._accepted is not None:
            self._accepted.inc()
        t_submit = database.scheduler.now
        state = (conn, rid, session, t_wire, t_submit)

        if self._is_sim:
            def on_done(root, committed, reason, result,
                        _state=state):
                self._complete(_state, root, committed, reason, result)
        else:
            def on_done(root, committed, reason, result,
                        _state=state):
                loop.call_soon_threadsafe(
                    self._complete, _state, root, committed, reason,
                    result)

        try:
            database.submit(
                message["reactor"], message["proc"], *message["args"],
                read_only=message.get("read_only"), on_done=on_done)
        except Exception as err:  # noqa: BLE001 - fault barrier: one
            # bad request must not tear down the connection.
            self.inflight -= 1
            conn.send(protocol.error(rid, session,
                                     protocol.ERR_INTERNAL, str(err)))
            return
        if self._is_sim:
            self._work.set()

    def _shed_request(self, conn: _Connection, rid: int,
                      session: int, detail: str) -> None:
        if self._shed is not None:
            self._shed.inc()
        hint = self.retry_after_us * max(
            1.0, (self.inflight + 1) / max(1, self.max_inflight))
        conn.send(protocol.error(rid, session, protocol.ERR_OVERLOADED,
                                 detail, retry_after_us=hint))

    def _complete(self, state: tuple, root: Any, committed: bool,
                  reason: str | None, result: Any) -> None:
        conn, rid, session, t_wire, t_submit = state
        self.inflight -= 1
        database = self.database
        if self._wire_hist is not None:
            self._wire_hist.observe(
                (self._loop.time() - t_wire) * 1e6)
        tracer = database.telemetry.tracer
        if tracer is not None and tracer.system:
            tracer.system_span(
                "wait:wire", TRACK_SERVING, root.txn_id, t_submit,
                database.scheduler.now,
                args={"session": session, "request": rid})
        if not committed and reason and "backpressure" in reason:
            # The execution backend's bounded per-container queue
            # refused the root: surface it as the same typed shed the
            # wire-level admission bound uses.
            self._shed_request(conn, rid, session, reason)
            return
        try:
            conn.send(protocol.response(rid, session, committed,
                                        result=result, reason=reason))
        except protocol.WireProtocolError:
            # The procedure returned something the codec cannot carry;
            # the transaction still committed server-side.
            conn.send(protocol.response(
                rid, session, committed,
                result=None,
                reason=None if committed else reason))


# ----------------------------------------------------------------------
# Thread-hosted convenience (tests, benches, CI smoke)
# ----------------------------------------------------------------------

class ServerThread:
    """Run a :class:`ReactorServer` on a dedicated event-loop thread.

    The synchronous world (pytest, benchmark scripts, the CI smoke
    job) starts the server, reads ``host``/``port``, points a
    :class:`~repro.client.TcpClient` at it, and calls :meth:`stop`
    when done.  The hosted event loop owns the database while serving
    — don't drive the scheduler from another thread concurrently.
    """

    def __init__(self, database: ReactorDatabase, **kwargs: Any) -> None:
        self.server = ReactorServer(database, **kwargs)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._stop_event: asyncio.Event | None = None
        self._startup_error: BaseException | None = None

    def start(self) -> tuple[str, int]:
        self._thread = threading.Thread(
            target=self._run, name="repro-serving", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("serving thread failed to start")
        if self._startup_error is not None:
            raise self._startup_error
        return self.server.address

    @property
    def host(self) -> str:
        return self.server.address[0]

    @property
    def port(self) -> int:
        return self.server.address[1]

    def stop(self) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed() and \
                self._stop_event is not None:
            loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as error:  # noqa: BLE001
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()


def serve_in_thread(database: ReactorDatabase,
                    **kwargs: Any) -> ServerThread:
    """Start serving ``database`` on a background event-loop thread;
    returns the started :class:`ServerThread` (read ``host``/``port``,
    call ``stop()``)."""
    thread = ServerThread(database, **kwargs)
    thread.start()
    return thread


__all__ = [
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_RETRY_AFTER_US",
    "ReactorServer",
    "ServerThread",
    "serve_in_thread",
]
