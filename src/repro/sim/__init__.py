"""Discrete-event simulation substrate.

This package provides the virtual machine under ReactDB: a
deterministic event loop (:class:`~repro.sim.scheduler.SimScheduler`),
virtual time in microseconds, machine profiles matching the paper's two
testbeds, and the cost parameters that encode per-operation CPU work
and the asymmetric cross-core communication costs (Cs/Cr) central to
the paper's latency analysis.

See DESIGN.md section 1 for why the reproduction simulates hardware
instead of using OS threads (Python's GIL makes real multicore
microsecond-scale measurements meaningless).

Public exports: :class:`SimScheduler` / :class:`Event`,
:class:`VirtualClock`, :class:`CostParameters`,
:class:`MachineProfile` with the two paper testbeds
(:data:`XEON_E3_1276`, :data:`OPTERON_6274`) and ``get_profile``, and
the deterministic random streams (:class:`RngFactory`,
:class:`ZipfianGenerator`).
"""

from repro.sim.clock import VirtualClock
from repro.sim.costs import CostParameters
from repro.sim.machine import (
    OPTERON_6274,
    PROFILES,
    XEON_E3_1276,
    MachineProfile,
    get_profile,
)
from repro.sim.rng import RngFactory, ZipfianGenerator
from repro.sim.scheduler import Event, SimScheduler

__all__ = [
    "VirtualClock",
    "CostParameters",
    "MachineProfile",
    "XEON_E3_1276",
    "OPTERON_6274",
    "PROFILES",
    "get_profile",
    "RngFactory",
    "ZipfianGenerator",
    "Event",
    "SimScheduler",
]
