"""Virtual clock for the discrete-event simulator.

All simulated time in this library is expressed in **microseconds** as
floats, matching the microsecond scale of the paper's latency results.
The clock only moves forward when the scheduler dispatches events; there
is no relation to wall-clock time.
"""

from __future__ import annotations

from repro.errors import SimulationError


class VirtualClock:
    """A monotonically non-decreasing virtual clock.

    The scheduler owns the clock and advances it to each event's
    timestamp.  Components read :attr:`now` to timestamp measurements.
    """

    #: ``now`` is a plain slot attribute, not a property: it is read on
    #: every scheduled event and every ``ctx.now`` — the descriptor
    #: call showed up in profiles.  Mutate only via :meth:`advance_to`.
    __slots__ = ("now",)

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises:
            SimulationError: if ``timestamp`` is in the past; events must
                be dispatched in non-decreasing time order.
        """
        now = self.now
        if timestamp < now - 1e-9:
            raise SimulationError(
                f"clock cannot move backwards: now={now}, "
                f"requested={timestamp}"
            )
        if timestamp > now:
            self.now = timestamp

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock; only for reuse across independent runs."""
        self.now = float(start)
