"""Virtual clock for the discrete-event simulator.

All simulated time in this library is expressed in **microseconds** as
floats, matching the microsecond scale of the paper's latency results.
The clock only moves forward when the scheduler dispatches events; there
is no relation to wall-clock time.
"""

from __future__ import annotations

from repro.errors import SimulationError


class VirtualClock:
    """A monotonically non-decreasing virtual clock.

    The scheduler owns the clock and advances it to each event's
    timestamp.  Components read :attr:`now` to timestamp measurements.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in microseconds."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises:
            SimulationError: if ``timestamp`` is in the past; events must
                be dispatched in non-decreasing time order.
        """
        if timestamp < self._now - 1e-9:
            raise SimulationError(
                f"clock cannot move backwards: now={self._now}, "
                f"requested={timestamp}"
            )
        if timestamp > self._now:
            self._now = timestamp

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock; only for reuse across independent runs."""
        self._now = float(start)
