"""Cost parameters for the simulated machine.

Every time-consuming action in ReactDB charges virtual CPU according to
a :class:`CostParameters` instance.  The parameter names follow the
paper's computational cost model (Section 2.4):

* ``cs`` — the cost, paid by the caller, to *send* a sub-transaction
  invocation to a reactor hosted by another transaction executor.  On
  real hardware this is an atomic enqueue on the target's request queue,
  hence cheap.
* ``cr`` — the cost, paid by the caller, to *receive* a result from a
  remote sub-transaction it blocked on.  On real hardware this is a
  thread switch across cores, hence several times more expensive than
  ``cs``.  This asymmetry is what separates *partially-async* from
  *fully-async* program formulations in Figure 5, and we reproduce it
  explicitly.
* ``cr_ready`` — consuming a future whose result already arrived costs
  only a flag check, no thread switch.

Per-operation data costs (``read_cost`` etc.) model index lookups and
tuple copies; ``cold_access_factor`` models the cache-miss penalty of
touching a reactor whose working set lives in another core's cache
(the affinity effects of Section 4.3 and Appendix F).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostParameters:
    """All virtual-time costs, in microseconds.

    Instances are immutable; use :meth:`scaled` or ``dataclasses.replace``
    to derive variants (e.g., for ablations that equalize ``cs``/``cr``).
    """

    # Cross-executor communication (the paper's Cs / Cr).
    cs: float = 1.5
    cr: float = 4.5
    cr_ready: float = 0.15
    transport_delay: float = 0.5

    # Client (worker) <-> executor round trip: the "containerization
    # overhead" of Appendix F.3 (worker thread switch costs).
    client_send: float = 1.0
    executor_wake: float = 2.0
    client_receive: float = 3.0
    input_gen: float = 1.5

    # Data operations inside a reactor.
    read_cost: float = 0.5
    write_cost: float = 0.6
    insert_cost: float = 0.8
    delete_cost: float = 0.6
    scan_row_cost: float = 0.18
    proc_base_cost: float = 0.3

    # Commit path.
    occ_validate_per_read: float = 0.04
    occ_install_per_write: float = 0.08
    occ_commit_base: float = 1.0
    tpc_prepare_per_container: float = 1.2
    abort_cost: float = 0.5

    # Replication (log shipping to replica containers): one-way network
    # delay to ship a redo record, per-write apply cost on the replica,
    # and the ack path a sync commit waits on.
    repl_ship_delay: float = 2.0
    repl_apply_per_write: float = 0.12
    repl_ack_delay: float = 2.0

    # Durability (repro.durability group commit): one log-device sync
    # (``fsync_cost``, serialized per container — a container has one
    # log disk), the group-commit epoch length, and the batch-size
    # threshold that flushes an epoch early.  The interval and byte
    # threshold are flush-*policy* knobs expressed in the cost set so
    # deployments tune them alongside the prices they amortize; they
    # are not CPU costs and are left out of :meth:`scaled`.
    fsync_cost: float = 30.0
    flush_interval_us: float = 50.0
    flush_batch_bytes: int = 32768

    # Crash recovery (repro.durability.partitioned): per-row checkpoint
    # load and per-redo-entry replay prices, so recovery time is a
    # measurable virtual-time quantity in the bench harness.
    recovery_load_per_row: float = 0.4
    recovery_replay_per_entry: float = 0.25

    # Online reactor migration (repro.migration): fixed setup cost of a
    # state copy, per-copied-row snapshot+install cost, the atomic
    # routing flip, and the per-transaction dispatch cost of replaying
    # work that queued at the destination during the migration.
    mig_copy_base: float = 6.0
    mig_copy_per_row: float = 0.15
    mig_flip_cost: float = 1.0
    mig_replay_per_txn: float = 0.5

    # Cache-affinity modelling: operations on a reactor whose data was
    # last touched by a different core are penalized by this factor for
    # the duration of the transaction (the reactor then becomes warm on
    # the new core).
    cold_access_factor: float = 2.3

    # Computational kernels (sim_risk, stock replenishment delays).
    rand_cost: float = 0.006

    def scaled(self, factor: float) -> "CostParameters":
        """Uniformly scale all CPU/communication costs by ``factor``.

        Used to derive slower-clock machine profiles from a reference
        profile.  The scaling applies to every cost except
        ``cold_access_factor`` (a ratio), the flush-policy knobs
        ``flush_interval_us`` / ``flush_batch_bytes`` (cadence choices,
        not CPU costs), and ``rand_cost`` consumers can scale
        separately.
        """
        fields = {
            name: getattr(self, name) * factor
            for name in (
                "cs", "cr", "cr_ready", "transport_delay", "client_send",
                "executor_wake", "client_receive", "input_gen", "read_cost",
                "write_cost", "insert_cost", "delete_cost", "scan_row_cost",
                "proc_base_cost", "occ_validate_per_read",
                "occ_install_per_write", "occ_commit_base",
                "tpc_prepare_per_container", "abort_cost", "rand_cost",
                "repl_ship_delay", "repl_apply_per_write",
                "repl_ack_delay", "fsync_cost", "recovery_load_per_row",
                "recovery_replay_per_entry", "mig_copy_base",
                "mig_copy_per_row", "mig_flip_cost", "mig_replay_per_txn",
            )
        }
        return replace(self, **fields)

    def container_scaled(self, factor: float) -> "CostParameters":
        """Scale only the costs one container pays *locally* — CPU,
        data operations, commit work, its log device and recovery /
        migration prices — leaving network delays
        (``transport_delay``, the client round trip, the replication
        ship/ack path) untouched.

        This is the asymmetric-slowdown knob fault campaigns use: one
        container runs on a slow machine while cross-container timing
        assumptions stay comparable, which is exactly the skew that
        shakes out hidden ordering assumptions in commit/ack paths.
        """
        fields = {
            name: getattr(self, name) * factor
            for name in (
                "cs", "cr", "cr_ready", "executor_wake", "input_gen",
                "read_cost", "write_cost", "insert_cost",
                "delete_cost", "scan_row_cost", "proc_base_cost",
                "occ_validate_per_read", "occ_install_per_write",
                "occ_commit_base", "tpc_prepare_per_container",
                "abort_cost", "rand_cost", "fsync_cost",
                "recovery_load_per_row", "recovery_replay_per_entry",
                "mig_copy_base", "mig_copy_per_row", "mig_flip_cost",
                "mig_replay_per_txn",
            )
        }
        return replace(self, **fields)

    def with_symmetric_communication(self) -> "CostParameters":
        """Ablation variant where receiving is as cheap as sending.

        Used by ``bench_ablation_cr_asymmetry`` to test the paper's claim
        that the partially-async vs fully-async gap is caused by the
        receive-path thread switch.
        """
        return replace(self, cr=self.cs, cr_ready=min(self.cr_ready, self.cs))
