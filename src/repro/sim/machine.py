"""Machine profiles mirroring the paper's two testbeds.

The paper evaluates on two machines:

* a 4-core (8 hardware threads) 3.6 GHz Intel Xeon E3-1276 with uniform
  memory access, used for the microsecond-scale latency-control
  experiments (Section 4.2, Appendices B and C);
* a dual-socket 16-core (32 hardware threads) 2.1 GHz AMD Opteron 6274
  with accentuated cache-coherence and cross-core synchronization costs,
  used for the virtualization/load experiments (Section 4.3,
  Appendices D-G).

A :class:`MachineProfile` bundles the number of usable hardware threads
with a :class:`~repro.sim.costs.CostParameters` set.  The Opteron
profile has slower per-operation costs (lower clock) and markedly more
expensive cross-core communication and client dispatch (two sockets),
which is what makes architecture choice matter more on it — exactly the
reason the paper picked it for the virtualization experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.costs import CostParameters


@dataclass(frozen=True)
class MachineProfile:
    """A simulated machine: core budget plus cost parameters."""

    name: str
    hardware_threads: int
    costs: CostParameters = field(default_factory=CostParameters)

    def __post_init__(self) -> None:
        if self.hardware_threads < 1:
            raise ValueError("a machine needs at least one hardware thread")


#: 4-core / 8-thread 3.6 GHz Xeon E3-1276 (latency experiments).
XEON_E3_1276 = MachineProfile(
    name="xeon-e3-1276",
    hardware_threads=8,
    costs=CostParameters(),
)

#: Dual-socket 16-core / 32-thread 2.1 GHz Opteron 6274 (load experiments).
#: Roughly 1.7x slower clock and ~2-4x more expensive cross-core paths.
OPTERON_6274 = MachineProfile(
    name="opteron-6274",
    hardware_threads=32,
    costs=CostParameters(
        cs=3.0,
        cr=9.0,
        cr_ready=0.25,
        transport_delay=1.0,
        client_send=4.0,
        executor_wake=6.0,
        client_receive=12.0,
        input_gen=2.5,
        read_cost=0.85,
        write_cost=1.0,
        insert_cost=1.35,
        delete_cost=1.0,
        scan_row_cost=0.3,
        proc_base_cost=0.5,
        occ_validate_per_read=0.07,
        occ_install_per_write=0.14,
        occ_commit_base=1.7,
        tpc_prepare_per_container=2.0,
        abort_cost=0.85,
        cold_access_factor=2.3,
        rand_cost=0.010,
    ),
)

#: Registry for config-file lookup (deployments name their machine).
PROFILES: dict[str, MachineProfile] = {
    XEON_E3_1276.name: XEON_E3_1276,
    OPTERON_6274.name: OPTERON_6274,
}


def get_profile(name: str) -> MachineProfile:
    """Look up a machine profile by name (for JSON deployment configs)."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown machine profile {name!r}; known: {known}")
