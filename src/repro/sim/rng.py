"""Deterministic random number helpers.

Every stochastic choice in a simulation (workload inputs, zipfian keys,
uniform delays) flows through a named child of one root seed so that
runs are reproducible and independent components do not perturb each
other's streams when one of them draws more numbers.
"""

from __future__ import annotations

import math
import random


class RngFactory:
    """Produces independent, deterministically seeded RNG streams."""

    def __init__(self, seed: int = 42) -> None:
        self._seed = seed

    def stream(self, name: str) -> random.Random:
        """A reproducible stream; the same name always yields the same
        sequence for a given root seed."""
        return random.Random(f"{self._seed}/{name}")


class ZipfianGenerator:
    """Zipfian-distributed integers in ``[0, n)``.

    Implements the classic rejection-free inverse-CDF approximation used
    by YCSB (Gray et al.), so that the Appendix C skew experiment matches
    the benchmark's key-popularity profile.  ``theta`` is the zipfian
    constant: 0 approaches uniform, 0.99 is YCSB's default "zipfian",
    large values concentrate on a single key.
    """

    def __init__(self, n: int, theta: float, rng: random.Random) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.n = n
        self.theta = theta
        self._rng = rng
        if theta == 0:
            return
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta) if theta != 1.0 else float("inf")
        self._eta = self._compute_eta()

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def _compute_eta(self) -> float:
        if self.theta == 1.0:
            return 0.0
        return (1 - (2.0 / self.n) ** (1 - self.theta)) / (
            1 - self._zeta2 / self._zetan
        )

    def next(self) -> int:
        """Draw one zipfian value in ``[0, n)`` (0 is the most popular)."""
        if self.theta == 0:
            return self._rng.randrange(self.n)
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        if self.theta == 1.0:
            # Harmonic special case: invert the log CDF.
            return min(self.n - 1,
                       max(0, int(math.exp(u * math.log(self.n))) - 1))
        value = int(self.n * ((self._eta * u - self._eta + 1) ** self._alpha))
        return min(max(value, 0), self.n - 1)
