"""Discrete-event scheduler.

The scheduler is a priority queue of ``(time, sequence, callback)``
entries.  Ties on time are broken by insertion order (the sequence
number), which makes every simulation fully deterministic: the same
inputs always produce the same interleavings, aborts, and latencies.

The scheduler is deliberately minimal: components (executors, workers,
transports) express their behaviour as callbacks that schedule further
callbacks.  Generators/coroutines for transaction logic are layered on
top by :mod:`repro.runtime.executor` — the scheduler itself knows
nothing about transactions.
"""

from __future__ import annotations

from contextlib import nullcontext
from heapq import heappop, heappush
from typing import Any, Callable, Iterable

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock

#: Shared no-op context manager for the sim backend's guard hooks
#: (``nullcontext`` is reusable and reentrant).
_NULL_GUARD = nullcontext()


class Event:
    """A scheduled callback; cancellable."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_scheduler")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any],
                 args: tuple,
                 scheduler: "SimScheduler | None" = None) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped."""
        if not self.cancelled:
            self.cancelled = True
            # Compact the dead heap entry: the tombstone stays queued
            # until popped, but must not pin the callback's closure or
            # arguments (root transactions, sessions, ...) in memory.
            self.fn = None
            self.args = ()
            if self._scheduler is not None:
                self._scheduler._on_cancel(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"Event(t={self.time:.3f}, seq={self.seq}, fn={name})"


class SimScheduler:
    """The event loop driving a simulation run.

    The scheduler doubles as the default *execution backend* (see
    :mod:`repro.runtime.backend`): beyond the event-loop surface
    (``at``/``after``/``soon``/``run``/``pending``) it implements the
    backend hooks — ``post``, ``busy``, ``add_waiter`` and the two
    lock guards — as exact restatements of the pre-backend behaviour,
    so running through them is byte-identical to calling the scheduler
    directly.  The hooks are trivial here because a simulation is
    single-threaded by construction; the ``threads`` backend
    (:mod:`repro.runtime.threads`) gives them real work to do.
    """

    __slots__ = ("clock", "_queue", "_seq", "_dispatched", "_running",
                 "_live")

    #: Backend identity (see :mod:`repro.runtime.backend`).
    name = "sim"
    #: Timestamps are virtual microseconds, not wall-clock readings.
    is_virtual = True
    #: No cross-thread state to protect: the event loop is serial.
    lock: Any = None
    #: ``None`` means "use the plain :class:`SimFuture`" — the executor
    #: falls back to it, keeping this module import-cycle free.
    future_class: Any = None

    def __init__(self) -> None:
        self.clock = VirtualClock()
        #: Heap of ``(time, seq, event)`` tuples: seq is unique, so
        #: comparisons resolve on the first two fields at C level and
        #: never reach the event object.
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._dispatched = 0
        self._running = False
        #: Live (non-cancelled, not-yet-dispatched) events; kept in
        #: sync on push/pop/cancel so :meth:`pending` is O(1).
        self._live = 0

    @property
    def now(self) -> float:
        """Current virtual time in microseconds."""
        return self.clock.now

    @property
    def events_dispatched(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._dispatched

    def at(self, timestamp: float, fn: Callable[..., Any],
           *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute virtual time."""
        now = self.clock.now
        if timestamp < now:
            if timestamp < now - 1e-9:
                raise SimulationError(
                    f"cannot schedule in the past: now={now}, "
                    f"requested={timestamp}"
                )
            timestamp = now
        event = Event(timestamp, self._seq, fn, args, scheduler=self)
        self._seq += 1
        heappush(self._queue, (timestamp, event.seq, event))
        self._live += 1
        return event

    def _on_cancel(self, event: Event) -> None:
        self._live -= 1

    def after(self, delay: float, fn: Callable[..., Any],
              *args: Any) -> Event:
        """Schedule ``fn(*args)`` after ``delay`` microseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.at(self.clock.now + delay, fn, *args)

    def soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time (after this event)."""
        return self.at(self.clock.now, fn, *args)

    def run(self, until: float | None = None,
            max_events: int | None = None) -> None:
        """Dispatch events until the queue drains or a bound is reached.

        Args:
            until: stop once the next event is strictly later than this
                virtual time (the clock is left at ``until``).  Events
                stamped exactly *at* ``until`` — including timestamps
                within the scheduler's 1e-9 float tolerance, e.g. an
                ``after(0.1 + 0.2)`` event against ``until=0.3`` — run
                before the call returns: both backends share this
                quiesce contract, so "ran to ``until``" means every
                event due by then was dispatched.
            max_events: safety valve against runaway simulations.
        """
        if self._running:
            raise SimulationError("scheduler is not re-entrant")
        self._running = True
        try:
            dispatched = 0
            queue = self._queue
            clock = self.clock
            while queue:
                time, __, event = queue[0]
                if event.cancelled:
                    # Already uncounted at cancel(); just drop it.
                    heappop(queue)
                    continue
                # The 1e-9 slack matches at()'s past-scheduling
                # tolerance: an event whose timestamp drifted a float
                # ulp past `until` is still "due at until".
                if until is not None and time > until + 1e-9:
                    break
                heappop(queue)
                self._live -= 1
                # A cancel() arriving after dispatch must not touch the
                # live counter again.
                event._scheduler = None
                if time > clock.now:
                    clock.now = time
                event.fn(*event.args)
                self._dispatched += 1
                dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; "
                        "possible livelock in the simulation"
                    )
            if until is not None and clock.now < until:
                clock.advance_to(until)
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): a counter maintained on push/pop/cancel, not a scan of
        the heap (cancelled entries stay queued until popped, so a
        scan would also walk dead events).
        """
        return self._live

    # ------------------------------------------------------------------
    # Execution-backend hooks (see repro.runtime.backend)
    # ------------------------------------------------------------------

    def post(self, container_id: int, fn: Callable[..., Any],
             *args: Any) -> Event:
        """Run ``fn(*args)`` on ``container_id``'s execution context.

        In a simulation every container shares the one event loop, so
        this is exactly :meth:`soon` — same timestamp, same sequence
        ordering as the pre-backend code.
        """
        return self.at(self.clock.now, fn, *args)

    def busy(self, micros: float, fn: Callable[..., Any],
             *args: Any) -> Event:
        """Model ``micros`` of executor CPU occupancy, then continue
        with ``fn(*args)`` — a virtual sleep here; real elapsed work
        on a wall-clock backend."""
        return self.at(self.clock.now + micros, fn, *args)

    def add_waiter(self, future: Any, callback: Callable[..., None],
                   *args: Any, container: int | None = None) -> None:
        """Register a future waiter to run on ``container``'s context.

        Single-threaded simulation: the resolver's event *is* every
        container's context, so this delegates straight to the future.
        The threads backend instead relays the wake-up onto the owning
        container's work queue.
        """
        future.add_waiter(callback, *args)

    def admit_root(self, executor: Any) -> bool:
        """Bounded-intake hook: may ``executor`` accept another root
        transaction?  Virtual time has no backpressure — queues drain
        in zero wall time — so the sim always admits."""
        return True

    def commit_guard(self, container_ids: Iterable[int]) -> Any:
        """Mutual exclusion for a cross-container commit/abort
        (validate + install on every participant).  A no-op under the
        serial event loop."""
        return _NULL_GUARD

    def state_guard(self) -> Any:
        """Mutual exclusion for shared database bookkeeping (txn
        counters, snapshot pins, telemetry counters).  A no-op under
        the serial event loop."""
        return _NULL_GUARD
